//! Conjunctive queries, with the extensions the survey reasons about:
//! inequalities (`CQ≠`), negated atoms (`CQ¬`) and unions (`UCQ`).
//!
//! A conjunctive query (Section 2) is an expression
//!
//! ```text
//! H(x̄) ← R₁(ȳ₁), …, Rₘ(ȳₘ)
//! ```
//!
//! where every head variable occurs in some body atom (*safety*). For
//! `CQ¬` we additionally require every variable of a negated atom to occur
//! in a positive atom, and for inequalities likewise — the standard
//! safe-range conditions.

use crate::atom::{Atom, Term, Var};
use crate::symbols::RelId;
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised when constructing an ill-formed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any positive body atom.
    UnsafeHeadVar(Var),
    /// A variable of a negated atom does not occur in any positive atom.
    UnsafeNegatedVar(Var),
    /// A variable of an inequality does not occur in any positive atom.
    UnsafeInequalityVar(Var),
    /// The body is empty (we require at least one positive atom).
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVar(v) => {
                write!(f, "head variable {v} does not occur in the positive body")
            }
            QueryError::UnsafeNegatedVar(v) => {
                write!(
                    f,
                    "negated-atom variable {v} does not occur in the positive body"
                )
            }
            QueryError::UnsafeInequalityVar(v) => {
                write!(
                    f,
                    "inequality variable {v} does not occur in the positive body"
                )
            }
            QueryError::EmptyBody => write!(f, "query body has no positive atom"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query, possibly with inequalities and negated atoms.
///
/// Plain CQs have empty `negated` and `inequalities`; helpers like
/// [`ConjunctiveQuery::is_plain_cq`] let the decision procedures insist on
/// the fragment they are proven correct for.
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ConjunctiveQuery {
    /// The head atom `H(x̄)`.
    pub head: Atom,
    /// The positive body atoms.
    pub body: Vec<Atom>,
    /// Negated body atoms (`not S(ȳ)`), empty for plain CQs.
    pub negated: Vec<Atom>,
    /// Inequalities `t ≠ t'`, empty for plain CQs.
    pub inequalities: Vec<(Term, Term)>,
}

impl ConjunctiveQuery {
    /// Construct and validate a plain CQ.
    pub fn new(head: Atom, body: Vec<Atom>) -> Result<ConjunctiveQuery, QueryError> {
        ConjunctiveQuery::with_extras(head, body, Vec::new(), Vec::new())
    }

    /// Construct and validate a CQ with negation and/or inequalities.
    pub fn with_extras(
        head: Atom,
        body: Vec<Atom>,
        negated: Vec<Atom>,
        inequalities: Vec<(Term, Term)>,
    ) -> Result<ConjunctiveQuery, QueryError> {
        if body.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let q = ConjunctiveQuery {
            head,
            body,
            negated,
            inequalities,
        };
        let positive: BTreeSet<Var> = q.body.iter().flat_map(|a| a.variables()).collect();
        for v in q.head.variables() {
            if !positive.contains(&v) {
                return Err(QueryError::UnsafeHeadVar(v));
            }
        }
        for a in &q.negated {
            for v in a.variables() {
                if !positive.contains(&v) {
                    return Err(QueryError::UnsafeNegatedVar(v));
                }
            }
        }
        for (s, t) in &q.inequalities {
            for term in [s, t] {
                if let Term::Var(v) = term {
                    if !positive.contains(v) {
                        return Err(QueryError::UnsafeInequalityVar(v.clone()));
                    }
                }
            }
        }
        Ok(q)
    }

    /// All variables of the query (`vars(Q)`), in order of first occurrence
    /// across head then body.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut push = |v: Var| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        for v in self.head.variables() {
            push(v);
        }
        for a in self.body.iter().chain(self.negated.iter()) {
            for v in a.variables() {
                push(v);
            }
        }
        out
    }

    /// Variables of the positive body, in order of first occurrence.
    pub fn body_variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in &self.body {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// All constants mentioned anywhere in the query.
    pub fn constants(&self) -> Vec<crate::fact::Val> {
        let mut out: Vec<_> = self
            .body
            .iter()
            .chain(self.negated.iter())
            .chain(std::iter::once(&self.head))
            .flat_map(|a| a.constants())
            .collect();
        for (s, t) in &self.inequalities {
            out.extend(s.as_const());
            out.extend(t.as_const());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Is this a plain CQ (no negation, no inequalities)?
    pub fn is_plain_cq(&self) -> bool {
        self.negated.is_empty() && self.inequalities.is_empty()
    }

    /// Is the query *full*: every body variable appears in the head?
    /// Full CQs are the fragment for which Shares/HyperCube is analyzed.
    pub fn is_full(&self) -> bool {
        let head_vars = self.head.variables();
        self.body_variables().iter().all(|v| head_vars.contains(v))
    }

    /// Is the query Boolean (empty head)?
    pub fn is_boolean(&self) -> bool {
        self.head.terms.is_empty()
    }

    /// Does the query have a self-join (two positive atoms over the same
    /// relation)? Relevant for the economical broadcasting strategies of
    /// Ketsman–Neven discussed in Section 6.
    pub fn has_self_join(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.body.iter().any(|a| !seen.insert(a.rel))
    }

    /// The distinct relations of the positive body.
    pub fn body_relations(&self) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.body.iter().map(|a| a.rel).collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }

    /// Rename all variables with a prefix — used to make two queries
    /// variable-disjoint before comparing them.
    pub fn rename_vars(&self, prefix: &str) -> ConjunctiveQuery {
        let ren = |a: &Atom| Atom {
            rel: a.rel,
            terms: a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::var(format!("{prefix}{}", v.0)),
                    c => c.clone(),
                })
                .collect(),
        };
        ConjunctiveQuery {
            head: ren(&self.head),
            body: self.body.iter().map(ren).collect(),
            negated: self.negated.iter().map(ren).collect(),
            inequalities: self
                .inequalities
                .iter()
                .map(|(s, t)| {
                    let r = |t: &Term| match t {
                        Term::Var(v) => Term::var(format!("{prefix}{}", v.0)),
                        c => c.clone(),
                    };
                    (r(s), r(t))
                })
                .collect(),
        }
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- ", self.head)?;
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for a in &self.negated {
            write!(f, ", not {a}")?;
        }
        for (s, t) in &self.inequalities {
            write!(f, ", {s} != {t}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A union of conjunctive queries. All disjuncts must share the head
/// relation and arity.
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Construct a UCQ; panics if disjuncts disagree on head relation/arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> UnionQuery {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let rel0 = disjuncts[0].head.rel;
        let ar0 = disjuncts[0].head.arity();
        for d in &disjuncts[1..] {
            assert_eq!(d.head.rel, rel0, "UCQ disjuncts must share head relation");
            assert_eq!(d.head.arity(), ar0, "UCQ disjuncts must share head arity");
        }
        UnionQuery { disjuncts }
    }

    /// Are all disjuncts plain CQs?
    pub fn is_plain(&self) -> bool {
        self.disjuncts.iter().all(|d| d.is_plain_cq())
    }
}

impl fmt::Debug for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            Atom::vars("H", &["x", "y", "z"]),
            vec![
                Atom::vars("R", &["x", "y"]),
                Atom::vars("S", &["y", "z"]),
                Atom::vars("T", &["z", "x"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn safety_rejects_free_head_var() {
        let err = ConjunctiveQuery::new(
            Atom::vars("H", &["x", "w"]),
            vec![Atom::vars("R", &["x", "y"])],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::UnsafeHeadVar(Var::new("w")));
    }

    #[test]
    fn safety_rejects_free_negated_var() {
        let err = ConjunctiveQuery::with_extras(
            Atom::vars("H", &["x"]),
            vec![Atom::vars("R", &["x"])],
            vec![Atom::vars("S", &["z"])],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::UnsafeNegatedVar(Var::new("z")));
    }

    #[test]
    fn safety_rejects_empty_body() {
        let err = ConjunctiveQuery::new(Atom::vars("H", &[]), vec![]).unwrap_err();
        assert_eq!(err, QueryError::EmptyBody);
    }

    #[test]
    fn triangle_is_full_plain_and_selfjoin_free() {
        let q = triangle();
        assert!(q.is_full());
        assert!(q.is_plain_cq());
        assert!(!q.has_self_join());
        assert!(!q.is_boolean());
        assert_eq!(q.variables().len(), 3);
    }

    #[test]
    fn projection_is_not_full() {
        let q = ConjunctiveQuery::new(Atom::vars("H", &["x"]), vec![Atom::vars("R", &["x", "y"])])
            .unwrap();
        assert!(!q.is_full());
    }

    #[test]
    fn self_join_detected() {
        let q = ConjunctiveQuery::new(
            Atom::vars("H", &["x", "z"]),
            vec![Atom::vars("R", &["x", "y"]), Atom::vars("R", &["y", "z"])],
        )
        .unwrap();
        assert!(q.has_self_join());
        assert_eq!(q.body_relations().len(), 1);
    }

    #[test]
    fn rename_vars_keeps_structure() {
        let q = triangle().rename_vars("p_");
        assert_eq!(q.body.len(), 3);
        assert!(q.variables().iter().all(|v| v.0.starts_with("p_")));
    }

    #[test]
    fn display_shape() {
        let q = triangle();
        assert_eq!(format!("{q}"), "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
    }

    #[test]
    #[should_panic(expected = "share head relation")]
    fn ucq_mixed_heads_panics() {
        let a =
            ConjunctiveQuery::new(Atom::vars("H", &["x"]), vec![Atom::vars("R", &["x"])]).unwrap();
        let b =
            ConjunctiveQuery::new(Atom::vars("G", &["x"]), vec![Atom::vars("R", &["x"])]).unwrap();
        UnionQuery::new(vec![a, b]);
    }
}
