//! A small, self-contained simplex solver for the linear programs of
//! Section 3.1.
//!
//! Every LP we need (fractional edge packing, fractional vertex packing,
//! the HyperCube share-exponent program) has the form
//!
//! ```text
//! maximize c·x   subject to   A x ≤ b,  x ≥ 0,  b ≥ 0
//! ```
//!
//! so the all-slack basis is feasible and a single-phase primal simplex
//! with Bland's rule (which cannot cycle) suffices. The solver also
//! reports the optimal **dual** values — read off the slack columns of the
//! final objective row — which is how `packing` recovers fractional vertex
//! covers and edge covers without a second solver.

use std::fmt;

/// Numeric tolerance for pivoting and optimality tests.
const EPS: f64 = 1e-9;

/// The outcome of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value.
    pub value: f64,
    /// Optimal primal variable assignment.
    pub x: Vec<f64>,
    /// Optimal dual values, one per constraint.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed.
    pub pivots: usize,
}

/// Errors from the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The LP is unbounded above.
    Unbounded,
    /// Dimension mismatch between `c`, `a` and `b`.
    BadShape(String),
    /// Some `b[i] < 0` (the caller must formulate with non-negative rhs).
    NegativeRhs(usize),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::BadShape(s) => write!(f, "malformed LP: {s}"),
            LpError::NegativeRhs(i) => write!(f, "b[{i}] is negative; rewrite the constraint"),
        }
    }
}

impl std::error::Error for LpError {}

/// Maximize `c·x` subject to `a·x ≤ b`, `x ≥ 0`, with all `b ≥ 0`.
///
/// `a` is row-major: `a[i]` is constraint `i`. Uses Bland's rule, so it
/// terminates on degenerate inputs (our packing LPs have many zero rhs in
/// the share program).
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let m = a.len();
    let n = c.len();
    if b.len() != m {
        return Err(LpError::BadShape(format!(
            "{} constraint rows but {} rhs entries",
            m,
            b.len()
        )));
    }
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(LpError::BadShape(format!(
                "row {i} has {} coefficients, expected {n}",
                row.len()
            )));
        }
    }
    if let Some(i) = (0..m).find(|&i| b[i] < -EPS) {
        return Err(LpError::NegativeRhs(i));
    }

    // Tableau: m rows of [A | I | b], objective row [-c | 0 | 0].
    let width = n + m + 1;
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let mut row = vec![0.0; width];
        row[..n].copy_from_slice(&a[i]);
        row[n + i] = 1.0;
        row[width - 1] = b[i];
        t.push(row);
    }
    let mut obj = vec![0.0; width];
    for j in 0..n {
        obj[j] = -c[j];
    }
    t.push(obj);

    // basis[i] = variable index basic in row i (starts as slack n+i).
    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut pivots = 0usize;

    // Bland: entering variable = smallest index with negative objective
    // coefficient (i.e. positive reduced cost for maximization); the loop
    // ends when none remains (optimality).
    while let Some(enter) = (0..n + m).find(|&j| t[m][j] < -EPS) {
        // Ratio test with Bland tie-breaking on the basic variable index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][width - 1] / t[i][enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };

        // Pivot on (leave, enter).
        let piv = t[leave][enter];
        for x in t[leave].iter_mut() {
            *x /= piv;
        }
        for i in 0..=m {
            if i != leave && t[i][enter].abs() > EPS {
                let factor = t[i][enter];
                // Split borrows: clone the pivot row once per update row is
                // wasteful; index arithmetic instead.
                let (pivot_row, target_row) = if i < leave {
                    let (a, b) = t.split_at_mut(leave);
                    (&b[0], &mut a[i])
                } else {
                    let (a, b) = t.split_at_mut(i);
                    (&a[leave], &mut b[0])
                };
                for j in 0..width {
                    target_row[j] -= factor * pivot_row[j];
                }
            }
        }
        basis[leave] = enter;
        pivots += 1;
    }

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][width - 1];
        }
    }
    let duals: Vec<f64> = (0..m).map(|i| t[m][n + i]).collect();
    Ok(LpSolution {
        value: t[m][width - 1],
        x,
        duals,
        pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_2d_lp() {
        // max x + y s.t. x ≤ 2, y ≤ 3, x + y ≤ 4.
        let sol = maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            &[2.0, 3.0, 4.0],
        )
        .unwrap();
        assert_close(sol.value, 4.0);
        assert_close(sol.x[0] + sol.x[1], 4.0);
    }

    #[test]
    fn triangle_edge_packing_value() {
        // Edges xy, yz, zx; per-vertex constraint u_e sums ≤ 1.
        // Optimum: 1/2 each, value 3/2 = τ* of the triangle query.
        let sol = maximize(
            &[1.0, 1.0, 1.0],
            &[
                vec![1.0, 0.0, 1.0], // vertex x in edges 0 and 2
                vec![1.0, 1.0, 0.0], // vertex y
                vec![0.0, 1.0, 1.0], // vertex z
            ],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        assert_close(sol.value, 1.5);
        for &u in &sol.x {
            assert_close(u, 0.5);
        }
        // Dual = fractional vertex cover, also 3/2 in total.
        assert_close(sol.duals.iter().sum::<f64>(), 1.5);
    }

    #[test]
    fn unbounded_detected() {
        let e = maximize(&[1.0], &[vec![-1.0]], &[1.0]).unwrap_err();
        assert_eq!(e, LpError::Unbounded);
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            maximize(&[1.0], &[vec![1.0, 2.0]], &[1.0]),
            Err(LpError::BadShape(_))
        ));
        assert!(matches!(
            maximize(&[1.0], &[vec![1.0]], &[-1.0]),
            Err(LpError::NegativeRhs(0))
        ));
    }

    #[test]
    fn degenerate_zero_rhs_terminates() {
        // max λ s.t. λ - e ≤ 0, e ≤ 1 — optimum 1 with degenerate pivots.
        let sol = maximize(&[1.0, 0.0], &[vec![1.0, -1.0], vec![0.0, 1.0]], &[0.0, 1.0]).unwrap();
        assert_close(sol.value, 1.0);
    }

    #[test]
    fn duals_satisfy_complementary_slackness() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = [8.0, 9.0];
        let c = [3.0, 4.0];
        let sol = maximize(&c, &a, &b).unwrap();
        // Strong duality: c·x = b·y.
        let dual_val: f64 = b.iter().zip(&sol.duals).map(|(bi, yi)| bi * yi).sum();
        assert_close(sol.value, dual_val);
        // Dual feasibility: Aᵀy ≥ c.
        for j in 0..2 {
            let lhs: f64 = (0..2).map(|i| a[i][j] * sol.duals[i]).sum();
            assert!(lhs + 1e-6 >= c[j]);
        }
    }

    #[test]
    fn zero_objective_is_fine() {
        let sol = maximize(&[0.0], &[vec![1.0]], &[5.0]).unwrap();
        assert_close(sol.value, 0.0);
    }
}
