//! MVCC snapshot store: immutable published snapshots, copy-on-write
//! writer deltas, lock-free pinned reads.
//!
//! The serving story the survey's results license: parallel-correctness
//! and transferability are statements about a query against a *fixed*
//! instance, so a server can freeze the instance it is about to answer
//! from, share that frozen state with arbitrarily many readers, and keep
//! mutating a private copy on the side. This module provides exactly
//! that discipline:
//!
//! * a [`Snapshot`] is an immutable, `Arc`-shared, **sealed**
//!   [`Instance`] ([`Instance::seal`]) — warm tries are served without a
//!   lock — plus the frozen outputs of any materialized views that were
//!   refreshed at publication (keyed by the consumer's opaque view key,
//!   see `parlog-datalog`'s `view_key_for`);
//! * a [`SnapshotStore`] owns the mutable **writer** instance and the
//!   current snapshot. [`SnapshotStore::publish`] clones the writer
//!   (O(1) for the trie cache — copy-on-write), seals the clone, swaps
//!   it in as the new current snapshot and *then* bumps the generation
//!   counter with a single release-store — the linearization point.
//!
//! Readers [`pin`](SnapshotStore::pin) a snapshot once and evaluate
//! against it for as long as they like; concurrent publications never
//! mutate pinned state, only replace which snapshot *new* pins observe.
//! The cheap staleness probe [`SnapshotStore::pin_if_newer`] is a single
//! acquire-load on the generation counter, so a read loop's steady state
//! touches no lock at all.

use crate::fastmap::{fxmap, FxMap};
use crate::instance::Instance;
use crate::symbols::RelId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock recovering from poisoning (same contract as the instance's
/// internal caches: the guarded state is replaceable, a panicked peer
/// must not wedge every later caller).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One immutable published version of the database: a sealed instance
/// plus the view outputs frozen at publication.
#[derive(Debug)]
pub struct Snapshot {
    generation: u64,
    instance: Instance,
    view_outputs: FxMap<u64, Arc<Instance>>,
}

impl Snapshot {
    /// The publication generation (0 for the store's initial snapshot;
    /// strictly increasing afterwards).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The underlying sealed instance. Evaluate queries directly against
    /// it: every read path (facts, warm tries, indexes) is lock-free.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The writer epoch this snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.instance.epoch()
    }

    /// The frozen output of the materialized view registered under
    /// `key` at publication time, if any. Lock-free.
    pub fn view_output(&self, key: u64) -> Option<Arc<Instance>> {
        self.view_outputs.get(&key).cloned()
    }

    /// Number of view outputs frozen into this snapshot.
    pub fn view_count(&self) -> usize {
        self.view_outputs.len()
    }

    /// All frozen view outputs, cloned (cheap: `Arc` values). Used by
    /// [`SnapshotStore::publish`] to carry views across a
    /// content-preserving publication.
    pub fn all_view_outputs(&self) -> FxMap<u64, Arc<Instance>> {
        self.view_outputs.clone()
    }
}

/// The MVCC store: one mutable writer instance, one current snapshot,
/// and the generation counter whose release-store linearizes
/// publication.
///
/// Writer-side calls ([`mutate`](SnapshotStore::mutate),
/// [`publish`](SnapshotStore::publish)) serialize on the writer mutex;
/// reader-side calls ([`pin`](SnapshotStore::pin),
/// [`generation`](SnapshotStore::generation),
/// [`pin_if_newer`](SnapshotStore::pin_if_newer)) touch at most the
/// short `current` mutex, and only when the generation actually moved.
#[derive(Debug)]
pub struct SnapshotStore {
    writer: Mutex<Instance>,
    current: Mutex<Arc<Snapshot>>,
    generation: AtomicU64,
    publishes: AtomicU64,
}

impl SnapshotStore {
    /// Open a store over `initial`, publishing it as generation 0.
    pub fn new(initial: Instance) -> SnapshotStore {
        let mut frozen = initial.clone();
        frozen.seal();
        SnapshotStore {
            writer: Mutex::new(initial),
            current: Mutex::new(Arc::new(Snapshot {
                generation: 0,
                instance: frozen,
                view_outputs: fxmap(),
            })),
            generation: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        }
    }

    /// The current publication generation (acquire-load; pairs with the
    /// release-store in [`publish`](SnapshotStore::publish)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Number of publications performed (diagnostic).
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Pin the current snapshot: an `Arc` clone the caller keeps for as
    /// long as it wants a stable view of the database.
    pub fn pin(&self) -> Arc<Snapshot> {
        Arc::clone(&lock_recover(&self.current))
    }

    /// Re-pin only if a newer snapshot has been published since `pinned`
    /// was taken. The steady-state path is one acquire-load and no lock;
    /// returns `true` iff `pinned` was replaced.
    pub fn pin_if_newer(&self, pinned: &mut Arc<Snapshot>) -> bool {
        if self.generation() == pinned.generation {
            return false;
        }
        *pinned = self.pin();
        true
    }

    /// Run `f` against the mutable writer instance (the copy-on-write
    /// delta under construction). Nothing becomes visible to readers
    /// until the next [`publish`](SnapshotStore::publish).
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Instance) -> R) -> R {
        f(&mut lock_recover(&self.writer))
    }

    /// Run `f` against the writer instance read-only (e.g. to scan for
    /// compaction candidates or compute a content root).
    pub fn with_writer<R>(&self, f: impl FnOnce(&Instance) -> R) -> R {
        f(&lock_recover(&self.writer))
    }

    /// Warm the writer's trie cache for `(rel, perm)` so snapshots
    /// sealed from it serve that permutation lock-free from the first
    /// read.
    pub fn warm(&self, rel: RelId, perm: &[usize]) {
        let _ = lock_recover(&self.writer).trie_layers(rel, perm);
    }

    /// Publish the writer's current state as a new snapshot.
    ///
    /// If the writer's mutation epoch is unchanged since the current
    /// snapshot was frozen — a **content-preserving** publication, e.g.
    /// a compactor installing merged runs — the previous snapshot's
    /// frozen view outputs are carried forward: they were derived from
    /// the same fact set, so they are still exact. Any real mutation
    /// bumps the epoch and the views are dropped (use
    /// [`publish_with`](SnapshotStore::publish_with) to re-derive them).
    pub fn publish(&self) -> Arc<Snapshot> {
        let prev = self.pin();
        self.publish_with(move |w| {
            if w.epoch() == prev.epoch() {
                prev.all_view_outputs()
            } else {
                fxmap()
            }
        })
    }

    /// Publish, first deriving the frozen view outputs from the writer
    /// instance (the hook `parlog-datalog`'s `publish_views` plugs into:
    /// `try_refresh` runs here, against the writer, so a published
    /// snapshot's views are already consistent and no reader ever pays
    /// the refresh).
    ///
    /// The steps, in order: (1) copy-on-write clone of the writer —
    /// O(1) for the trie cache; (2) seal the clone, refreshing every
    /// cached trie to the writer's epoch; (3) swap the `current`
    /// pointer; (4) **release-store the new generation** — the single
    /// store that makes the snapshot observable to the lock-free
    /// staleness probe, and hence the publication's linearization
    /// point. Readers pinned to older generations are untouched.
    pub fn publish_with<F>(&self, views: F) -> Arc<Snapshot>
    where
        F: FnOnce(&Instance) -> FxMap<u64, Arc<Instance>>,
    {
        let writer = lock_recover(&self.writer);
        let view_outputs = views(&writer);
        let mut frozen = writer.clone();
        frozen.seal();
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let snap = Arc::new(Snapshot {
            generation,
            instance: frozen,
            view_outputs,
        });
        *lock_recover(&self.current) = Arc::clone(&snap);
        self.generation.store(generation, Ordering::Release);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        drop(writer);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query_with, EvalStrategy};
    use crate::fact::fact;
    use crate::parser::parse_query;
    use crate::symbols::rel;

    fn triangle_store() -> SnapshotStore {
        SnapshotStore::new(Instance::from_facts([
            fact("R", &[1, 2]),
            fact("S", &[2, 3]),
            fact("T", &[3, 1]),
        ]))
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_publications() {
        let store = triangle_store();
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let pinned = store.pin();
        let before = eval_query_with(&q, pinned.instance(), EvalStrategy::Wcoj);
        for k in 10..15u64 {
            store.mutate(|w| {
                w.insert(fact("R", &[k, k]));
            });
            store.publish();
        }
        // The pinned snapshot still answers exactly as at pin time.
        let after = eval_query_with(&q, pinned.instance(), EvalStrategy::Wcoj);
        assert_eq!(before, after);
        assert_eq!(pinned.generation(), 0);
        // A fresh pin sees the new state.
        let fresh = store.pin();
        assert_eq!(fresh.generation(), 5);
        assert_eq!(fresh.instance().len(), 8);
    }

    #[test]
    fn pin_if_newer_is_a_noop_until_publication() {
        let store = triangle_store();
        let mut pinned = store.pin();
        assert!(!store.pin_if_newer(&mut pinned));
        store.mutate(|w| {
            w.insert(fact("R", &[9, 9]));
        });
        // Mutation alone is invisible: only publish moves the generation.
        assert!(!store.pin_if_newer(&mut pinned));
        assert_eq!(pinned.instance().len(), 3);
        store.publish();
        assert!(store.pin_if_newer(&mut pinned));
        assert_eq!(pinned.generation(), 1);
        assert_eq!(pinned.instance().len(), 4);
        assert!(!store.pin_if_newer(&mut pinned));
    }

    #[test]
    fn published_snapshots_are_sealed_and_warm() {
        let store = triangle_store();
        store.warm(rel("R"), &[0, 1]);
        store.mutate(|w| {
            w.insert(fact("R", &[4, 5]));
        });
        let snap = store.publish();
        assert!(snap.instance().is_sealed());
        // The warm perm is served frozen — no builds on the snapshot.
        let layers = snap.instance().trie_layers(rel("R"), &[0, 1]);
        assert_eq!(layers.runs().iter().map(|r| r.rows()).sum::<usize>(), 2);
        assert_eq!(snap.instance().trie_builds(), 0);
    }

    #[test]
    fn view_outputs_are_frozen_at_publication() {
        let store = triangle_store();
        let out = Arc::new(Instance::from_facts([fact("V", &[1])]));
        let snap = store.publish_with(|_| {
            let mut m = fxmap();
            m.insert(42u64, Arc::clone(&out));
            m
        });
        assert_eq!(snap.view_count(), 1);
        assert!(Arc::ptr_eq(&snap.view_output(42).unwrap(), &out));
        assert!(snap.view_output(7).is_none());
        // A content-preserving publish (no mutation since the freeze)
        // carries the frozen views forward — they are still exact.
        let snap2 = store.publish();
        assert_eq!(snap2.view_count(), 1);
        assert!(Arc::ptr_eq(&snap2.view_output(42).unwrap(), &out));
        // A mutation bumps the epoch: the next plain publish drops the
        // now-stale views.
        store.mutate(|w| {
            w.insert(fact("R", &[9, 9]));
        });
        let snap3 = store.publish();
        assert_eq!(snap3.view_count(), 0);
    }

    #[test]
    fn generation_is_monotonic_and_matches_publish_count() {
        let store = triangle_store();
        assert_eq!(store.generation(), 0);
        for i in 1..=4u64 {
            let s = store.publish();
            assert_eq!(s.generation(), i);
            assert_eq!(store.generation(), i);
        }
        assert_eq!(store.publish_count(), 4);
    }
}
