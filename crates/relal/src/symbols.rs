//! Process-wide interning of relation names and constant symbols.
//!
//! The theory in the survey works over an abstract infinite domain **dom**
//! and a database schema of relation names. We intern both kinds of names
//! into small integer ids so that [`crate::Fact`]s are compact and cheap to
//! hash, while remaining printable for diagnostics and reports.
//!
//! Interning is global (a `OnceLock`-guarded table behind a
//! `parking_lot::RwLock`). This mirrors how compilers intern symbols: it
//! keeps every API in the workspace free of an explicit interner parameter.
//! Ids are stable for the lifetime of the process, which is all the
//! simulators and decision procedures need.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned relation name, e.g. `R` in `R(x, y)`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct RelId(pub u32);

/// An interned constant symbol, e.g. `'a'` in `R('a', x)`.
///
/// Symbols share the value space of [`crate::Val`]: a symbol `s` denotes the
/// domain value `Val(s.0)`. Plain integers written in query text denote
/// themselves; interned symbols are allocated from the top of the `u64`
/// range downward so the two never collide in practice.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Sym(pub u64);

/// First value used for interned symbols. Values below this are "plain"
/// integers (used by data generators); values at or above are named
/// constants. `1 << 48` leaves astronomically more room than any simulation
/// uses on either side.
pub const SYM_BASE: u64 = 1 << 48;

struct Interner {
    rel_names: Vec<String>,
    rel_ids: HashMap<String, RelId>,
    sym_names: Vec<String>,
    sym_ids: HashMap<String, Sym>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            rel_names: Vec::new(),
            rel_ids: HashMap::new(),
            sym_names: Vec::new(),
            sym_ids: HashMap::new(),
        }
    }
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::new()))
}

/// Intern a relation name, returning its stable id.
///
/// ```
/// use parlog_relal::symbols::rel;
/// assert_eq!(rel("R"), rel("R"));
/// assert_ne!(rel("R"), rel("S"));
/// ```
pub fn rel(name: &str) -> RelId {
    if let Some(&id) = table().read().rel_ids.get(name) {
        return id;
    }
    let mut t = table().write();
    if let Some(&id) = t.rel_ids.get(name) {
        return id;
    }
    let id = RelId(t.rel_names.len() as u32);
    t.rel_names.push(name.to_owned());
    t.rel_ids.insert(name.to_owned(), id);
    id
}

/// Intern a constant symbol, returning its stable id.
///
/// ```
/// use parlog_relal::symbols::sym;
/// assert_eq!(sym("a"), sym("a"));
/// assert_ne!(sym("a"), sym("b"));
/// ```
pub fn sym(name: &str) -> Sym {
    if let Some(&id) = table().read().sym_ids.get(name) {
        return id;
    }
    let mut t = table().write();
    if let Some(&id) = t.sym_ids.get(name) {
        return id;
    }
    let id = Sym(SYM_BASE + t.sym_names.len() as u64);
    t.sym_names.push(name.to_owned());
    t.sym_ids.insert(name.to_owned(), id);
    id
}

/// Look up the name of a relation id. Returns `"?rel<n>"` for ids that were
/// never interned (which cannot happen through the public API).
pub fn rel_name(id: RelId) -> String {
    let t = table().read();
    t.rel_names
        .get(id.0 as usize)
        .cloned()
        .unwrap_or_else(|| format!("?rel{}", id.0))
}

/// Render a domain value: named constants print their symbol name, plain
/// integers print numerically.
pub fn val_name(v: u64) -> String {
    if v >= SYM_BASE {
        let t = table().read();
        if let Some(name) = t.sym_names.get((v - SYM_BASE) as usize) {
            return name.clone();
        }
    }
    v.to_string()
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", rel_name(*self))
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", rel_name(*self))
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", val_name(self.0))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", val_name(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_interning_is_stable() {
        let a = rel("Customer");
        let b = rel("Customer");
        assert_eq!(a, b);
        assert_eq!(rel_name(a), "Customer");
    }

    #[test]
    fn sym_interning_is_stable_and_disjoint_from_integers() {
        let a = sym("alpha");
        assert_eq!(a, sym("alpha"));
        assert!(a.0 >= SYM_BASE);
        assert_eq!(val_name(a.0), "alpha");
        assert_eq!(val_name(42), "42");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        assert_ne!(rel("Rx"), rel("Ry"));
        assert_ne!(sym("sx"), sym("sy"));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (rel("Shared"), sym("shared"))))
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
