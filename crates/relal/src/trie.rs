//! Sorted columnar tries and the LeapFrog TrieJoin evaluator.
//!
//! The survey's one-round HyperCube analysis (Section 3.1) bounds
//! *communication* by the fractional edge packing `τ*`; the *local
//! computation* each server performs afterwards is bounded — when done
//! right — by the AGM inequality `|Q(I)| ≤ m^{ρ*}` with `ρ*` the
//! fractional edge **cover** (Atserias–Grohe–Marx). Worst-case-optimal
//! join algorithms (Ngo–Porat–Ré–Rudra; Veldhuizen's LeapFrog TrieJoin)
//! run in time `Õ(m^{ρ*})`, whereas any binary-join plan is `Ω(m²)` on
//! the triangle query's hard instances even though `ρ* = 3/2`.
//!
//! This module provides the storage layer and evaluator:
//!
//! * [`TrieRel`] — one relation, stored as the sorted set of its tuples
//!   under a fixed column permutation, column-major. A trie node at depth
//!   `d` is a contiguous row range `[lo, hi)`; its children are the
//!   distinct values of column `d` within that range, found by galloping
//!   / binary-search [`TrieRel::seek_ge`]. Cached per `(relation,
//!   permutation)` as an LSM stack of immutable runs (see
//!   [`crate::lsm::TrieLayers`] and [`Instance::trie_layers`]) that is
//!   refreshed from the delta log instead of rebuilt on mutation.
//! * [`wcoj_variable_order`] — a variable-elimination order over the
//!   query hypergraph (highest atom-degree first, connectivity-greedy),
//!   optionally forced to start with a caller-supplied prefix (the
//!   Datalog semi-naive loop puts the delta atom's variables outermost).
//! * [`satisfying_valuations_wcoj`] — the LeapFrog TrieJoin itself:
//!   per-variable leapfrog intersection across all atoms containing the
//!   variable, descending **every run** of each atom's trie stack one
//!   level per variable (a k-way merge cursor: the candidate value at a
//!   level is the leapfrogged minimum over live runs, so the LSM layering
//!   is invisible to the join). Tombstoned tuples lingering in old runs
//!   are filtered at the leaves, where atoms are fully ground and
//!   instance membership is authoritative. Negated atoms are checked at
//!   the leaves, inequalities as soon as both endpoints are bound —
//!   exactly the contract of the backtracking evaluator in
//!   [`crate::eval`], so the two agree fact-for-fact.

use crate::atom::{Term, Var};
use crate::fact::Val;
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::valuation::Valuation;
use std::sync::Arc;

/// A relation stored as a sorted columnar trie for one column permutation.
///
/// `cols[d][i]` is the depth-`d` value of the `i`-th tuple in the sorted
/// order; tuples are deduplicated, so for binary `R` under the identity
/// permutation the rows are exactly the sorted distinct pairs of `R`.
#[derive(Debug, Clone)]
pub struct TrieRel {
    /// `perm[d]` = the fact argument position stored at trie depth `d`.
    pub perm: Vec<usize>,
    /// Column-major tuple storage, aligned by row index.
    cols: Vec<Vec<Val>>,
    /// Number of stored (distinct, permuted) tuples.
    rows: usize,
}

impl TrieRel {
    /// Build the trie of `rel`'s facts in `instance` under `perm`. Facts
    /// whose arity differs from `perm.len()` cannot match the atom the
    /// permutation came from and are skipped.
    pub fn build(instance: &Instance, rel: crate::symbols::RelId, perm: &[usize]) -> TrieRel {
        let mut tuples: Vec<Vec<Val>> = instance
            .relation(rel)
            .filter(|f| f.args.len() == perm.len())
            .map(|f| perm.iter().map(|&p| f.args[p]).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        TrieRel::from_sorted_tuples(perm.to_vec(), tuples)
    }

    /// Build a trie run directly from already-permuted, sorted,
    /// deduplicated tuples — the LSM tail-run constructor.
    pub fn from_sorted_tuples(perm: Vec<usize>, tuples: Vec<Vec<Val>>) -> TrieRel {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]));
        let rows = tuples.len();
        let mut cols = vec![Vec::with_capacity(rows); perm.len()];
        for t in &tuples {
            debug_assert_eq!(t.len(), perm.len());
            for (d, &v) in t.iter().enumerate() {
                cols[d].push(v);
            }
        }
        TrieRel { perm, cols, rows }
    }

    /// Number of stored tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of trie levels (the arity of the permutation).
    pub fn depth(&self) -> usize {
        self.perm.len()
    }

    /// The value at `(depth, row)`.
    #[inline]
    pub fn value(&self, depth: usize, row: usize) -> Val {
        self.cols[depth][row]
    }

    /// Iterate the stored (permuted) tuples in sorted row order — the
    /// LSM compactor's input when merging runs off-thread.
    pub fn tuples(&self) -> impl Iterator<Item = Vec<Val>> + '_ {
        (0..self.rows).map(move |r| (0..self.depth()).map(|d| self.cols[d][r]).collect())
    }

    /// First row in `[lo, hi)` whose depth-`d` value is `≥ v`, or `hi`.
    ///
    /// Gallops from `lo` (the leapfrog cursor advances in small steps far
    /// more often than it jumps), then binary-searches the bracketed run —
    /// `O(log gap)` rather than `O(log (hi−lo))`.
    pub fn seek_ge(&self, d: usize, lo: usize, hi: usize, v: Val) -> usize {
        gallop(&self.cols[d], lo, hi, |x| x >= v)
    }

    /// First row in `[lo, hi)` whose depth-`d` value is `> v`, or `hi` —
    /// i.e. the end of `v`'s run starting at `lo`.
    pub fn seek_gt(&self, d: usize, lo: usize, hi: usize, v: Val) -> usize {
        gallop(&self.cols[d], lo, hi, |x| x > v)
    }

    /// Narrow `[lo, hi)` at depth `d` to the rows whose value equals `v`
    /// (possibly empty).
    pub fn descend(&self, d: usize, lo: usize, hi: usize, v: Val) -> (usize, usize) {
        let start = self.seek_ge(d, lo, hi, v);
        if start == hi || self.cols[d][start] != v {
            return (start, start);
        }
        (start, self.seek_gt(d, start, hi, v))
    }
}

/// First index `i` in `[lo, hi)` with `pred(col[i])`, or `hi` — `pred`
/// must be monotone over the sorted column. Exponential probe from `lo`
/// followed by a binary search of the bracketed run: `O(log gap)`.
fn gallop(col: &[Val], lo: usize, hi: usize, pred: impl Fn(Val) -> bool) -> usize {
    crate::opcount::bump();
    if lo >= hi || pred(col[lo]) {
        return lo;
    }
    let mut step = 1usize;
    let mut prev = lo; // invariant: !pred(col[prev])
    let bracket = loop {
        let probe = match prev.checked_add(step) {
            Some(p) if p < hi => p,
            _ => break hi,
        };
        if pred(col[probe]) {
            break probe + 1;
        }
        prev = probe;
        step <<= 1;
    };
    // Binary search (prev, bracket): first index satisfying pred.
    prev + 1 + col[prev + 1..bracket].partition_point(|&x| !pred(x))
}

/// A variable-elimination order for LeapFrog TrieJoin, derived from the
/// query hypergraph: variables of `prefix` first (in the given order, for
/// delta-outermost Datalog evaluation), then greedily the remaining
/// variable with (a) the most atoms already "touched" by placed variables
/// and (b) the highest atom degree — keeping the intersection levels busy
/// and the search space connected. Constants play no role (they are
/// descended before any variable level).
pub fn wcoj_variable_order(q: &ConjunctiveQuery, prefix: &[Var]) -> Vec<Var> {
    let all = q.body_variables();
    let mut order: Vec<Var> = prefix.iter().filter(|v| all.contains(v)).cloned().collect();
    let atom_vars: Vec<Vec<Var>> = q.body.iter().map(|a| a.variables()).collect();
    while order.len() < all.len() {
        let best = all
            .iter()
            .filter(|v| !order.contains(v))
            .max_by_key(|v| {
                let touched = atom_vars
                    .iter()
                    .filter(|av| av.contains(v) && av.iter().any(|w| order.contains(w)))
                    .count();
                let degree = atom_vars.iter().filter(|av| av.contains(v)).count();
                // Ties broken by *reverse* first-occurrence position so
                // `max_by_key` (which keeps the last max) settles on the
                // earliest variable — deterministic across runs.
                let pos = all.iter().position(|w| w == *v).unwrap();
                (touched, degree, usize::MAX - pos)
            })
            .cloned()
            .expect("unplaced variable exists");
        order.push(best);
    }
    order
}

/// One immutable run of an atom's LSM trie stack, with the stack of row
/// ranges descended so far (one entry per trie level; empty ranges are
/// padded so every run's stack stays depth-aligned).
struct RunCursor {
    trie: Arc<TrieRel>,
    ranges: Vec<(usize, usize)>,
}

/// The per-atom state of the LeapFrog TrieJoin: every run of its layered
/// trie, descended in lockstep — the k-way merge cursor.
struct AtomCursor {
    /// The runs of the atom's [`crate::lsm::TrieLayers`], oldest first.
    runs: Vec<RunCursor>,
    /// `levels[l]` = the variable-order index of the variable at trie
    /// depth `l`, or `None` for a constant column (descended at init).
    levels: Vec<Option<usize>>,
    /// Constant columns, as `(depth, value)` in depth order.
    consts: Vec<(usize, Val)>,
    /// The layers carried tombstones: verify ground facts at the leaves
    /// (old runs may still contain deleted tuples).
    live_check: bool,
}

/// All trie depths bound to variable-order index `oi` in `levels`
/// (repeated variables occupy several adjacent depths).
fn depths_of(levels: &[Option<usize>], oi: usize) -> std::ops::Range<usize> {
    let start = levels.iter().position(|l| *l == Some(oi));
    match start {
        None => 0..0,
        Some(s) => {
            let mut e = s;
            while e < levels.len() && levels[e] == Some(oi) {
                e += 1;
            }
            s..e
        }
    }
}

/// Minimum depth-`d` value over the live runs of one participant
/// (`slots[r] = (pos, hi)`; a run is live while `pos < hi`). Must only be
/// called with at least one live slot.
fn min_live(cur: &AtomCursor, slots: &[(usize, usize)], d: usize) -> Val {
    let mut m = Val(u64::MAX);
    for (r, &(p, h)) in slots.iter().enumerate() {
        if p < h {
            let v = cur.runs[r].trie.value(d, p);
            if v < m {
                m = v;
            }
        }
    }
    m
}

/// Enumerate all satisfying valuations of `q` on `instance` with LeapFrog
/// TrieJoin, visiting variables in `order` (see [`wcoj_variable_order`]).
/// `order` must contain every positive-body variable exactly once.
///
/// The valuations produced are exactly those of
/// [`crate::eval::satisfying_valuations`] — same semantics, different
/// asymptotics. With a single-run, tombstone-free trie stack (the state
/// of any freshly built cache entry) the seek sequence is identical to
/// the classic single-trie LFTJ, so op-counts are unchanged.
pub fn satisfying_valuations_wcoj_ordered(
    q: &ConjunctiveQuery,
    instance: &Instance,
    order: &[Var],
) -> Vec<Valuation> {
    debug_assert_eq!(
        {
            let mut o: Vec<&Var> = order.iter().collect();
            o.sort();
            o.dedup();
            o.len()
        },
        q.body_variables().len(),
        "order must cover the body variables exactly once"
    );
    let mut cursors: Vec<AtomCursor> = Vec::with_capacity(q.body.len());
    for atom in &q.body {
        // Column permutation: constants first (by position), then
        // variables by their place in the global order; equal keys (a
        // repeated variable) stay in position order, making its columns
        // adjacent trie depths.
        let mut cols: Vec<usize> = (0..atom.terms.len()).collect();
        let key = |j: usize| match &atom.terms[j] {
            Term::Const(_) => (0usize, j),
            Term::Var(v) => (
                1 + order.iter().position(|w| w == v).expect("var in order"),
                j,
            ),
        };
        cols.sort_by_key(|&j| key(j));
        let layers = instance.trie_layers(atom.rel, &cols);
        let mut levels = Vec::with_capacity(cols.len());
        let mut consts = Vec::new();
        for (d, &j) in cols.iter().enumerate() {
            match &atom.terms[j] {
                Term::Const(c) => {
                    levels.push(None);
                    consts.push((d, *c));
                }
                Term::Var(v) => {
                    levels.push(Some(order.iter().position(|w| w == v).unwrap()));
                }
            }
        }
        let runs = layers
            .runs()
            .iter()
            .map(|t| RunCursor {
                ranges: vec![(0, t.rows())],
                trie: Arc::clone(t),
            })
            .collect();
        cursors.push(AtomCursor {
            runs,
            levels,
            consts,
            live_check: layers.has_tombstones(),
        });
    }

    // Descend every constant column up front, in every run; an atom whose
    // runs are all empty proves the query unsatisfiable on this instance
    // (tombstones only ever shrink the answer further).
    for cur in &mut cursors {
        let mut alive = false;
        for rc in &mut cur.runs {
            let mut range = rc.ranges[0];
            for &(d, v) in &cur.consts {
                range = rc.trie.descend(d, range.0, range.1, v);
                rc.ranges.push(range);
            }
            if range.0 < range.1 {
                alive = true;
            }
        }
        if !alive {
            return Vec::new();
        }
    }

    // Atoms participating at each variable level, and pure membership
    // checks (repeated-variable-only atoms never participate — they are
    // fully descended once all their variables are bound).
    let participants: Vec<Vec<usize>> = (0..order.len())
        .map(|oi| {
            (0..cursors.len())
                .filter(|&k| !depths_of(&cursors[k].levels, oi).is_empty())
                .collect()
        })
        .collect();

    let mut out = Vec::new();
    let mut val = Valuation::new();
    lftj(
        q,
        instance,
        order,
        &participants,
        &mut cursors,
        0,
        &mut val,
        &mut out,
    );
    out
}

/// [`satisfying_valuations_wcoj_ordered`] with the default hypergraph
/// order ([`wcoj_variable_order`] with an empty prefix).
pub fn satisfying_valuations_wcoj(q: &ConjunctiveQuery, instance: &Instance) -> Vec<Valuation> {
    let order = wcoj_variable_order(q, &[]);
    satisfying_valuations_wcoj_ordered(q, instance, &order)
}

/// One leapfrog level: intersect the candidate values of every atom
/// containing `order[oi]` — taking each atom's value as the minimum over
/// its live runs — and for each common value descend all of its columns
/// in every run of every participating atom, recursing to the next level.
#[allow(clippy::too_many_arguments)]
fn lftj(
    q: &ConjunctiveQuery,
    instance: &Instance,
    order: &[Var],
    participants: &[Vec<usize>],
    cursors: &mut [AtomCursor],
    oi: usize,
    val: &mut Valuation,
    out: &mut Vec<Valuation>,
) {
    if oi == order.len() {
        // Leaf: every positive atom fully descended and non-empty in some
        // run. Atoms whose layers carry tombstones verify the ground fact
        // against the instance (a dead tuple may linger in an old run);
        // then check negation (inequalities were checked incrementally).
        for (k, cur) in cursors.iter().enumerate() {
            if cur.live_check {
                match val.apply(&q.body[k]) {
                    Some(f) if instance.contains(&f) => {}
                    _ => return,
                }
            }
        }
        for a in &q.negated {
            match val.apply(a) {
                Some(f) if !instance.contains(&f) => {}
                _ => return,
            }
        }
        out.push(val.clone());
        return;
    }
    let parts = &participants[oi];
    debug_assert!(!parts.is_empty(), "safety: every variable is in an atom");

    // First column of this variable per participant; extra (repeated)
    // columns are descended only on a candidate match.
    let firsts: Vec<usize> = parts
        .iter()
        .map(|&k| depths_of(&cursors[k].levels, oi).start)
        .collect();
    // Per participant, per run: the (pos, hi) cursor within the run's
    // current range at this level. A run with `pos == hi` is exhausted
    // (or was already empty at this subtree) and is skipped.
    let mut slots: Vec<Vec<(usize, usize)>> = Vec::with_capacity(parts.len());
    for (i, &k) in parts.iter().enumerate() {
        let mut s = Vec::with_capacity(cursors[k].runs.len());
        let mut alive = false;
        for rc in &cursors[k].runs {
            let &(lo, hi) = rc.ranges.last().unwrap();
            debug_assert_eq!(rc.ranges.len() - 1, firsts[i]);
            if lo < hi {
                alive = true;
            }
            s.push((lo, hi));
        }
        if !alive {
            return;
        }
        slots.push(s);
    }

    'leapfrog: loop {
        // The leapfrog: raise every run of every participant to the
        // current maximum value until all participants' minima agree (a
        // candidate) or one participant runs off every run's range.
        let mut max = Val(0);
        for (i, &k) in parts.iter().enumerate() {
            let v = min_live(&cursors[k], &slots[i], firsts[i]);
            if v > max {
                max = v;
            }
        }
        loop {
            let mut all_equal = true;
            for (i, &k) in parts.iter().enumerate() {
                let d = firsts[i];
                let cur = &cursors[k];
                let mut any_live = false;
                for (r, slot) in slots[i].iter_mut().enumerate() {
                    if slot.0 < slot.1 && cur.runs[r].trie.value(d, slot.0) < max {
                        slot.0 = cur.runs[r].trie.seek_ge(d, slot.0, slot.1, max);
                    }
                    if slot.0 < slot.1 {
                        any_live = true;
                    }
                }
                if !any_live {
                    return;
                }
                let v = min_live(cur, &slots[i], d);
                if v > max {
                    max = v;
                    all_equal = false;
                }
            }
            if all_equal {
                break;
            }
        }
        let x = max;

        // Candidate value x: descend every column of this variable in
        // every run of every participant (repeated columns must also
        // equal x). Runs positioned past x get depth-aligned empty
        // ranges; the atom survives if any run still has rows.
        let mut ok = true;
        let mut pushed: Vec<(usize, usize)> = Vec::with_capacity(parts.len());
        for (i, &k) in parts.iter().enumerate() {
            let cur = &mut cursors[k];
            let depths = depths_of(&cur.levels, oi);
            let mut atom_alive = false;
            for (r, &(p, h)) in slots[i].iter().enumerate() {
                let rc = &mut cur.runs[r];
                let mut range = if p < h && rc.trie.value(depths.start, p) == x {
                    (p, rc.trie.seek_gt(depths.start, p, h, x))
                } else {
                    (p, p)
                };
                rc.ranges.push(range);
                for d in depths.start + 1..depths.end {
                    if range.0 < range.1 {
                        range = rc.trie.descend(d, range.0, range.1, x);
                    } else {
                        range = (range.0, range.0);
                    }
                    rc.ranges.push(range);
                }
                if range.0 < range.1 {
                    atom_alive = true;
                }
            }
            pushed.push((k, depths.len()));
            if !atom_alive {
                ok = false;
                break;
            }
        }
        if ok {
            val.bind(order[oi].clone(), x);
            if inequalities_ok_so_far(q, val) {
                lftj(q, instance, order, participants, cursors, oi + 1, val, out);
            }
            val.unbind(&order[oi]);
        }
        for &(k, n) in &pushed {
            for rc in &mut cursors[k].runs {
                for _ in 0..n {
                    rc.ranges.pop();
                }
            }
        }

        // Advance every run positioned at x past x's run; a participant
        // with no live runs left ends the level.
        for (i, &k) in parts.iter().enumerate() {
            let cur = &cursors[k];
            let d = firsts[i];
            let mut any_live = false;
            for (r, slot) in slots[i].iter_mut().enumerate() {
                if slot.0 < slot.1 && cur.runs[r].trie.value(d, slot.0) == x {
                    slot.0 = cur.runs[r].trie.seek_gt(d, slot.0, slot.1, x);
                }
                if slot.0 < slot.1 {
                    any_live = true;
                }
            }
            if !any_live {
                break 'leapfrog;
            }
        }
    }
}

/// Check every inequality of `q` whose endpoints are both bound.
fn inequalities_ok_so_far(q: &ConjunctiveQuery, val: &Valuation) -> bool {
    q.inequalities.iter().all(|(s, t)| {
        match (val.apply_term(s), val.apply_term(t)) {
            (Some(a), Some(b)) => a != b,
            _ => true, // not yet decidable
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, eval_query_naive, eval_query_wcoj};
    use crate::fact::fact;
    use crate::parser::parse_query;
    use crate::symbols::rel;

    fn db_triangle() -> Instance {
        Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[4, 5]),
            fact("S", &[2, 3]),
            fact("S", &[5, 6]),
            fact("T", &[3, 1]),
        ])
    }

    #[test]
    fn trie_layout_is_sorted_and_deduped() {
        let i = Instance::from_facts([
            fact("R", &[3, 1]),
            fact("R", &[1, 2]),
            fact("R", &[1, 1]),
            fact("R", &[3, 1]),
        ]);
        let t = TrieRel::build(&i, rel("R"), &[0, 1]);
        assert_eq!(t.rows(), 3);
        assert_eq!(
            (0..3)
                .map(|r| (t.value(0, r), t.value(1, r)))
                .collect::<Vec<_>>(),
            vec![(Val(1), Val(1)), (Val(1), Val(2)), (Val(3), Val(1))]
        );
        // Reversed permutation sorts by the second argument first.
        let rt = TrieRel::build(&i, rel("R"), &[1, 0]);
        assert_eq!(rt.value(0, 0), Val(1));
        assert_eq!(rt.value(1, 0), Val(1));
        assert_eq!(rt.value(0, 2), Val(2));
    }

    #[test]
    fn seek_gallops_to_the_right_row() {
        let i = Instance::from_facts((0..100u64).map(|k| fact("R", &[2 * k, k])));
        let t = TrieRel::build(&i, rel("R"), &[0, 1]);
        assert_eq!(t.seek_ge(0, 0, 100, Val(0)), 0);
        assert_eq!(t.seek_ge(0, 0, 100, Val(1)), 1); // first ≥1 is 2 at row 1
        assert_eq!(t.seek_ge(0, 0, 100, Val(50)), 25);
        assert_eq!(t.seek_ge(0, 0, 100, Val(51)), 26);
        assert_eq!(t.seek_ge(0, 0, 100, Val(1000)), 100);
        assert_eq!(t.seek_ge(0, 97, 100, Val(198)), 99);
        let (lo, hi) = t.descend(0, 0, 100, Val(120));
        assert_eq!((lo, hi), (60, 61));
        let (lo, hi) = t.descend(0, 0, 100, Val(121));
        assert_eq!(lo, hi);
    }

    #[test]
    fn variable_order_prefers_high_degree_and_respects_prefix() {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let o = wcoj_variable_order(&q, &[]);
        assert_eq!(o.len(), 3);
        let q2 = parse_query("H(x,y,z,w) <- R(x,y), S(y,z), U(y,w)").unwrap();
        let o2 = wcoj_variable_order(&q2, &[]);
        assert_eq!(o2[0], Var::new("y")); // degree 3 beats everything
        let o3 = wcoj_variable_order(&q2, &[Var::new("w")]);
        assert_eq!(o3[0], Var::new("w"));
        assert_eq!(o3[1], Var::new("y"));
    }

    #[test]
    fn triangle_query_matches_backtracking() {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let db = db_triangle();
        assert_eq!(eval_query_wcoj(&q, &db), eval_query(&q, &db));
        assert_eq!(
            eval_query_wcoj(&q, &db).sorted_facts(),
            vec![fact("H", &[1, 2, 3])]
        );
    }

    #[test]
    fn self_join_with_repeated_vars_matches() {
        let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
        let i = Instance::from_facts([fact("R", &[1, 1]), fact("R", &[1, 2])]);
        assert_eq!(eval_query_wcoj(&q, &i), eval_query(&q, &i));
        assert_eq!(eval_query_wcoj(&q, &i).len(), 2);
    }

    #[test]
    fn repeated_variable_inside_one_atom() {
        let q = parse_query("H(x,y) <- R(x,x,y)").unwrap();
        let i = Instance::from_facts([
            Fact::new(rel("R"), vec![Val(1), Val(1), Val(5)]),
            Fact::new(rel("R"), vec![Val(1), Val(2), Val(6)]),
            Fact::new(rel("R"), vec![Val(2), Val(2), Val(7)]),
        ]);
        let out = eval_query_wcoj(&q, &i);
        assert_eq!(out, eval_query(&q, &i));
        assert_eq!(out.len(), 2);
    }
    use crate::fact::Fact;

    #[test]
    fn constants_descend_before_variables() {
        let q = parse_query("H(x) <- R(1, x), S(x, 2)").unwrap();
        let i = Instance::from_facts([
            fact("R", &[1, 7]),
            fact("R", &[1, 8]),
            fact("R", &[2, 8]),
            fact("S", &[7, 2]),
            fact("S", &[8, 3]),
        ]);
        let out = eval_query_wcoj(&q, &i);
        assert_eq!(out, eval_query(&q, &i));
        assert_eq!(out.sorted_facts(), vec![fact("H", &[7])]);
    }

    #[test]
    fn negation_and_inequalities_match_backtracking() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x), x != z").unwrap();
        let i = Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
        ]);
        assert_eq!(eval_query_wcoj(&q, &i), eval_query(&q, &i));
    }

    #[test]
    fn boolean_and_empty_cases() {
        let q = parse_query("H() <- R(x,x)").unwrap();
        let yes = Instance::from_facts([fact("R", &[3, 3])]);
        let no = Instance::from_facts([fact("R", &[3, 4])]);
        assert_eq!(eval_query_wcoj(&q, &yes).len(), 1);
        assert_eq!(eval_query_wcoj(&q, &no).len(), 0);
        assert!(eval_query_wcoj(&q, &Instance::new()).is_empty());
    }

    #[test]
    fn ground_query_no_variables() {
        let q = parse_query("H() <- R(1, 2)").unwrap();
        let yes = Instance::from_facts([fact("R", &[1, 2])]);
        let no = Instance::from_facts([fact("R", &[2, 1])]);
        assert_eq!(eval_query_wcoj(&q, &yes).len(), 1);
        assert!(eval_query_wcoj(&q, &no).is_empty());
    }

    #[test]
    fn agrees_with_naive_on_survey_example() {
        use crate::fact::fact_syms;
        let q = parse_query("H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)").unwrap();
        let ie = Instance::from_facts([
            fact_syms("R", &["a", "b"]),
            fact_syms("R", &["b", "a"]),
            fact_syms("R", &["b", "c"]),
            fact_syms("S", &["a", "a"]),
            fact_syms("S", &["c", "a"]),
        ]);
        assert_eq!(eval_query_wcoj(&q, &ie), eval_query_naive(&q, &ie));
    }

    #[test]
    fn four_cycle_matches() {
        let q = parse_query("H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)").unwrap();
        let mut i = Instance::new();
        for k in 0..6u64 {
            i.insert(fact("R", &[k, k + 1]));
            i.insert(fact("S", &[k + 1, k + 2]));
            i.insert(fact("T", &[k + 2, k + 3]));
            i.insert(fact("U", &[k + 3, k]));
        }
        i.insert(fact("U", &[9, 9]));
        assert_eq!(eval_query_wcoj(&q, &i), eval_query(&q, &i));
    }

    /// The k-way merge cursor: query answers over a multi-run,
    /// tombstoned LSM stack are identical to a freshly built instance.
    #[test]
    fn layered_tries_answer_like_fresh_instances() {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), not T(z,x), x != z").unwrap();
        let mut db = db_triangle();
        // Warm the cache, then mutate so the entries accumulate tail runs
        // and tombstones (no compaction for small deltas).
        let _ = eval_query_wcoj(&q, &db);
        db.insert(fact("R", &[7, 2]));
        db.insert(fact("S", &[2, 9]));
        db.remove(&fact("R", &[1, 2]));
        db.insert(fact("T", &[9, 7]));
        let layered = eval_query_wcoj(&q, &db);
        let fresh_db = Instance::from_facts(db.iter().cloned());
        assert_eq!(layered, eval_query_wcoj(&q, &fresh_db));
        assert_eq!(layered, eval_query(&q, &db));
        // The stack really was layered when we asked.
        assert!(db.trie_layers(rel("R"), &[0, 1]).run_count() >= 1);
    }

    /// Tombstoned tuples lingering in old runs are invisible: a deleted
    /// fact stops matching even though its run still stores it.
    #[test]
    fn tombstones_hide_deleted_tuples_without_rebuild() {
        let q = parse_query("H(x,y) <- R(x,y)").unwrap();
        let mut db = Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[3, 4]),
            fact("R", &[5, 6]),
            fact("R", &[7, 8]),
        ]);
        let _ = eval_query_wcoj(&q, &db);
        let builds = db.trie_builds();
        db.remove(&fact("R", &[3, 4]));
        let out = eval_query_wcoj(&q, &db);
        assert_eq!(
            out.sorted_facts(),
            vec![fact("H", &[1, 2]), fact("H", &[5, 6]), fact("H", &[7, 8])]
        );
        // Served from the tombstoned layer, not a rebuild.
        assert_eq!(db.trie_builds(), builds);
        assert!(db.trie_layers(rel("R"), &[0, 1]).has_tombstones());
    }

    /// Differential check across a random-ish mutation schedule: WCOJ
    /// over the evolving LSM stack tracks the backtracking evaluator.
    #[test]
    fn evolving_instance_stays_consistent_with_backtracker() {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let mut db = db_triangle();
        let mut k = 0u64;
        for step in 0..40u64 {
            // Deterministic mixed workload: mostly inserts, some deletes.
            let v = (step * 7 + 3) % 11;
            if step % 5 == 4 {
                let f = fact("R", &[v, (v + 1) % 11]);
                db.remove(&f);
            } else {
                let relname = ["R", "S", "T"][(step % 3) as usize];
                db.insert(fact(relname, &[v, (v + 1) % 11]));
                k += 1;
            }
            assert_eq!(eval_query_wcoj(&q, &db), eval_query(&q, &db), "step {step}");
        }
        assert!(k > 0);
    }
}
