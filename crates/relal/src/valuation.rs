//! Valuations: total functions from query variables to domain values.
//!
//! Section 2: "A valuation V satisfies Q on instance I if all facts
//! required by V are in I. In that case, V derives the fact V(head_Q)."

use crate::atom::{Atom, Term, Var};
use crate::fact::{Fact, Val};
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use std::collections::BTreeMap;
use std::fmt;

/// A (possibly partial while being built) mapping from variables to values.
///
/// Backed by a `BTreeMap` for deterministic iteration and cheap ordering —
/// valuations are enumerated, deduplicated and compared constantly in the
/// parallel-correctness procedures.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Valuation {
    map: BTreeMap<Var, Val>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Build from pairs; later bindings override earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (Var, Val)>>(pairs: I) -> Valuation {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Convenience constructor over `&str` variable names and `u64` values.
    pub fn of(pairs: &[(&str, u64)]) -> Valuation {
        Valuation::from_pairs(pairs.iter().map(|&(n, v)| (Var::new(n), Val(v))))
    }

    /// Bind a variable. Returns the previous value, if any.
    pub fn bind(&mut self, v: Var, val: Val) -> Option<Val> {
        self.map.insert(v, val)
    }

    /// Remove a binding.
    pub fn unbind(&mut self, v: &Var) -> Option<Val> {
        self.map.remove(v)
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: &Var) -> Option<Val> {
        self.map.get(v).copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is no variable bound?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Val)> {
        self.map.iter().map(|(v, &val)| (v, val))
    }

    /// Is the valuation total on the variables of `q`?
    pub fn is_total_for(&self, q: &ConjunctiveQuery) -> bool {
        q.variables().iter().all(|v| self.map.contains_key(v))
    }

    /// Apply to a term; `None` if the term is an unbound variable.
    pub fn apply_term(&self, t: &Term) -> Option<Val> {
        match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => self.get(v),
        }
    }

    /// Apply to an atom, producing a fact; `None` if some variable is
    /// unbound.
    pub fn apply(&self, a: &Atom) -> Option<Fact> {
        let mut args = Vec::with_capacity(a.terms.len());
        for t in &a.terms {
            args.push(self.apply_term(t)?);
        }
        Some(Fact::new(a.rel, args))
    }

    /// The facts required by this valuation for `q`: `V(body_Q)`.
    ///
    /// # Panics
    /// Panics if the valuation is not total on the positive body.
    pub fn required_facts(&self, q: &ConjunctiveQuery) -> Instance {
        Instance::from_facts(self.body_facts(q))
    }

    /// The required facts as a vec (may contain duplicates if two atoms
    /// instantiate to the same fact — set semantics are obtained via
    /// [`Valuation::required_facts`]).
    pub fn body_facts(&self, q: &ConjunctiveQuery) -> Vec<Fact> {
        q.body
            .iter()
            .map(|a| {
                self.apply(a)
                    .expect("valuation must be total on the positive body")
            })
            .collect()
    }

    /// The derived head fact `V(head_Q)`.
    ///
    /// # Panics
    /// Panics if the valuation is not total on the head.
    pub fn derived_fact(&self, q: &ConjunctiveQuery) -> Fact {
        self.apply(&q.head)
            .expect("valuation must be total on the head")
    }

    /// Do the inequalities of `q` hold under this valuation?
    pub fn satisfies_inequalities(&self, q: &ConjunctiveQuery) -> bool {
        q.inequalities.iter().all(|(s, t)| {
            match (self.apply_term(s), self.apply_term(t)) {
                (Some(a), Some(b)) => a != b,
                // Unbound inequality terms cannot happen for safe queries
                // with total valuations; treat as unsatisfied defensively.
                _ => false,
            }
        })
    }

    /// Does the valuation **satisfy** `q` on `I`: all positive facts
    /// present, all negated facts absent, all inequalities hold?
    pub fn satisfies(&self, q: &ConjunctiveQuery, instance: &Instance) -> bool {
        if !self.satisfies_inequalities(q) {
            return false;
        }
        for a in &q.body {
            match self.apply(a) {
                Some(f) if instance.contains(&f) => {}
                _ => return false,
            }
        }
        for a in &q.negated {
            match self.apply(a) {
                Some(f) if !instance.contains(&f) => {}
                _ => return false,
            }
        }
        true
    }
}

impl FromIterator<(Var, Val)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Var, Val)>>(iter: I) -> Valuation {
        Valuation::from_pairs(iter)
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, val)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}↦{val}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::fact;
    use crate::parser::parse_query;

    #[test]
    fn apply_and_required_facts() {
        // Example 4.5 of the survey.
        let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
        let v1 = Valuation::of(&[("x", 1), ("y", 2), ("z", 1)]);
        let req = v1.required_facts(&q);
        assert_eq!(req.len(), 3);
        assert!(req.contains(&fact("R", &[1, 2])));
        assert!(req.contains(&fact("R", &[2, 1])));
        assert!(req.contains(&fact("R", &[1, 1])));
        assert_eq!(v1.derived_fact(&q), fact("H", &[1, 1]));

        let v2 = Valuation::of(&[("x", 1), ("y", 1), ("z", 1)]);
        assert_eq!(v2.required_facts(&q).len(), 1);
        assert_eq!(v2.derived_fact(&q), v1.derived_fact(&q));
    }

    #[test]
    fn satisfies_checks_positive_negative_and_inequalities() {
        let q = parse_query("H(x) <- R(x,y), not S(y), x != y").unwrap();
        let mut i = Instance::new();
        i.insert(fact("R", &[1, 2]));
        i.insert(fact("S", &[3]));
        let good = Valuation::of(&[("x", 1), ("y", 2)]);
        assert!(good.satisfies(&q, &i));
        // Fails the inequality:
        let mut i2 = Instance::new();
        i2.insert(fact("R", &[5, 5]));
        let eq = Valuation::of(&[("x", 5), ("y", 5)]);
        assert!(!eq.satisfies(&q, &i2));
        // Fails negation:
        let mut i3 = Instance::new();
        i3.insert(fact("R", &[1, 3]));
        i3.insert(fact("S", &[3]));
        let neg = Valuation::of(&[("x", 1), ("y", 3)]);
        assert!(!neg.satisfies(&q, &i3));
    }

    #[test]
    fn totality_check() {
        let q = parse_query("H(x) <- R(x,y)").unwrap();
        let partial = Valuation::of(&[("x", 1)]);
        assert!(!partial.is_total_for(&q));
        let total = Valuation::of(&[("x", 1), ("y", 2)]);
        assert!(total.is_total_for(&q));
    }

    #[test]
    fn bind_unbind() {
        let mut v = Valuation::new();
        assert_eq!(v.bind(Var::new("x"), Val(1)), None);
        assert_eq!(v.bind(Var::new("x"), Val(2)), Some(Val(1)));
        assert_eq!(v.get(&Var::new("x")), Some(Val(2)));
        assert_eq!(v.unbind(&Var::new("x")), Some(Val(2)));
        assert!(v.is_empty());
    }
}
