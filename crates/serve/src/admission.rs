//! Bounded admission control: refuse, don't queue.
//!
//! A serving thread admits a request by taking a [`Permit`] from the
//! shared [`AdmissionGate`]; the permit is RAII — dropping it (however
//! the request ends, including by panic unwinding through the
//! evaluator) releases the slot. When all slots are taken the gate
//! refuses with the typed [`Overload`] error instead of queueing: the
//! same contract as `parlog_supervisor::degrade` — a load the system
//! cannot absorb is reported as a *refusal the client can act on*
//! (back off, retry elsewhere), never as silent unbounded latency.
//!
//! The gate is a single atomic counter with a compare-exchange loop:
//! admission and release are lock-free and O(1), suitable for the
//! per-request hot path.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Typed refusal: the gate was saturated at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// All `capacity` slots were in flight.
    Saturated {
        /// Requests in flight at the refusing load.
        in_flight: usize,
        /// The gate's capacity.
        capacity: usize,
    },
}

impl fmt::Display for Overload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overload::Saturated {
                in_flight,
                capacity,
            } => write!(
                f,
                "admission refused: {in_flight} requests in flight (capacity {capacity})"
            ),
        }
    }
}

/// The shared in-flight gate.
#[derive(Debug)]
pub struct AdmissionGate {
    in_flight: AtomicUsize,
    capacity: usize,
    admitted: AtomicU64,
    refused: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent requests.
    /// `capacity` is clamped to at least 1 (a zero-capacity gate would
    /// refuse everything forever).
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            in_flight: AtomicUsize::new(0),
            capacity: capacity.max(1),
            admitted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    /// The gate's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently in flight (racy by nature; diagnostic).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total requests refused so far.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Try to admit one request. Lock-free; returns the RAII permit or
    /// the typed refusal.
    pub fn try_admit(&self) -> Result<Permit<'_>, Overload> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                self.refused.fetch_add(1, Ordering::Relaxed);
                return Err(Overload::Saturated {
                    in_flight: cur,
                    capacity: self.capacity,
                });
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Permit { gate: self });
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// An admitted request's slot. Dropping it releases the slot.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_refuses() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().unwrap();
        let b = gate.try_admit().unwrap();
        assert_eq!(gate.in_flight(), 2);
        let refused = gate.try_admit();
        assert_eq!(
            refused.unwrap_err(),
            Overload::Saturated {
                in_flight: 2,
                capacity: 2
            }
        );
        drop(a);
        let c = gate.try_admit().unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.refused(), 1);
    }

    #[test]
    fn permit_released_on_panic_unwind() {
        let gate = AdmissionGate::new(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = gate.try_admit().unwrap();
            panic!("request blew up");
        }));
        assert!(r.is_err());
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.try_admit().is_ok());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.capacity(), 1);
        assert!(gate.try_admit().is_ok());
    }

    #[test]
    fn concurrent_hammer_never_exceeds_capacity() {
        let gate = AdmissionGate::new(3);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if let Ok(_p) = gate.try_admit() {
                            let now = gate.in_flight();
                            peak.fetch_max(now, Ordering::Relaxed);
                            assert!(now <= 3, "in-flight {now} exceeded capacity");
                        }
                    }
                });
            }
        });
        assert_eq!(gate.in_flight(), 0);
        assert!(peak.load(Ordering::Relaxed) <= 3);
    }
}
