//! Background LSM compaction: merge off-thread, install-if-current.
//!
//! Every trie-cache entry is an LSM stack of immutable `Arc`'d runs
//! plus a tombstone set (`parlog_relal::lsm::TrieLayers`). Reads absorb
//! the stack (k-way leapfrog over runs, tombstone filtering), so a
//! deep stack taxes every read until someone merges it. Merging is
//! **pure** — `TrieLayers::merged` touches only the immutable runs —
//! which makes it safe to run anywhere, including a thread that holds
//! no lock on the instance. The loop is therefore:
//!
//! 1. **collect** — snapshot the writer's compaction candidates
//!    (`Instance::compaction_candidates`): cheap clones of `Arc`'d run
//!    stacks, taken under the writer lock but O(entries), not O(data);
//! 2. **merge** — off the writer entirely: collapse each stack to a
//!    single run. Mutators proceed concurrently;
//! 3. **install** — offer each merged stack back
//!    (`Instance::install_layers`): the instance revalidates that the
//!    entry is still current (`built_epoch` covers the relation's
//!    epoch) and rejects stale merges. A mutation that raced the merge
//!    simply wins; the merge is discarded and retried next cycle.
//!
//! Two drivers share that loop: [`VirtualCompactor`] steps it
//! explicitly on the virtual clock — fully deterministic, the test
//! mode — and [`BackgroundCompactor`] runs it on a real thread against
//! a live [`SnapshotStore`], publishing the merged state so new pins
//! serve single-run stacks.

use parlog_relal::instance::Instance;
use parlog_relal::lsm::TrieLayers;
use parlog_relal::snapshot::SnapshotStore;
use parlog_relal::symbols::RelId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One candidate entry, carried between the collect and install steps.
#[derive(Debug, Clone)]
pub struct CompactionJob {
    /// The relation.
    pub rel: RelId,
    /// The trie's column permutation.
    pub perm: Vec<usize>,
    /// The (merged, after [`merge`](VirtualCompactor::merge)) stack.
    pub layers: TrieLayers,
}

/// Counters for one compactor's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Candidate entries collected.
    pub collected: u64,
    /// Stacks merged (pure off-thread work).
    pub merged: u64,
    /// Merged stacks accepted at install time.
    pub installed: u64,
    /// Merged stacks rejected because a mutation raced the merge.
    pub discarded: u64,
}

fn collect(inst: &Instance) -> Vec<CompactionJob> {
    inst.compaction_candidates()
        .into_iter()
        .map(|(rel, perm, layers)| CompactionJob { rel, perm, layers })
        .collect()
}

fn install(inst: &Instance, jobs: Vec<CompactionJob>, stats: &mut CompactionStats) {
    for job in jobs {
        if inst.install_layers(job.rel, &job.perm, job.layers) {
            stats.installed += 1;
        } else {
            stats.discarded += 1;
        }
    }
}

/// The deterministic, virtual-clock driver: the test mode, and the mode
/// the closed-loop harness uses so compaction interleaves with reads
/// and publications at *chosen* points instead of wall-clock ones.
#[derive(Debug, Default)]
pub struct VirtualCompactor {
    pending: Vec<CompactionJob>,
    stats: CompactionStats,
}

impl VirtualCompactor {
    /// A compactor with no pending work.
    pub fn new() -> VirtualCompactor {
        VirtualCompactor::default()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CompactionStats {
        self.stats
    }

    /// Merged jobs awaiting install.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Step 1+2 on the virtual clock: collect the writer's candidates
    /// and merge them. The writer lock is held only for the collect;
    /// the merge runs on cloned `Arc` stacks — a mutator in another
    /// interleaving slot is never blocked by it.
    pub fn tick_merge(&mut self, store: &SnapshotStore) {
        let jobs = store.with_writer(collect);
        self.stats.collected += jobs.len() as u64;
        for mut job in jobs {
            job.layers = job.layers.merged();
            self.stats.merged += 1;
            self.pending.push(job);
        }
    }

    /// Step 3 on the virtual clock: offer every pending merge back to
    /// the writer; stale ones (the entry moved since the merge) are
    /// discarded by install-time revalidation.
    pub fn tick_install(&mut self, store: &SnapshotStore) {
        let jobs = std::mem::take(&mut self.pending);
        store.with_writer(|w| install(w, jobs, &mut self.stats));
    }

    /// A full cycle (merge then install) with nothing interleaved.
    pub fn cycle(&mut self, store: &SnapshotStore) {
        self.tick_merge(store);
        self.tick_install(store);
    }
}

/// The wall-clock driver: a real background thread cycling
/// collect→merge→install against a live store, publishing after
/// installs so fresh pins see single-run stacks. Stop it to join the
/// thread and read the final counters.
#[derive(Debug)]
pub struct BackgroundCompactor {
    handle: std::thread::JoinHandle<CompactionStats>,
    stop: Arc<AtomicBool>,
    cycles: Arc<AtomicU64>,
}

impl BackgroundCompactor {
    /// Spawn the compaction thread over `store`.
    pub fn spawn(store: Arc<SnapshotStore>) -> BackgroundCompactor {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_cycles = Arc::clone(&cycles);
        let handle = std::thread::spawn(move || {
            let mut inner = VirtualCompactor::new();
            while !thread_stop.load(Ordering::Relaxed) {
                inner.tick_merge(&store);
                let had_work = inner.pending() > 0;
                inner.tick_install(&store);
                if had_work && inner.stats().installed > 0 {
                    // Publish only when content-preserving: `publish`
                    // then carries the current snapshot's frozen views
                    // forward. If a mutation snuck in, skip — the
                    // writer's own publish surfaces the merged runs
                    // (and re-derives its views) anyway.
                    if store.with_writer(|w| w.epoch()) == store.pin().epoch() {
                        store.publish();
                    }
                }
                thread_cycles.fetch_add(1, Ordering::Relaxed);
                if !had_work {
                    // Nothing to merge: yield instead of spinning.
                    std::thread::yield_now();
                }
            }
            inner.stats()
        });
        BackgroundCompactor {
            handle,
            stop,
            cycles,
        }
    }

    /// Cycles completed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Signal the thread, join it, return its counters.
    pub fn stop(self) -> CompactionStats {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;
    use parlog_relal::symbols::rel;

    fn store_with_stack() -> Arc<SnapshotStore> {
        let store = Arc::new(SnapshotStore::new(Instance::from_facts([fact(
            "E",
            &[0, 1],
        )])));
        store.warm(rel("E"), &[0, 1]);
        // Each batch of inserts after a build lands as a fresh run.
        for k in 1..4u64 {
            store.mutate(|w| {
                w.insert(fact("E", &[k, k + 1]));
            });
            store.warm(rel("E"), &[0, 1]);
        }
        store
    }

    #[test]
    fn virtual_cycle_merges_to_a_single_run() {
        let store = store_with_stack();
        let deep = store.with_writer(|w| w.trie_layers(rel("E"), &[0, 1]).run_count());
        assert!(deep > 1, "setup should leave a multi-run stack, got {deep}");
        let mut c = VirtualCompactor::new();
        c.cycle(&store);
        let s = c.stats();
        assert!(s.installed >= 1);
        assert_eq!(s.discarded, 0);
        let after = store.with_writer(|w| w.trie_layers(rel("E"), &[0, 1]));
        assert_eq!(after.run_count(), 1);
        assert!(!after.has_tombstones());
        // Contents unchanged.
        assert_eq!(after.runs().iter().map(|r| r.rows()).sum::<usize>(), 4);
    }

    #[test]
    fn raced_merge_is_discarded_not_installed() {
        let store = store_with_stack();
        let mut c = VirtualCompactor::new();
        c.tick_merge(&store);
        assert!(c.pending() > 0);
        // A mutation lands between merge and install: the merged stack
        // is now stale and must be rejected, never silently installed.
        store.mutate(|w| {
            w.insert(fact("E", &[99, 100]));
        });
        c.tick_install(&store);
        let s = c.stats();
        assert_eq!(s.installed, 0);
        assert!(s.discarded >= 1);
        // The next full cycle (no race) succeeds on a fresh two-run
        // stack (base rebuild + one delta run).
        store.warm(rel("E"), &[0, 1]);
        store.mutate(|w| {
            w.insert(fact("E", &[100, 101]));
        });
        store.warm(rel("E"), &[0, 1]);
        c.cycle(&store);
        assert!(c.stats().installed >= 1);
        let after = store.with_writer(|w| w.trie_layers(rel("E"), &[0, 1]));
        assert_eq!(after.run_count(), 1);
    }

    #[test]
    fn virtual_mode_is_deterministic() {
        let run = || {
            let store = store_with_stack();
            let mut c = VirtualCompactor::new();
            c.tick_merge(&store);
            store.mutate(|w| {
                w.insert(fact("E", &[50, 51]));
            });
            c.tick_install(&store);
            store.warm(rel("E"), &[0, 1]);
            c.cycle(&store);
            (
                c.stats(),
                store.with_writer(|w| w.trie_layers(rel("E"), &[0, 1]).run_count()),
            )
        };
        assert_eq!(run(), run(), "same interleaving, same counters");
    }

    #[test]
    fn compaction_never_blocks_or_loses_mutations() {
        let store = store_with_stack();
        let mut c = VirtualCompactor::new();
        c.tick_merge(&store);
        // Mutator proceeds while merges are "in flight".
        store.mutate(|w| {
            w.insert(fact("E", &[7, 8]));
        });
        c.tick_install(&store);
        let snap = store.publish();
        assert!(snap.instance().contains(&fact("E", &[7, 8])));
        assert_eq!(snap.instance().len(), 5);
    }

    #[test]
    fn background_compactor_converges_a_live_store() {
        let store = store_with_stack();
        let bg = BackgroundCompactor::spawn(Arc::clone(&store));
        // Writer keeps publishing while the compactor runs.
        for k in 10..20u64 {
            store.mutate(|w| {
                w.insert(fact("E", &[k, k + 1]));
            });
            store.warm(rel("E"), &[0, 1]);
            store.publish();
        }
        // Wait until the compactor has had at least a few cycles after
        // the last mutation, then stop it.
        let target = bg.cycles() + 3;
        while bg.cycles() < target {
            std::thread::yield_now();
        }
        let stats = bg.stop();
        // One more offer in case the very last merge raced the writer.
        let mut fin = VirtualCompactor::new();
        fin.cycle(&store);
        let after = store.with_writer(|w| w.trie_layers(rel("E"), &[0, 1]));
        assert_eq!(after.run_count(), 1);
        assert_eq!(after.runs().iter().map(|r| r.rows()).sum::<usize>(), 14);
        assert!(stats.merged >= stats.installed);
    }
}
