//! The closed-loop load harness for experiment E27.
//!
//! A closed loop with `readers` logical readers: each reader keeps
//! exactly one request outstanding, drawn from a fixed catalog of
//! requests (CQs, a UCQ, Datalog programs, a point-lookup batch) by a
//! **seeded Zipf sampler** — a few hot requests dominate, a long tail
//! exercises the cold paths. A concurrent writer applies seeded
//! mutation batches and publishes a new snapshot generation on a fixed
//! cadence; a compactor merges run stacks between publications.
//! Readers re-pin on their own cadence, so at any moment most readers
//! serve generations *behind* the writer — and the harness audits that
//! this is snapshot isolation, not staleness drift: before every
//! re-pin, the reader re-evaluates its audit query against the old pin
//! and counts a violation if a single byte moved.
//!
//! Two modes, two sections, same shape as every experiment in this
//! repo:
//!
//! * [`run_virtual`] — single-threaded, fully deterministic. Work is
//!   measured in relational ops (`parlog_relal::opcount`); the
//!   *makespan* of a k-reader run is the largest per-reader op sum, so
//!   `makespan(1 reader) / makespan(k readers)` is the deterministic
//!   read-scaling ratio: it is ≈ k exactly because pinned reads share
//!   the sealed snapshot lock-free and nothing serializes them. Per-
//!   window read loads flow through `parlog-trace` as `Loads` events.
//! * [`run_wall`] — real threads (thread-per-core sessions), a real
//!   writer thread, a real background compactor; reports wall-clock
//!   throughput and latency percentiles. Machine-dependent, reported
//!   in the segregated wall section, never asserted on.

use crate::compact::VirtualCompactor;
use crate::server::{Answer, Request, Server};
use parlog_datalog::program::parse_program;
use parlog_relal::eval::{eval_query_with, EvalStrategy};
use parlog_relal::fact::{fact, Fact};
use parlog_relal::instance::Instance;
use parlog_relal::parser::{parse_query, parse_union};
use parlog_relal::query::ConjunctiveQuery;
use parlog_trace::{MemSink, TraceEvent, TraceHandle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic splitmix64 step.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny seeded PRNG (splitmix64 stream).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        mix(self.0)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A seeded Zipf(s) sampler over ranks `0..n` (rank 0 hottest).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: Rng,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s`, seeded by `seed`.
    pub fn new(n: usize, s: f64, seed: u64) -> ZipfSampler {
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler {
            cdf,
            rng: Rng(mix(seed)),
        }
    }

    /// Draw the next rank.
    pub fn draw(&mut self) -> usize {
        let u = self.rng.unit();
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

/// The seeded base instance: a path graph `E` of `n` nodes (so the
/// transitive-closure view grows predictably), a fabric of seeded
/// `R`/`S`/`T` triangles for the cyclic queries, and a `Src` marker for
/// the reachability program.
pub fn seed_instance(n: usize, seed: u64) -> Instance {
    let mut rng = Rng(mix(seed ^ 0xE27));
    let mut inst = Instance::new();
    for i in 0..n as u64 {
        inst.insert(fact("E", &[i, i + 1]));
    }
    for _ in 0..n / 4 {
        let a = rng.below(n as u64);
        let b = rng.below(n as u64);
        let c = rng.below(n as u64);
        inst.insert(fact("R", &[a, b]));
        inst.insert(fact("S", &[b, c]));
        inst.insert(fact("T", &[c, a]));
    }
    for _ in 0..n / 4 {
        inst.insert(fact("R", &[rng.below(n as u64), rng.below(n as u64)]));
        inst.insert(fact("S", &[rng.below(n as u64), rng.below(n as u64)]));
    }
    inst.insert(fact("Src", &[0]));
    inst
}

/// The audit query (snapshot-isolation witness): the triangle join —
/// cyclic, WCOJ-evaluated, sensitive to every `R`/`S`/`T` byte.
fn audit_query() -> ConjunctiveQuery {
    parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap()
}

/// The transitive-closure program the server keeps materialized.
fn tc_program() -> parlog_datalog::program::Program {
    parse_program("TC(x,y) <- E(x,y). TC(x,z) <- E(x,y), TC(y,z).").unwrap()
}

/// Warm the writer's trie cache for every permutation the catalog can
/// request (all base relations are binary, `Src` unary), so published
/// snapshots serve those tries frozen — and so the writer's cache
/// accumulates real run stacks for the compactor to merge.
fn warm_writer(server: &Server) {
    use parlog_relal::symbols::rel;
    for r in ["E", "R", "S", "T"] {
        server.store().warm(rel(r), &[0, 1]);
        server.store().warm(rel(r), &[1, 0]);
    }
    server.store().warm(rel("Src"), &[0]);
}

/// The fixed request catalog, hot ranks first (the Zipf sampler maps
/// rank 0 to the first entry).
pub fn catalog(n: usize) -> Vec<(&'static str, Request)> {
    let path = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
    let lookups: Vec<Fact> = (0..8u64)
        .map(|k| {
            if k % 2 == 0 {
                fact("E", &[k, k + 1])
            } else {
                fact("E", &[k + n as u64, k])
            }
        })
        .collect();
    let triangle = audit_query();
    let ucq = parse_union("H(x,z) <- R(x,y), S(y,z); H(x,z) <- E(x,y), E(y,z)").unwrap();
    let star = parse_query("H(a,b,c) <- E(x,a), E(x,b), E(x,c)").unwrap();
    let square = parse_query("H(x,y,z,w) <- E(x,y), E(y,z), E(z,w), E(w,x)").unwrap();
    let reach = parse_program("Rch(x) <- Src(x). Rch(y) <- Rch(x), E(x,y).").unwrap();
    vec![
        ("path2_indexed", Request::Query(path, EvalStrategy::Indexed)),
        ("lookup_batch", Request::Lookup(lookups)),
        (
            "triangle_wcoj",
            Request::Query(triangle.clone(), EvalStrategy::Wcoj),
        ),
        (
            "tc_view_auto",
            Request::Program(tc_program(), EvalStrategy::Auto),
        ),
        ("ucq_auto", Request::Union(ucq, EvalStrategy::Auto)),
        ("star_auto", Request::Query(star, EvalStrategy::Auto)),
        ("square_wcoj", Request::Query(square, EvalStrategy::Wcoj)),
        ("reach_scratch", Request::Program(reach, EvalStrategy::Auto)),
        (
            "triangle_auto",
            Request::Query(triangle, EvalStrategy::Auto),
        ),
    ]
}

/// Knobs for one harness run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// PRNG seed for the request stream and writer mutations.
    pub seed: u64,
    /// Base path-graph size handed to [`seed_instance`].
    pub nodes: usize,
    /// Total requests across all readers.
    pub requests: u64,
    /// Logical readers (virtual mode) / reader threads (wall mode).
    pub readers: usize,
    /// Zipf exponent of the request mix.
    pub zipf_s: f64,
    /// Publish a new generation every this many requests.
    pub publish_every: u64,
    /// Mutations applied per publication.
    pub writer_batch: usize,
    /// Admission-gate capacity.
    pub capacity: usize,
    /// Per-reader staleness-probe cadence (requests between re-pins).
    pub repin_every: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            seed: 0xE27,
            nodes: 160,
            requests: 20_000,
            readers: 4,
            zipf_s: 1.1,
            publish_every: 800,
            writer_batch: 4,
            capacity: 64,
            repin_every: 32,
        }
    }
}

/// The deterministic section of one virtual run. Every field is a pure
/// function of the [`WorkloadSpec`]; two runs diff byte-identical.
#[derive(Debug, Clone, serde::Serialize)]
pub struct VirtualReport {
    /// Readers simulated.
    pub readers: usize,
    /// Requests served (admitted and answered).
    pub requests: u64,
    /// Σ ops over all requests.
    pub total_ops: u64,
    /// max over readers of that reader's op sum — the closed-loop
    /// makespan on the op clock.
    pub makespan_ops: u64,
    /// Per-reader op sums.
    pub per_reader_ops: Vec<u64>,
    /// Requests per million makespan ops — the deterministic aggregate
    /// read throughput.
    pub throughput_per_mop: f64,
    /// Median request cost in ops.
    pub latency_ops_p50: u64,
    /// 99th-percentile request cost in ops.
    pub latency_ops_p99: u64,
    /// 99.9th-percentile request cost in ops.
    pub latency_ops_p999: u64,
    /// Largest request cost in ops.
    pub latency_ops_max: u64,
    /// Plan-cache hits across all sessions.
    pub plan_hits: u64,
    /// Plan-cache misses across all sessions.
    pub plan_misses: u64,
    /// `hits / (hits + misses)`.
    pub plan_hit_rate: f64,
    /// Full analyses run (the rest were reused across generations).
    pub analysis_misses: u64,
    /// Snapshot generations published by the writer.
    pub publications: u64,
    /// Distinct generations actually served to readers.
    pub generations_served: u64,
    /// Admission refusals (0 in a closed loop within capacity).
    pub refusals: u64,
    /// Snapshot-isolation audits performed (one per re-pin).
    pub isolation_checks: u64,
    /// Audits where a pinned answer changed — must be 0.
    pub isolation_violations: u64,
    /// Program requests answered from a frozen view output (0 ops).
    pub view_hits: u64,
    /// Compaction: merged stacks accepted at install time.
    pub compactions_installed: u64,
    /// Compaction: merged stacks rejected by install-time revalidation.
    pub compactions_discarded: u64,
    /// Publication windows traced as `Loads` events.
    pub trace_windows: u64,
    /// Worst `max/mean` per-reader balance across traced windows.
    pub window_balance_max: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One writer batch: extend the path (grows the TC view) up to a cap —
/// past it the transitive closure would grow quadratically without
/// bound under a wall-clock writer — weave one triangle, drop one
/// chord in, and periodically retract an old chord (tombstones for the
/// compactor to chew on).
fn writer_batch(
    w: &mut Instance,
    rng: &mut Rng,
    next_node: &mut u64,
    max_node: u64,
    chords: &mut Vec<Fact>,
    batch: usize,
) {
    for j in 0..batch {
        match j % 4 {
            0 if *next_node < max_node => {
                w.insert(fact("E", &[*next_node, *next_node + 1]));
                *next_node += 1;
            }
            0 => {
                w.insert(fact("E", &[rng.below(max_node), rng.below(max_node)]));
            }
            1 => {
                let a = rng.below(*next_node);
                let b = rng.below(*next_node);
                let c = rng.below(*next_node);
                w.insert(fact("R", &[a, b]));
                w.insert(fact("S", &[b, c]));
                w.insert(fact("T", &[c, a]));
            }
            2 => {
                let chord = fact("R", &[rng.below(*next_node), rng.below(*next_node)]);
                w.insert(chord.clone());
                chords.push(chord);
            }
            _ => {
                if chords.len() > 2 {
                    let gone = chords.remove(0);
                    w.remove(&gone);
                }
            }
        }
    }
}

/// Run the closed loop single-threaded on the virtual op clock.
/// Deterministic: same spec, byte-identical report.
pub fn run_virtual(spec: &WorkloadSpec) -> VirtualReport {
    let base = seed_instance(spec.nodes, spec.seed);
    let server = Server::new(base, spec.capacity);
    server.register_view(tc_program(), EvalStrategy::Auto);
    warm_writer(&server);
    server.publish().expect("TC is stratifiable");

    let catalog = catalog(spec.nodes);
    let mut zipf = ZipfSampler::new(catalog.len(), spec.zipf_s, spec.seed);
    let mut wrng = Rng(mix(spec.seed ^ 0x17E5));
    let mut next_node = spec.nodes as u64;
    let mut chords: Vec<Fact> = Vec::new();
    let mut compactor = VirtualCompactor::new();

    let sink = Arc::new(MemSink::new());
    let trace = TraceHandle::to(Arc::clone(&sink) as Arc<dyn parlog_trace::TraceSink>);

    let mut sessions: Vec<_> = (0..spec.readers).map(|_| server.session()).collect();
    let audit = audit_query();
    // Per-reader audit baseline: the triangle answer at pin time.
    let mut baselines: Vec<Vec<Fact>> = sessions
        .iter_mut()
        .map(|s| {
            s.refresh_pin();
            eval_query_with(&audit, s.pinned().instance(), EvalStrategy::Wcoj).sorted_facts()
        })
        .collect();

    let mut per_reader_ops = vec![0u64; spec.readers];
    let mut per_reader_served = vec![0u64; spec.readers];
    let mut window_served = vec![0usize; spec.readers];
    let mut latencies: Vec<u64> = Vec::with_capacity(spec.requests as usize);
    let mut generations = std::collections::BTreeSet::new();
    let mut isolation_checks = 0u64;
    let mut isolation_violations = 0u64;
    let mut view_hits = 0u64;
    let mut window = 0usize;

    for i in 0..spec.requests {
        let reader = (i % spec.readers as u64) as usize;

        // Writer + compactor interleaving slot.
        if i > 0 && i % spec.publish_every == 0 {
            server.store().mutate(|w| {
                writer_batch(
                    w,
                    &mut wrng,
                    &mut next_node,
                    2 * spec.nodes as u64,
                    &mut chords,
                    spec.writer_batch,
                );
            });
            server.publish().expect("TC refresh stays stratifiable");
            compactor.cycle(server.store());
            trace.record(TraceEvent::Loads {
                round: window,
                received: &window_served,
            });
            window += 1;
            window_served.iter_mut().for_each(|c| *c = 0);
        }

        // Staleness-probe cadence: audit the old pin, then re-pin.
        if per_reader_served[reader] % spec.repin_every == spec.repin_every - 1 {
            let now = eval_query_with(
                &audit,
                sessions[reader].pinned().instance(),
                EvalStrategy::Wcoj,
            )
            .sorted_facts();
            isolation_checks += 1;
            if now != baselines[reader] {
                isolation_violations += 1;
            }
            if sessions[reader].refresh_pin() {
                baselines[reader] = eval_query_with(
                    &audit,
                    sessions[reader].pinned().instance(),
                    EvalStrategy::Wcoj,
                )
                .sorted_facts();
            }
        }

        let (_, req) = &catalog[zipf.draw()];
        let resp = sessions[reader]
            .execute_pinned(req)
            .expect("closed loop stays within capacity");
        per_reader_ops[reader] += resp.ops;
        per_reader_served[reader] += 1;
        window_served[reader] += 1;
        latencies.push(resp.ops);
        generations.insert(resp.generation);
        if matches!(req, Request::Program(..)) && resp.ops == 0 {
            view_hits += 1;
        }
        debug_assert!(matches!(resp.answer, Answer::Relation(_) | Answer::Bits(_)));
    }
    if window_served.iter().any(|&c| c > 0) {
        trace.record(TraceEvent::Loads {
            round: window,
            received: &window_served,
        });
    }

    let mut plan_hits = 0u64;
    let mut plan_misses = 0u64;
    let mut analysis_misses = 0u64;
    for s in &sessions {
        let st = s.plan_stats();
        plan_hits += st.hits;
        plan_misses += st.misses;
        analysis_misses += st.analysis_misses;
    }
    latencies.sort_unstable();
    let total_ops: u64 = per_reader_ops.iter().sum();
    let makespan_ops = per_reader_ops.iter().copied().max().unwrap_or(0);
    let rounds = sink.rounds();
    let window_balance_max = rounds
        .iter()
        .filter(|r| r.total > 0)
        .map(|r| r.max as f64 / (r.total as f64 / r.servers as f64))
        .fold(0.0f64, f64::max);

    VirtualReport {
        readers: spec.readers,
        requests: spec.requests,
        total_ops,
        makespan_ops,
        per_reader_ops,
        throughput_per_mop: if makespan_ops == 0 {
            0.0
        } else {
            spec.requests as f64 * 1.0e6 / makespan_ops as f64
        },
        latency_ops_p50: percentile(&latencies, 0.50),
        latency_ops_p99: percentile(&latencies, 0.99),
        latency_ops_p999: percentile(&latencies, 0.999),
        latency_ops_max: latencies.last().copied().unwrap_or(0),
        plan_hits,
        plan_misses,
        plan_hit_rate: if plan_hits + plan_misses == 0 {
            1.0
        } else {
            plan_hits as f64 / (plan_hits + plan_misses) as f64
        },
        analysis_misses,
        publications: server.store().publish_count(),
        generations_served: generations.len() as u64,
        refusals: server.gate().refused(),
        isolation_checks,
        isolation_violations,
        view_hits,
        compactions_installed: compactor.stats().installed,
        compactions_discarded: compactor.stats().discarded,
        trace_windows: rounds.len() as u64,
        window_balance_max,
    }
}

/// The wall-clock section of one run: real threads, real time.
/// Machine-dependent — never asserted on, never diffed.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WallServeReport {
    /// Reader threads.
    pub readers: usize,
    /// Requests served.
    pub requests: u64,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
    /// Aggregate requests per second.
    pub throughput_qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile request latency, microseconds.
    pub p999_us: f64,
    /// Generations published by the live writer thread.
    pub publications: u64,
    /// Admission refusals.
    pub refusals: u64,
    /// Snapshot-isolation audit failures — must be 0 here too.
    pub isolation_violations: u64,
    /// Background-compactor merges accepted.
    pub compactions_installed: u64,
}

/// Run the closed loop on real threads: `spec.readers` serving threads
/// (one [`crate::Session`] each), one writer thread publishing on a
/// wall cadence, one [`crate::BackgroundCompactor`].
pub fn run_wall(spec: &WorkloadSpec) -> WallServeReport {
    let base = seed_instance(spec.nodes, spec.seed);
    let server = Server::new(base, spec.capacity);
    server.register_view(tc_program(), EvalStrategy::Auto);
    warm_writer(&server);
    server.publish().expect("TC is stratifiable");
    let catalog = catalog(spec.nodes);
    let audit = audit_query();

    let issued = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    let writers_done = AtomicBool::new(false);
    let compactor = crate::compact::BackgroundCompactor::spawn(Arc::clone(server.store()));
    let start = std::time::Instant::now();
    let mut all_lat: Vec<u64> = Vec::with_capacity(spec.requests as usize);

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut wrng = Rng(mix(spec.seed ^ 0x17E5));
            let mut next_node = spec.nodes as u64;
            let mut chords: Vec<Fact> = Vec::new();
            // Bound the live writer: past this many publications it
            // idles, so a slow reader fleet is never outrun into an
            // unbounded view (the TC cap in `writer_batch` bounds per-
            // publication cost; this bounds their number).
            let max_publications = 256;
            let mut published = 0u64;
            while !writers_done.load(Ordering::Relaxed) {
                if published < max_publications {
                    published += 1;
                    server.store().mutate(|w| {
                        writer_batch(
                            w,
                            &mut wrng,
                            &mut next_node,
                            2 * spec.nodes as u64,
                            &mut chords,
                            spec.writer_batch,
                        );
                    });
                    server.publish().expect("TC refresh stays stratifiable");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let readers: Vec<_> = (0..spec.readers)
            .map(|r| {
                let issued = &issued;
                let violations = &violations;
                let server = &server;
                let catalog = &catalog;
                let audit = &audit;
                scope.spawn(move || {
                    let mut session = server.session();
                    let mut zipf =
                        ZipfSampler::new(catalog.len(), spec.zipf_s, spec.seed ^ (r as u64 + 1));
                    let mut baseline =
                        eval_query_with(audit, session.pinned().instance(), EvalStrategy::Wcoj)
                            .sorted_facts();
                    let mut served = 0u64;
                    let mut lat = Vec::new();
                    while issued.fetch_add(1, Ordering::Relaxed) < spec.requests {
                        if served % spec.repin_every == spec.repin_every - 1 {
                            let now = eval_query_with(
                                audit,
                                session.pinned().instance(),
                                EvalStrategy::Wcoj,
                            )
                            .sorted_facts();
                            if now != baseline {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                            if session.refresh_pin() {
                                baseline = eval_query_with(
                                    audit,
                                    session.pinned().instance(),
                                    EvalStrategy::Wcoj,
                                )
                                .sorted_facts();
                            }
                        }
                        let (_, req) = &catalog[zipf.draw()];
                        let t = std::time::Instant::now();
                        // In the wall closed loop a refusal just means
                        // retry (the loop *is* the backoff).
                        if session.execute_pinned(req).is_ok() {
                            lat.push(t.elapsed().as_nanos() as u64);
                            served += 1;
                        }
                    }
                    lat
                })
            })
            .collect();
        for r in readers {
            if let Ok(lat) = r.join() {
                all_lat.extend(lat);
            }
        }
        writers_done.store(true, Ordering::Relaxed);
        let _ = writer.join();
    });

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let cstats = compactor.stop();
    all_lat.sort_unstable();
    let served = all_lat.len() as u64;
    WallServeReport {
        readers: spec.readers,
        requests: served,
        wall_ms,
        throughput_qps: served as f64 / (wall_ms / 1e3).max(1e-9),
        p50_us: percentile(&all_lat, 0.50) as f64 / 1e3,
        p99_us: percentile(&all_lat, 0.99) as f64 / 1e3,
        p999_us: percentile(&all_lat, 0.999) as f64 / 1e3,
        publications: server.store().publish_count(),
        refusals: server.gate().refused(),
        isolation_violations: violations.load(Ordering::Relaxed),
        compactions_installed: cstats.installed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            requests: 1200,
            nodes: 48,
            publish_every: 150,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn zipf_is_seeded_and_skewed() {
        let mut a = ZipfSampler::new(8, 1.1, 7);
        let mut b = ZipfSampler::new(8, 1.1, 7);
        let draws: Vec<usize> = (0..200).map(|_| a.draw()).collect();
        assert_eq!(draws, (0..200).map(|_| b.draw()).collect::<Vec<_>>());
        let hot = draws.iter().filter(|&&r| r == 0).count();
        let cold = draws.iter().filter(|&&r| r == 7).count();
        assert!(hot > cold, "rank 0 ({hot}) should dominate rank 7 ({cold})");
    }

    #[test]
    fn virtual_run_is_deterministic() {
        let spec = small_spec();
        let a = run_virtual(&spec);
        let b = run_virtual(&spec);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.isolation_violations, 0);
        assert_eq!(a.refusals, 0);
        assert!(a.publications > 1);
        assert!(a.generations_served > 1);
        assert!(a.view_hits > 0, "TC requests should hit the frozen view");
    }

    #[test]
    fn read_scaling_is_near_linear_on_the_op_clock() {
        let one = run_virtual(&WorkloadSpec {
            readers: 1,
            ..small_spec()
        });
        let four = run_virtual(&WorkloadSpec {
            readers: 4,
            ..small_spec()
        });
        let speedup = one.makespan_ops as f64 / four.makespan_ops as f64;
        assert!(
            speedup >= 3.0,
            "expected ≥3× read scaling at 4 readers, got {speedup:.2} \
             (makespans {} vs {})",
            one.makespan_ops,
            four.makespan_ops
        );
    }

    #[test]
    fn wall_mode_smoke() {
        let r = run_wall(&WorkloadSpec {
            requests: 400,
            nodes: 32,
            readers: 2,
            publish_every: 100,
            ..WorkloadSpec::default()
        });
        assert!(r.requests > 0);
        assert_eq!(r.isolation_violations, 0);
        assert!(r.wall_ms > 0.0);
    }
}
