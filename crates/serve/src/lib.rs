//! # `parlog-serve` — the MVCC snapshot serving layer
//!
//! Everything below this crate is about answering one query, once,
//! correctly and with the right asymptotics. This crate is about
//! answering *many* queries *concurrently* while the database keeps
//! moving — the serving story the survey's results license: parallel
//! correctness and transferability are statements about a query against
//! a **fixed** instance, so a server freezes the instance it answers
//! from (`parlog_relal::snapshot::SnapshotStore`), shares the frozen
//! state with arbitrarily many readers, and keeps writing on a private
//! copy-on-write delta. Publication is a single release-store; pinned
//! readers never observe it.
//!
//! The pieces, one module each:
//!
//! * [`admission`] — bounded admission control: a lock-free in-flight
//!   gate that refuses with a typed [`Overload`] instead of queueing
//!   unboundedly, consistent with the degradation contract of
//!   `parlog_supervisor::degrade` (refusal over silent wrongness).
//! * [`plan`] — the plan cache: query analysis (GYO acyclicity, ρ*/τ*
//!   LPs, HyperCube share exponents, WCOJ variable order) is memoized
//!   per query text, and prepared plans are keyed on
//!   `(query, strategy, snapshot generation)` so a cached plan is never
//!   replayed against a database version it was not prepared for.
//! * [`server`] — the request loop: a [`Server`] wraps a store and a
//!   gate; each serving thread opens a [`Session`] (thread-per-core: no
//!   shared mutable state between sessions) that pins a snapshot,
//!   executes CQ / UCQ / Datalog / point-lookup requests lock-free
//!   against the pin, and re-pins on an explicit cadence via the
//!   one-atomic-load staleness probe.
//! * [`compact`] — background LSM compaction: merges a sealed entry's
//!   run stack off-thread from immutable `Arc`'d runs, and installs the
//!   merged run back only if the entry is still current (install-time
//!   revalidation) — mutators are never blocked, stale merges are
//!   discarded, and the whole loop is deterministic under the
//!   virtual-clock test mode.
//! * [`harness`] — the closed-loop load harness for experiment E27: a
//!   seeded Zipf request mix over the catalog, concurrent writer
//!   publishing epochs, isolation audits on old pins, op-count
//!   makespans for the deterministic section and wall timings for the
//!   honest one.
//!
//! The guarantee the whole crate leans on: a sealed instance's
//! `trie_layers` path is lock-free, so *every existing evaluator* —
//! Naive, Indexed, Wcoj, Auto, over CQs, UCQs and Datalog programs —
//! is lock-free against a pinned snapshot with zero evaluator changes.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod admission;
pub mod compact;
pub mod harness;
pub mod plan;
pub mod server;

pub use admission::{AdmissionGate, Overload, Permit};
pub use compact::{BackgroundCompactor, CompactionStats, VirtualCompactor};
pub use harness::{run_virtual, run_wall, VirtualReport, WallServeReport, WorkloadSpec};
pub use plan::{DisjunctPlan, PlanCache, PlanCacheStats, PlanKind, PreparedPlan, QueryAnalysis};
pub use server::{Answer, Request, Response, ServeError, Server, Session};

/// Commonly used items.
pub mod prelude {
    pub use crate::admission::{AdmissionGate, Overload, Permit};
    pub use crate::compact::{BackgroundCompactor, CompactionStats, VirtualCompactor};
    pub use crate::harness::{run_virtual, run_wall, VirtualReport, WallServeReport, WorkloadSpec};
    pub use crate::plan::{PlanCache, PlanCacheStats, QueryAnalysis};
    pub use crate::server::{Answer, Request, Response, ServeError, Server, Session};
}
