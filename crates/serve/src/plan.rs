//! The plan cache: memoized query analysis + generation-keyed plans.
//!
//! Planning a query here means running the expensive, *data-independent*
//! analyses the rest of the workspace provides — GYO acyclicity, the
//! fractional edge cover ρ* and packing τ* LPs, the HyperCube share
//! exponents, the WCOJ variable order — and resolving `Auto` to a
//! concrete strategy. None of that depends on the database contents, so
//! it is memoized **per query text** and reused across every snapshot
//! generation. The *prepared plan* layer on top is keyed on
//! `(query, strategy, snapshot generation)`: a plan is only ever served
//! against the exact database version it was prepared for, which is what
//! lets the executor skip revalidation entirely — a new generation
//! simply misses and re-prepares (the analysis hit makes that cheap).
//!
//! Keys are Fx hashes of the query's debug rendering with the rendered
//! string stored alongside, so a (vanishingly unlikely) 64-bit collision
//! degrades to a harmless re-analysis, never to serving the wrong plan —
//! the same discipline as the view registry in `parlog-datalog`.
//!
//! The cache is **per session** (thread-per-core): no locking on the
//! request hot path, and eviction is trivially generation-local — when a
//! session re-pins to a newer snapshot, plans for older generations are
//! dropped (the analyses survive).

use parlog_datalog::program::Program;
use parlog_datalog::view_key_for;
use parlog_relal::atom::Var;
use parlog_relal::eval::EvalStrategy;
use parlog_relal::fastmap::{fxmap, FxHasher, FxMap};
use parlog_relal::hypergraph::is_acyclic;
use parlog_relal::packing::{fractional_edge_cover, fractional_edge_packing, share_exponents};
use parlog_relal::query::ConjunctiveQuery;
use parlog_relal::snapshot::Snapshot;
use parlog_relal::trie::wcoj_variable_order;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

fn text_key(src: &str) -> u64 {
    let mut h = FxHasher::default();
    src.hash(&mut h);
    h.finish()
}

/// The per-disjunct analysis: everything about evaluating one CQ that
/// does not depend on the data.
#[derive(Debug, Clone)]
pub struct DisjunctPlan {
    /// The strategy after resolving `Auto` (never `Auto` itself).
    pub resolved: EvalStrategy,
    /// GYO verdict: does the query hypergraph have a join tree?
    pub acyclic: bool,
    /// The memoized WCOJ variable order (meaningful when `resolved`
    /// is `Wcoj`; computed for every disjunct — it is cheap and the
    /// executor may be asked to force WCOJ).
    pub order: Vec<Var>,
    /// Fractional edge cover number ρ* — the AGM output-size exponent
    /// (`None` when the LP is degenerate, e.g. a nullary body).
    pub rho_star: Option<f64>,
    /// Fractional edge packing number τ* — the HyperCube load exponent.
    pub tau_star: Option<f64>,
    /// HyperCube share exponents per body variable, parallel to
    /// `share_vars`.
    pub shares: Option<Vec<f64>>,
    /// The variables the share exponents refer to.
    pub share_vars: Vec<Var>,
}

/// The full data-independent analysis of a relational request: one
/// [`DisjunctPlan`] per disjunct (a plain CQ is a one-disjunct UCQ).
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Per-disjunct plans, in request order.
    pub disjuncts: Vec<DisjunctPlan>,
}

/// Analyze one CQ under a requested strategy.
pub fn analyze_cq(q: &ConjunctiveQuery, strategy: EvalStrategy) -> DisjunctPlan {
    let resolved = strategy.resolve(q);
    let shares = share_exponents(q).ok();
    let (share_vars, shares) = match shares {
        Some(s) => (s.vars, Some(s.exponents)),
        None => (Vec::new(), None),
    };
    DisjunctPlan {
        resolved,
        acyclic: is_acyclic(q),
        order: wcoj_variable_order(q, &[]),
        rho_star: fractional_edge_cover(q).ok().map(|r| r.value),
        tau_star: fractional_edge_packing(q).ok().map(|r| r.value),
        shares,
        share_vars,
    }
}

/// Analyze a disjunct list (UCQ body, or a singleton for a CQ).
pub fn analyze(disjuncts: &[ConjunctiveQuery], strategy: EvalStrategy) -> QueryAnalysis {
    QueryAnalysis {
        disjuncts: disjuncts.iter().map(|q| analyze_cq(q, strategy)).collect(),
    }
}

/// What a prepared plan tells the executor to do.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Evaluate disjuncts with their resolved strategies / orders.
    Relational(Arc<QueryAnalysis>),
    /// A Datalog program request.
    Program {
        /// The registry key of the `(program, strategy)` view.
        view_key: u64,
        /// Whether the pinned snapshot carries a frozen output for
        /// `view_key` (checked once at prepare time; same generation ⇒
        /// same snapshot contents, so the bit stays valid for the
        /// plan's lifetime).
        resident: bool,
    },
}

/// A plan prepared against one specific snapshot generation.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// The generation this plan was prepared for.
    pub generation: u64,
    /// What to execute.
    pub kind: PlanKind,
}

/// Hit/miss counters, split by layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Prepared-plan hits (query, strategy, generation all matched).
    pub hits: u64,
    /// Prepared-plan misses.
    pub misses: u64,
    /// Analysis reuses on a plan miss (the common re-prepare path).
    pub analysis_hits: u64,
    /// Full analyses run.
    pub analysis_misses: u64,
    /// Plans dropped because the session moved past their generation.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Plan-cache hit rate in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-session plan cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// query-text key → (stored text, analysis). Generation-independent.
    analyses: FxMap<u64, (String, Arc<QueryAnalysis>)>,
    /// program-text key → (stored text, registry view key).
    program_keys: FxMap<u64, (String, u64)>,
    /// (query-text key, generation) → prepared plan.
    plans: FxMap<(u64, u64), Arc<PreparedPlan>>,
    newest_generation: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The cache's counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Prepared plans currently resident.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Memoized analyses currently resident.
    pub fn analysis_count(&self) -> usize {
        self.analyses.len()
    }

    /// Drop plans for generations older than `generation` once the
    /// session observes it. Sessions re-pin monotonically, so those
    /// plans can never be requested again — this bounds the cache at
    /// (catalog size × 1 generation) + analyses.
    fn roll(&mut self, generation: u64) {
        if generation > self.newest_generation {
            let before = self.plans.len();
            self.plans.retain(|&(_, g), _| g >= generation);
            self.stats.evictions += (before - self.plans.len()) as u64;
            self.newest_generation = generation;
        }
    }

    fn lookup(&mut self, key: u64, generation: u64) -> Option<Arc<PreparedPlan>> {
        self.roll(generation);
        if let Some(p) = self.plans.get(&(key, generation)) {
            self.stats.hits += 1;
            return Some(Arc::clone(p));
        }
        self.stats.misses += 1;
        None
    }

    /// Prepare (or fetch) the plan for a relational request — a CQ or a
    /// UCQ's disjunct list — under `strategy`, against snapshot
    /// `generation`. Returns the plan and whether it was a cache hit.
    pub fn prepare_relational(
        &mut self,
        disjuncts: &[ConjunctiveQuery],
        strategy: EvalStrategy,
        generation: u64,
    ) -> (Arc<PreparedPlan>, bool) {
        use std::fmt::Write;
        let mut src = String::new();
        for q in disjuncts {
            let _ = write!(src, "{q:?};");
        }
        let _ = write!(src, "|{strategy:?}");
        let key = text_key(&src);
        if let Some(p) = self.lookup(key, generation) {
            return (p, true);
        }
        let analysis = match self.analyses.get(&key) {
            Some((stored, a)) if *stored == src => {
                self.stats.analysis_hits += 1;
                Arc::clone(a)
            }
            _ => {
                self.stats.analysis_misses += 1;
                let a = Arc::new(analyze(disjuncts, strategy));
                self.analyses.insert(key, (src, Arc::clone(&a)));
                a
            }
        };
        let plan = Arc::new(PreparedPlan {
            generation,
            kind: PlanKind::Relational(analysis),
        });
        self.plans.insert((key, generation), Arc::clone(&plan));
        (plan, false)
    }

    /// Prepare (or fetch) the plan for a Datalog program request against
    /// the pinned snapshot. The expensive part memoized across
    /// generations is the view-key derivation (a debug rendering + hash
    /// of the whole program); the per-generation part is the frozen-view
    /// residency probe.
    pub fn prepare_program(
        &mut self,
        p: &Program,
        strategy: EvalStrategy,
        snap: &Snapshot,
    ) -> (Arc<PreparedPlan>, bool) {
        let src = format!("program:{p:?}|{strategy:?}");
        let key = text_key(&src);
        let generation = snap.generation();
        if let Some(plan) = self.lookup(key, generation) {
            return (plan, true);
        }
        let view_key = match self.program_keys.get(&key) {
            Some((stored, vk)) if *stored == src => {
                self.stats.analysis_hits += 1;
                *vk
            }
            _ => {
                self.stats.analysis_misses += 1;
                let vk = view_key_for(p, strategy);
                self.program_keys.insert(key, (src, vk));
                vk
            }
        };
        let plan = Arc::new(PreparedPlan {
            generation,
            kind: PlanKind::Program {
                view_key,
                resident: snap.view_output(view_key).is_some(),
            },
        });
        self.plans.insert((key, generation), Arc::clone(&plan));
        (plan, false)
    }
}

/// An empty frozen-view map (convenience for tests).
pub fn no_views() -> FxMap<u64, Arc<parlog_relal::instance::Instance>> {
    fxmap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;
    use parlog_relal::snapshot::SnapshotStore;

    fn triangle() -> ConjunctiveQuery {
        parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap()
    }

    fn path() -> ConjunctiveQuery {
        parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap()
    }

    #[test]
    fn analysis_matches_the_theory() {
        let t = analyze_cq(&triangle(), EvalStrategy::Auto);
        assert!(!t.acyclic);
        assert_eq!(t.resolved, EvalStrategy::Wcoj);
        assert!((t.rho_star.unwrap() - 1.5).abs() < 1e-9);
        assert!((t.tau_star.unwrap() - 1.5).abs() < 1e-9);
        assert_eq!(t.order.len(), 3);
        let p = analyze_cq(&path(), EvalStrategy::Auto);
        assert!(p.acyclic);
        assert_eq!(p.resolved, EvalStrategy::Indexed);
    }

    #[test]
    fn same_generation_hits_new_generation_reanalyzes_nothing() {
        let mut cache = PlanCache::new();
        let q = [triangle()];
        let (_, hit) = cache.prepare_relational(&q, EvalStrategy::Auto, 0);
        assert!(!hit);
        let (_, hit) = cache.prepare_relational(&q, EvalStrategy::Auto, 0);
        assert!(hit);
        // New generation: plan misses, analysis is reused.
        let (_, hit) = cache.prepare_relational(&q, EvalStrategy::Auto, 1);
        assert!(!hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!((s.analysis_hits, s.analysis_misses), (1, 1));
        // The generation-0 plan was evicted on roll-forward.
        assert_eq!(s.evictions, 1);
        assert_eq!(cache.plan_count(), 1);
        assert_eq!(cache.analysis_count(), 1);
    }

    #[test]
    fn strategy_is_part_of_the_key() {
        let mut cache = PlanCache::new();
        let q = [triangle()];
        cache.prepare_relational(&q, EvalStrategy::Wcoj, 0);
        let (_, hit) = cache.prepare_relational(&q, EvalStrategy::Indexed, 0);
        assert!(!hit, "different strategy must not hit");
        assert_eq!(cache.analysis_count(), 2);
    }

    #[test]
    fn program_plan_probes_residency_once() {
        use parlog_datalog::program::parse_program;
        let p = parse_program("T(x,y) <- E(x,y). T(x,z) <- E(x,y), T(y,z).").unwrap();
        let store = SnapshotStore::new(Instance::new());
        let snap = store.pin();
        let mut cache = PlanCache::new();
        let (plan, hit) = cache.prepare_program(&p, EvalStrategy::Auto, &snap);
        assert!(!hit);
        match plan.kind {
            PlanKind::Program { view_key, resident } => {
                assert_eq!(view_key, view_key_for(&p, EvalStrategy::Auto));
                assert!(!resident);
            }
            _ => panic!("expected a program plan"),
        }
        let (_, hit) = cache.prepare_program(&p, EvalStrategy::Auto, &snap);
        assert!(hit);
    }

    #[test]
    fn hit_rate_reflects_counters() {
        let mut cache = PlanCache::new();
        assert!((cache.stats().hit_rate() - 1.0).abs() < 1e-12);
        let q = [path()];
        cache.prepare_relational(&q, EvalStrategy::Auto, 0);
        for _ in 0..9 {
            cache.prepare_relational(&q, EvalStrategy::Auto, 0);
        }
        assert!((cache.stats().hit_rate() - 0.9).abs() < 1e-12);
    }
}
