//! The request loop: [`Server`], per-thread [`Session`]s, typed
//! requests and responses.
//!
//! A [`Server`] owns the [`SnapshotStore`], the shared
//! [`AdmissionGate`], and the list of registered view programs it
//! refreshes at every publication (the `try_refresh`-at-publish hook:
//! a published snapshot's views are already consistent, so a reader
//! never pays a refresh). Each serving thread opens its own
//! [`Session`] — thread-per-core discipline: the session holds the
//! pinned snapshot and the [`PlanCache`], so the request hot path
//! touches **no shared mutable state** beyond two atomic operations
//! (the admission counter and, on the re-pin cadence, the generation
//! probe).
//!
//! Request execution is entirely lock-free against the pin: sealed
//! instances serve warm tries without a mutex, CQ/UCQ evaluation runs
//! the strategy resolved by the plan (WCOJ with the memoized variable
//! order), Datalog requests are answered from the snapshot's frozen
//! view outputs when resident (an `Arc` clone — O(1)) and from a
//! registry-free scratch evaluation otherwise, and point lookups batch
//! hash probes.

use crate::admission::{AdmissionGate, Overload, Permit};
use crate::plan::{PlanCache, PlanCacheStats, PlanKind};
use parlog_datalog::eval::eval_program_scratch;
use parlog_datalog::maintain::publish_views;
use parlog_datalog::program::{Program, ProgramError};
use parlog_relal::eval::{eval_query_indexed, eval_query_naive, EvalStrategy, Indexed};
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::opcount;
use parlog_relal::query::{ConjunctiveQuery, UnionQuery};
use parlog_relal::snapshot::{Snapshot, SnapshotStore};
use parlog_relal::trie::satisfying_valuations_wcoj_ordered;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// A conjunctive query under a strategy.
    Query(ConjunctiveQuery, EvalStrategy),
    /// A union of conjunctive queries under a strategy.
    Union(UnionQuery, EvalStrategy),
    /// A Datalog program under a strategy (answered from the frozen
    /// view output when the snapshot carries one).
    Program(Program, EvalStrategy),
    /// A batched point-lookup: one membership bit per fact.
    Lookup(Vec<Fact>),
}

/// A request's payload.
#[derive(Debug, Clone)]
pub enum Answer {
    /// Relational output (CQ / UCQ / program).
    Relation(Arc<Instance>),
    /// Per-fact membership bits, parallel to the lookup batch.
    Bits(Vec<bool>),
}

impl Answer {
    /// The relational output, if this answer carries one.
    pub fn relation(&self) -> Option<&Arc<Instance>> {
        match self {
            Answer::Relation(r) => Some(r),
            Answer::Bits(_) => None,
        }
    }
}

/// A served response plus its provenance.
#[derive(Debug, Clone)]
pub struct Response {
    /// The payload.
    pub answer: Answer,
    /// The snapshot generation the request was answered against.
    pub generation: u64,
    /// `Some(true)` on a plan-cache hit, `Some(false)` on a miss,
    /// `None` for plan-free requests (lookups).
    pub plan_hit: Option<bool>,
    /// Deterministic work: relational ops counted while executing.
    pub ops: u64,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission refused (typed, actionable: back off and retry).
    Overload(Overload),
    /// The submitted Datalog program was rejected (e.g. unstratifiable).
    Program(ProgramError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overload(o) => write!(f, "{o}"),
            ServeError::Program(e) => write!(f, "program rejected: {e:?}"),
        }
    }
}

impl From<Overload> for ServeError {
    fn from(o: Overload) -> ServeError {
        ServeError::Overload(o)
    }
}

/// The serving front end over one snapshot store.
#[derive(Debug)]
pub struct Server {
    store: Arc<SnapshotStore>,
    gate: AdmissionGate,
    views: Mutex<Vec<(Program, EvalStrategy)>>,
}

impl Server {
    /// Serve `initial`, admitting at most `capacity` concurrent
    /// requests.
    pub fn new(initial: Instance, capacity: usize) -> Server {
        Server::over(Arc::new(SnapshotStore::new(initial)), capacity)
    }

    /// Serve an existing store (e.g. a replica's).
    pub fn over(store: Arc<SnapshotStore>, capacity: usize) -> Server {
        Server {
            store,
            gate: AdmissionGate::new(capacity),
            views: Mutex::new(Vec::new()),
        }
    }

    /// The underlying store (writer access, replication, diagnostics).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The shared admission gate.
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// Register a view program to keep refreshed at every publication.
    /// Published snapshots carry its frozen output under
    /// `parlog_datalog::view_key_for(&p, strategy)`, so `Program`
    /// requests for it are answered in O(1).
    pub fn register_view(&self, p: Program, strategy: EvalStrategy) {
        lock_recover(&self.views).push((p, strategy));
    }

    /// Publish the writer's state as a new snapshot, first refreshing
    /// every registered view against the writer (`try_refresh` runs
    /// here — at publication — never on a reader).
    pub fn publish(&self) -> Result<Arc<Snapshot>, ServeError> {
        let programs = lock_recover(&self.views).clone();
        if programs.is_empty() {
            return Ok(self.store.publish());
        }
        let mut err = None;
        let snap = self
            .store
            .publish_with(|w| match publish_views(w, &programs) {
                Ok(outputs) => outputs,
                Err(e) => {
                    err = Some(e);
                    crate::plan::no_views()
                }
            });
        match err {
            Some(e) => Err(ServeError::Program(e)),
            None => Ok(snap),
        }
    }

    /// Open a session for one serving thread.
    pub fn session(&self) -> Session<'_> {
        Session {
            server: self,
            pinned: self.store.pin(),
            plans: PlanCache::new(),
        }
    }
}

/// One serving thread's state: the pinned snapshot and the private
/// plan cache.
#[derive(Debug)]
pub struct Session<'a> {
    server: &'a Server,
    pinned: Arc<Snapshot>,
    plans: PlanCache,
}

impl Session<'_> {
    /// The currently pinned snapshot.
    pub fn pinned(&self) -> &Arc<Snapshot> {
        &self.pinned
    }

    /// Re-pin if a newer snapshot was published (one acquire-load in
    /// the steady state). Returns `true` iff the pin moved.
    pub fn refresh_pin(&mut self) -> bool {
        self.server.store.pin_if_newer(&mut self.pinned)
    }

    /// The session's plan-cache counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Admit, re-pin to the freshest snapshot, execute.
    pub fn execute(&mut self, req: &Request) -> Result<Response, ServeError> {
        let permit = self.server.gate.try_admit()?;
        self.refresh_pin();
        self.run(req, &permit)
    }

    /// Admit and execute against the *current* pin without a staleness
    /// probe — the path for readers that deliberately serve a stale
    /// generation (snapshot isolation is the product, not a bug).
    pub fn execute_pinned(&mut self, req: &Request) -> Result<Response, ServeError> {
        let permit = self.server.gate.try_admit()?;
        self.run(req, &permit)
    }

    fn run(&mut self, req: &Request, _permit: &Permit<'_>) -> Result<Response, ServeError> {
        let generation = self.pinned.generation();
        let inst = self.pinned.instance();
        opcount::reset();
        let (answer, plan_hit) = match req {
            Request::Lookup(batch) => {
                let bits = batch.iter().map(|f| inst.contains(f)).collect();
                (Answer::Bits(bits), None)
            }
            Request::Query(q, strategy) => {
                let (plan, hit) =
                    self.plans
                        .prepare_relational(std::slice::from_ref(q), *strategy, generation);
                let PlanKind::Relational(analysis) = &plan.kind else {
                    unreachable!("relational prepare returned a program plan");
                };
                let out = execute_disjuncts(std::slice::from_ref(q), analysis, inst);
                (Answer::Relation(Arc::new(out)), Some(hit))
            }
            Request::Union(u, strategy) => {
                let (plan, hit) =
                    self.plans
                        .prepare_relational(&u.disjuncts, *strategy, generation);
                let PlanKind::Relational(analysis) = &plan.kind else {
                    unreachable!("relational prepare returned a program plan");
                };
                let out = execute_disjuncts(&u.disjuncts, analysis, inst);
                (Answer::Relation(Arc::new(out)), Some(hit))
            }
            Request::Program(p, strategy) => {
                let (plan, hit) = self.plans.prepare_program(p, *strategy, &self.pinned);
                let PlanKind::Program { view_key, resident } = plan.kind else {
                    unreachable!("program prepare returned a relational plan");
                };
                let out = if resident {
                    self.pinned
                        .view_output(view_key)
                        .expect("resident bit implies a frozen output at this generation")
                } else {
                    Arc::new(eval_program_scratch(p, inst, *strategy).map_err(ServeError::Program)?)
                };
                (Answer::Relation(out), Some(hit))
            }
        };
        Ok(Response {
            answer,
            generation,
            plan_hit,
            ops: opcount::read(),
        })
    }
}

/// Evaluate `disjuncts` against `inst` with each disjunct's resolved
/// strategy and memoized WCOJ order, unioning the outputs.
fn execute_disjuncts(
    disjuncts: &[ConjunctiveQuery],
    analysis: &crate::plan::QueryAnalysis,
    inst: &Instance,
) -> Instance {
    debug_assert_eq!(disjuncts.len(), analysis.disjuncts.len());
    let mut out = Instance::new();
    for (q, d) in disjuncts.iter().zip(&analysis.disjuncts) {
        match d.resolved {
            EvalStrategy::Naive => {
                out.extend_from(&eval_query_naive(q, inst));
            }
            EvalStrategy::Indexed => {
                let index = Indexed::for_query(q, inst);
                out.extend_from(&eval_query_indexed(q, inst, &index));
            }
            EvalStrategy::Wcoj | EvalStrategy::Auto => {
                // `Auto` cannot survive `resolve`, but WCOJ is a safe
                // executor for anything, so fold it in rather than panic.
                for v in satisfying_valuations_wcoj_ordered(q, inst, &d.order) {
                    out.insert(v.derived_fact(q));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_datalog::program::parse_program;
    use parlog_relal::eval::{eval_query_with, eval_union_with};
    use parlog_relal::fact::fact;
    use parlog_relal::parser::{parse_query, parse_union};

    fn base() -> Instance {
        Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[2, 3]),
            fact("S", &[2, 3]),
            fact("S", &[3, 1]),
            fact("T", &[3, 1]),
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
        ])
    }

    #[test]
    fn all_request_kinds_match_direct_evaluation() {
        let server = Server::new(base(), 8);
        let mut session = server.session();
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let u = parse_union("H(x,z) <- R(x,y), S(y,z); H(x,z) <- S(x,y), R(y,z)").unwrap();
        let p = parse_program("T2(x,z) <- E(x,y), E(y,z).").unwrap();

        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::Indexed,
            EvalStrategy::Wcoj,
            EvalStrategy::Auto,
        ] {
            let r = session
                .execute(&Request::Query(q.clone(), strategy))
                .unwrap();
            assert_eq!(
                r.answer.relation().unwrap().sorted_facts(),
                eval_query_with(&q, &base(), strategy).sorted_facts(),
                "{strategy:?}"
            );
            let r = session
                .execute(&Request::Union(u.clone(), strategy))
                .unwrap();
            assert_eq!(
                r.answer.relation().unwrap().sorted_facts(),
                eval_union_with(&u, &base(), strategy).sorted_facts()
            );
        }
        let r = session
            .execute(&Request::Program(p.clone(), EvalStrategy::Auto))
            .unwrap();
        assert!(r.answer.relation().unwrap().contains(&fact("T2", &[1, 3])));
        let r = session
            .execute(&Request::Lookup(vec![
                fact("R", &[1, 2]),
                fact("R", &[9, 9]),
            ]))
            .unwrap();
        match r.answer {
            Answer::Bits(ref b) => assert_eq!(b, &vec![true, false]),
            _ => panic!("expected bits"),
        }
        assert_eq!(r.plan_hit, None);
    }

    #[test]
    fn registered_view_is_served_frozen_after_publish() {
        let server = Server::new(base(), 8);
        let p = parse_program("TC(x,y) <- E(x,y). TC(x,z) <- E(x,y), TC(y,z).").unwrap();
        server.register_view(p.clone(), EvalStrategy::Auto);
        server.publish().unwrap();
        let mut session = server.session();
        session.refresh_pin();
        let r1 = session
            .execute(&Request::Program(p.clone(), EvalStrategy::Auto))
            .unwrap();
        // Served from the frozen output: zero relational ops.
        assert_eq!(r1.ops, 0);
        assert!(r1.answer.relation().unwrap().contains(&fact("TC", &[1, 3])));
        let frozen = session
            .pinned()
            .view_output(parlog_datalog::view_key_for(&p, EvalStrategy::Auto))
            .unwrap();
        assert!(Arc::ptr_eq(r1.answer.relation().unwrap(), &frozen));
    }

    #[test]
    fn overload_is_a_typed_refusal() {
        let server = Server::new(base(), 1);
        let _held = server.gate().try_admit().unwrap();
        let mut session = server.session();
        let err = session
            .execute(&Request::Lookup(vec![fact("R", &[1, 2])]))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Overload(Overload::Saturated {
                in_flight: 1,
                capacity: 1
            })
        );
    }

    #[test]
    fn execute_pinned_stays_on_the_old_generation() {
        let server = Server::new(base(), 4);
        let mut session = server.session();
        let q = parse_query("H(x,y) <- R(x,y)").unwrap();
        let before = session
            .execute_pinned(&Request::Query(q.clone(), EvalStrategy::Auto))
            .unwrap();
        server.store().mutate(|w| {
            w.insert(fact("R", &[7, 7]));
        });
        server.publish().unwrap();
        let stale = session
            .execute_pinned(&Request::Query(q.clone(), EvalStrategy::Auto))
            .unwrap();
        assert_eq!(stale.generation, before.generation);
        assert_eq!(
            stale.answer.relation().unwrap().sorted_facts(),
            before.answer.relation().unwrap().sorted_facts()
        );
        assert!(stale.plan_hit.unwrap(), "same generation, same plan");
        let fresh = session
            .execute(&Request::Query(q, EvalStrategy::Auto))
            .unwrap();
        assert!(fresh.generation > before.generation);
        assert!(fresh
            .answer
            .relation()
            .unwrap()
            .contains(&fact("H", &[7, 7])));
    }
}
