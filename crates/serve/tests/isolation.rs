//! Snapshot-isolation property tests (PR 10, satellite 3).
//!
//! The serving layer's core promise: a reader pinned to generation `k`
//! answers **byte-identically** no matter how many generations
//! `k+1..k+n` a concurrent writer publishes, under every evaluation
//! strategy and every reader-thread count — and a plan-cache hit is
//! indistinguishable from a cold miss.

use proptest::prelude::*;

use parlog_relal::eval::{eval_query_with, EvalStrategy};
use parlog_relal::fact::fact;
use parlog_relal::instance::Instance;
use parlog_relal::parser::parse_query;
use parlog_serve::{Request, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRATEGIES: [EvalStrategy; 4] = [
    EvalStrategy::Naive,
    EvalStrategy::Indexed,
    EvalStrategy::Wcoj,
    EvalStrategy::Auto,
];

/// Strategy: a small seeded base over R/S/T/E.
fn small_base(max_facts: usize, domain: u64) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0u64..4, 0..domain, 0..domain), 3..max_facts).prop_map(|triples| {
        Instance::from_facts(triples.into_iter().map(|(r, a, b)| {
            let name = ["R", "S", "T", "E"][r as usize];
            fact(name, &[a, b])
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A reader pinned at generation k is byte-identical under
    /// concurrent publications k+1..k+n, across all 4 strategies and
    /// 1/2/4 reader threads.
    #[test]
    fn pinned_readers_are_isolated_under_publications(
        base in small_base(18, 6),
        publications in 1usize..6,
        churn in 1u64..5,
    ) {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let q2 = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let server = Server::new(base.clone(), 64);
        let pinned = server.store().pin();
        // Ground truth per strategy, computed before any publication.
        let expected: Vec<Vec<_>> = STRATEGIES
            .iter()
            .map(|s| eval_query_with(&q, &base, *s).sorted_facts())
            .collect();
        let expected2 = eval_query_with(&q2, &base, EvalStrategy::Auto).sorted_facts();

        for threads in [1usize, 2, 4] {
            let survived = AtomicU64::new(0);
            std::thread::scope(|scope| {
                // The concurrent writer: publish n fresh generations
                // while the readers evaluate against the old pin.
                scope.spawn(|| {
                    for g in 0..publications {
                        server.store().mutate(|w| {
                            for c in 0..churn {
                                let v = 100 + (g as u64) * 10 + c;
                                w.insert(fact("R", &[v, v]));
                                w.insert(fact("S", &[v, v]));
                                w.insert(fact("T", &[v, v]));
                            }
                        });
                        server.publish().unwrap();
                    }
                });
                for _ in 0..threads {
                    let pinned = Arc::clone(&pinned);
                    let q = &q;
                    let q2 = &q2;
                    let expected = &expected;
                    let expected2 = &expected2;
                    let survived = &survived;
                    scope.spawn(move || {
                        for (s, want) in STRATEGIES.iter().zip(expected) {
                            let got = eval_query_with(q, pinned.instance(), *s).sorted_facts();
                            assert_eq!(&got, want, "strategy {s:?} drifted on a pinned snapshot");
                        }
                        let got2 =
                            eval_query_with(q2, pinned.instance(), EvalStrategy::Auto).sorted_facts();
                        assert_eq!(&got2, expected2);
                        survived.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            prop_assert_eq!(survived.load(Ordering::Relaxed), threads as u64);
            prop_assert_eq!(pinned.generation(), 0);
        }
        // And a *fresh* pin does see the writer's churn.
        let fresh = server.store().pin();
        prop_assert!(fresh.generation() >= publications as u64);
        prop_assert!(fresh.instance().len() > pinned.instance().len());
    }

    /// A plan-cache hit answers byte-identically to a cold miss, for
    /// every strategy.
    #[test]
    fn plan_cache_hit_equals_cold_miss(
        base in small_base(18, 6),
        strategy_idx in 0usize..4,
    ) {
        let strategy = STRATEGIES[strategy_idx];
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let server = Server::new(base, 64);
        let mut warm = server.session();
        let req = Request::Query(q, strategy);
        let miss = warm.execute(&req).unwrap();
        prop_assert_eq!(miss.plan_hit, Some(false));
        let hit = warm.execute(&req).unwrap();
        prop_assert_eq!(hit.plan_hit, Some(true));
        // A second session replays the cold path against the same
        // generation — its miss must equal the first session's hit.
        let mut cold = server.session();
        let cold_miss = cold.execute(&req).unwrap();
        prop_assert_eq!(cold_miss.plan_hit, Some(false));
        let a = miss.answer.relation().unwrap().sorted_facts();
        let b = hit.answer.relation().unwrap().sorted_facts();
        let c = cold_miss.answer.relation().unwrap().sorted_facts();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
        prop_assert_eq!(hit.generation, cold_miss.generation);
        // Hit and miss also cost the same deterministic work: the plan
        // changes *when* analysis happens, never what executes.
        prop_assert_eq!(hit.ops, cold_miss.ops);
    }
}
