//! Handcrafted publish/pin interleavings (PR 10, satellite 5).
//!
//! Publication is linearized by a single release-store of the
//! generation counter, *after* the current-snapshot pointer swap. These
//! tests pin that ordering down from the reader's side:
//!
//! * at every point a reader can interleave with a publication —
//!   before the writer mutates, after it mutates but before publish,
//!   inside the view-refresh closure (writer lock held, swap not yet
//!   done), and after publish returns — `pin()` yields a **sealed,
//!   internally consistent** snapshot;
//! * the generation counter never runs ahead of the snapshot pointer:
//!   a reader that first observes generation `g` and then pins gets a
//!   snapshot of generation ≥ `g` (the swap happens before the store);
//! * a full two-thread stress run: every pinned snapshot's fact count
//!   equals exactly `base + generation` (one insert per publication),
//!   so any torn or out-of-order publication is caught arithmetically.

use parlog_relal::fact::fact;
use parlog_relal::fastmap::fxmap;
use parlog_relal::instance::Instance;
use parlog_relal::snapshot::SnapshotStore;
use std::sync::atomic::{AtomicU64, Ordering};

fn base(n: u64) -> Instance {
    Instance::from_facts((0..n).map(|k| fact("E", &[k, k + 1])))
}

/// The reader-side invariant checked at every interleaving point.
fn check_pin(store: &SnapshotStore, base_len: usize) {
    let observed_gen = store.generation();
    let snap = store.pin();
    // The counter is stored *after* the pointer swap, so a pin taken
    // after observing generation g can never be older than g.
    assert!(
        snap.generation() >= observed_gen,
        "pin (gen {}) older than observed generation {observed_gen}",
        snap.generation()
    );
    assert!(
        snap.instance().is_sealed(),
        "published snapshots are sealed"
    );
    // One insert per publication: size is an arithmetic function of the
    // generation, so a torn snapshot (pointer/contents mismatch) fails.
    assert_eq!(
        snap.instance().len(),
        base_len + snap.generation() as usize,
        "snapshot contents disagree with its generation"
    );
}

#[test]
fn reader_steps_interleaved_at_every_publication_point() {
    let store = SnapshotStore::new(base(4));
    let base_len = 4;
    for round in 0..6u64 {
        // Point 1: quiescent.
        check_pin(&store, base_len);
        // Point 2: after the writer mutates, before publish — the
        // mutation must be invisible to pins.
        store.mutate(|w| {
            w.insert(fact("W", &[round, round]));
        });
        let before = store.pin();
        assert_eq!(before.generation(), round);
        check_pin(&store, base_len);
        // Point 3: inside the publication's view-refresh closure — the
        // writer lock is held, the swap has not happened yet; readers
        // must still see the previous snapshot, fully formed.
        store.publish_with(|_| {
            check_pin(&store, base_len);
            assert_eq!(
                store.generation(),
                round,
                "swap must not precede the closure"
            );
            fxmap()
        });
        // Point 4: after publish returns.
        let after = store.pin();
        assert_eq!(after.generation(), round + 1);
        check_pin(&store, base_len);
        // The pre-publish pin was untouched by the swap.
        assert_eq!(before.instance().len(), base_len + round as usize);
    }
}

#[test]
fn generation_probe_then_pin_never_goes_backwards() {
    let store = SnapshotStore::new(base(4));
    // Interleave a probe between every pair of publication steps.
    for round in 0..8u64 {
        let g0 = store.generation();
        store.mutate(|w| {
            w.insert(fact("W", &[round, round]));
        });
        let g1 = store.generation();
        assert_eq!(g0, g1, "mutation must not move the generation");
        store.publish();
        let g2 = store.generation();
        assert_eq!(g2, g1 + 1);
        // A pin taken now reflects at least g2.
        assert!(store.pin().generation() >= g2);
    }
}

#[test]
fn pin_if_newer_is_exact_across_publications() {
    let store = SnapshotStore::new(base(4));
    let mut pinned = store.pin();
    for round in 0..5u64 {
        assert!(
            !store.pin_if_newer(&mut pinned),
            "no publication, no re-pin"
        );
        store.mutate(|w| {
            w.insert(fact("W", &[round, round]));
        });
        assert!(
            !store.pin_if_newer(&mut pinned),
            "mutation alone must not re-pin"
        );
        store.publish();
        assert!(store.pin_if_newer(&mut pinned));
        assert_eq!(pinned.generation(), round + 1);
        assert_eq!(pinned.instance().len(), 4 + round as usize + 1);
    }
}

#[test]
fn two_thread_publish_pin_stress() {
    let store = SnapshotStore::new(base(4));
    let base_len = 4;
    let publications = 200u64;
    let checks = AtomicU64::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for k in 0..publications {
                store.mutate(|w| {
                    w.insert(fact("W", &[k, k]));
                });
                store.publish();
            }
        });
        for _ in 0..2 {
            scope.spawn(|| {
                let mut last_gen = 0u64;
                let mut pinned = store.pin();
                while pinned.generation() < publications {
                    check_pin(&store, base_len);
                    store.pin_if_newer(&mut pinned);
                    assert!(
                        pinned.generation() >= last_gen,
                        "a reader's pin went backwards"
                    );
                    last_gen = pinned.generation();
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0);
    assert_eq!(store.generation(), publications);
    assert_eq!(
        store.pin().instance().len(),
        base_len + publications as usize
    );
}
