//! Graceful degradation: certified partial answers, or a principled
//! refusal.
//!
//! When recovery is impossible within budget — no live survivor to adopt
//! a dead node's shard, or the heal allowance is spent — the supervisor
//! does not pretend. What it can still promise depends on the CALM
//! split:
//!
//! * **Monotone (F0) queries** are closed under shrinking input: every
//!   fact derived from the surviving shards is in the true answer, so
//!   the run's output is a *sound partial answer*. The supervisor
//!   returns it together with a [`Certificate`] naming the missing
//!   shards and the input coverage — a subset guarantee, machine-checked
//!   by the property tests.
//! * **Non-monotone queries** enjoy no such closure: an answer computed
//!   from a subset of the input can contain facts that the full input
//!   *retracts* (the open-triangle query closes triangles it cannot
//!   see). Returning anything would be unsound, so the supervisor
//!   [refuses][Degraded::Refused], reporting exactly why.
//!
//! This is the CALM theorem operationalized as a failure-mode contract:
//! monotonicity is not just coordination-freeness, it is *degradability*.

use parlog_relal::instance::Instance;
use parlog_relal::query::ConjunctiveQuery;
use std::fmt;

/// Whether a query's answers survive input shrinkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum QueryMode {
    /// Monotone: every answer over a subset of the input is an answer
    /// over the full input — degradation to a certified subset is sound.
    Monotone,
    /// Non-monotone: subset answers may be wrong — degradation must
    /// refuse.
    NonMonotone,
}

impl QueryMode {
    /// Classify a conjunctive query syntactically: CQs without negation
    /// are monotone; a negated atom breaks monotonicity.
    pub fn of(q: &ConjunctiveQuery) -> QueryMode {
        if q.negated.is_empty() {
            QueryMode::Monotone
        } else {
            QueryMode::NonMonotone
        }
    }

    /// Is degradation to a partial answer sound for this mode?
    pub fn degradable(self) -> bool {
        matches!(self, QueryMode::Monotone)
    }
}

/// The staleness/coverage certificate attached to a degraded answer (or
/// to a refusal): which shards are missing and how much input the
/// answer is computed from.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Certificate {
    /// Nodes whose shards are unrepresented: crashed, unhealed.
    pub missing_nodes: Vec<usize>,
    /// Facts lost with those shards.
    pub missing_facts: usize,
    /// Fraction of the input the answer covers, in `[0, 1]`:
    /// `1 − missing_facts / total_facts`.
    pub coverage: f64,
    /// Virtual-clock time the certificate was issued — the answer is
    /// complete w.r.t. everything delivered up to here.
    pub as_of_clock: usize,
    /// Nodes whose shards the answer *does* draw on. Must be disjoint
    /// from `missing_nodes`: a certificate claiming coverage of a shard
    /// it also reports missing is forged. Empty means "unspecified"
    /// (pre-partition certificates carry no coverage roster).
    pub covered_nodes: Vec<usize>,
    /// Partition epochs (indices into the installed [`PartitionPlan`])
    /// still open when the certificate was issued. While any epoch is
    /// open, messages may be held at their sources, so *full coverage
    /// is uncertifiable* — [`Certificate::validate`] rejects a
    /// full-coverage claim carrying a non-empty epoch list.
    ///
    /// [`PartitionPlan`]: parlog_faults::PartitionPlan
    pub open_epochs: Vec<usize>,
}

impl Certificate {
    /// A full-coverage certificate (nothing missing) at `clock`.
    pub fn complete(clock: usize) -> Certificate {
        Certificate {
            missing_nodes: Vec::new(),
            missing_facts: 0,
            coverage: 1.0,
            as_of_clock: clock,
            covered_nodes: Vec::new(),
            open_epochs: Vec::new(),
        }
    }

    /// Does this certificate claim full input coverage?
    pub fn is_complete(&self) -> bool {
        self.missing_nodes.is_empty()
    }

    /// Build a certificate for a run that lost `missing_facts` of
    /// `total_facts` with `missing_nodes` unhealed — the only place
    /// coverage is computed, so every issued certificate validates by
    /// construction.
    pub fn for_loss(
        missing_nodes: Vec<usize>,
        missing_facts: usize,
        total_facts: usize,
        clock: usize,
    ) -> Certificate {
        let coverage = if total_facts == 0 {
            1.0
        } else {
            1.0 - missing_facts as f64 / total_facts as f64
        };
        Certificate {
            missing_nodes,
            missing_facts,
            coverage,
            as_of_clock: clock,
            covered_nodes: Vec::new(),
            open_epochs: Vec::new(),
        }
    }

    /// Name the nodes whose shards the answer draws on. The roster must
    /// stay disjoint from `missing_nodes` — [`Certificate::validate`]
    /// rejects the overlap as a forgery.
    pub fn with_covered(mut self, covered_nodes: Vec<usize>) -> Certificate {
        self.covered_nodes = covered_nodes;
        self
    }

    /// Record the partition epochs still open at issue time. A
    /// certificate carrying a non-empty list can never validly claim
    /// full coverage: held messages may still be in flight.
    pub fn with_open_epochs(mut self, open_epochs: Vec<usize>) -> Certificate {
        self.open_epochs = open_epochs;
        self
    }

    /// Validate the certificate's claimed coverage against the loss
    /// arithmetic it is supposed to summarize. A certificate is *forged*
    /// (and rejected) when its coverage is NaN/∞/outside `[0, 1]`,
    /// disagrees with `1 − missing_facts / total_facts`, claims missing
    /// facts without naming a missing node, or counts more missing facts
    /// than the input holds. Partition-scoped forgeries are rejected
    /// too: a `covered_nodes` roster overlapping `missing_nodes` (the
    /// certificate claims coverage of a shard it also reports lost), or
    /// a full-coverage claim issued while a partition epoch is still
    /// open (held messages may be in flight, so completeness is
    /// uncertifiable). Returns the recomputed coverage on success —
    /// callers should use the returned value, never the stored field.
    pub fn validate(&self, total_facts: usize) -> Result<f64, String> {
        if let Some(&node) = self
            .covered_nodes
            .iter()
            .find(|n| self.missing_nodes.contains(n))
        {
            return Err(format!(
                "claimed coverage of node {node} overlaps the missing set"
            ));
        }
        if self.missing_facts == 0 && self.missing_nodes.is_empty() && !self.open_epochs.is_empty()
        {
            return Err(format!(
                "full coverage claimed while partition epoch(s) {:?} are open",
                self.open_epochs
            ));
        }
        if !self.coverage.is_finite() {
            return Err(format!("coverage {} is not finite", self.coverage));
        }
        if !(0.0..=1.0).contains(&self.coverage) {
            return Err(format!("coverage {} outside [0, 1]", self.coverage));
        }
        if self.missing_facts > total_facts {
            return Err(format!(
                "{} missing facts exceed the {} total",
                self.missing_facts, total_facts
            ));
        }
        if self.missing_facts > 0 && self.missing_nodes.is_empty() {
            return Err("missing facts without a missing node".into());
        }
        let derived = if total_facts == 0 {
            1.0
        } else {
            1.0 - self.missing_facts as f64 / total_facts as f64
        };
        if (self.coverage - derived).abs() > 1e-9 {
            return Err(format!(
                "claimed coverage {} disagrees with derived {}",
                self.coverage, derived
            ));
        }
        Ok(derived)
    }

    /// Does the certificate *validly* claim full coverage of
    /// `total_facts`? Unlike trusting the stored `coverage == 1.0`, this
    /// rederives coverage via [`Certificate::validate`] — a forged
    /// certificate that over-claims (says `1.0` while facts are missing)
    /// answers `false` here.
    pub fn is_full_coverage(&self, total_facts: usize) -> bool {
        matches!(self.validate(total_facts), Ok(c) if c == 1.0)
            && self.missing_facts == 0
            && self.missing_nodes.is_empty()
    }
}

/// Why a non-monotone answer is withheld — the typed refusal contract.
///
/// The `Display` form is the human-readable sentence reports carry; the
/// variants let callers branch on the cause (and decide, e.g., to retry
/// after a partition heals rather than give up on a lost shard).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum RefusalReason {
    /// Shards are permanently lost (crashed, unhealed) and the query is
    /// non-monotone: an answer over the surviving subset could contain
    /// retracted facts.
    NonMonotoneLoss {
        /// The unhealed nodes whose shards are gone.
        missing_nodes: Vec<usize>,
        /// Fraction of the input the surviving shards cover.
        coverage: f64,
    },
    /// A partition epoch is still open: the unreachable side's facts are
    /// held, not lost, so the refusal is *temporary* — retry after the
    /// heal.
    PartitionOpen {
        /// The open epoch indices.
        epochs: Vec<usize>,
        /// Nodes currently unreachable from the supervisor's home.
        unreachable: Vec<usize>,
    },
    /// The supervisor's side of a split cannot account for a strict
    /// majority of the cluster: committing anything non-monotone here
    /// risks diverging from the other side, so it blocks.
    QuorumLost {
        /// Nodes the supervisor can account for (reach over the
        /// network), including itself.
        accounted: usize,
        /// Cluster size.
        total: usize,
    },
}

impl fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefusalReason::NonMonotoneLoss {
                missing_nodes,
                coverage,
            } => write!(
                f,
                "non-monotone query: shards of node(s) {:?} are lost and unhealed, \
                 so any answer computed from the surviving {:.0}% of the input \
                 could contain retracted facts",
                missing_nodes,
                coverage * 100.0
            ),
            RefusalReason::PartitionOpen {
                epochs,
                unreachable,
            } => write!(
                f,
                "non-monotone query under an open partition: epoch(s) {epochs:?} \
                 sever node(s) {unreachable:?}, whose facts are held in flight — \
                 refusing until the partition heals and quorum returns"
            ),
            RefusalReason::QuorumLost { accounted, total } => write!(
                f,
                "non-monotone query without quorum: only {accounted} of {total} \
                 nodes are accountable from this side of the split — blocking \
                 instead of diverging"
            ),
        }
    }
}

/// The supervisor's verdict on a run's answer.
#[derive(Debug, Clone)]
pub enum Degraded {
    /// Every shard is represented (directly or via a heal): the answer
    /// is the run's full output.
    Exact(Instance),
    /// Shards are missing but the query is monotone: a sound partial
    /// answer — a subset of the true answer — with its certificate.
    Partial {
        /// The (sound, possibly incomplete) answer.
        answer: Instance,
        /// What is missing and how much is covered.
        certificate: Certificate,
    },
    /// Shards are missing and the query is non-monotone: no sound answer
    /// exists, so none is given.
    Refused {
        /// Why the answer is withheld.
        reason: RefusalReason,
        /// What was missing when the refusal was issued.
        certificate: Certificate,
    },
}

impl Degraded {
    /// The answer, if one was (soundly) produced.
    pub fn answer(&self) -> Option<&Instance> {
        match self {
            Degraded::Exact(a) => Some(a),
            Degraded::Partial { answer, .. } => Some(answer),
            Degraded::Refused { .. } => None,
        }
    }

    /// Was the run healed to full coverage?
    pub fn is_exact(&self) -> bool {
        matches!(self, Degraded::Exact(_))
    }

    /// The certificate, when the run degraded (partial or refused).
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Degraded::Exact(_) => None,
            Degraded::Partial { certificate, .. } | Degraded::Refused { certificate, .. } => {
                Some(certificate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::parser::parse_query;

    #[test]
    fn syntactic_monotonicity_split() {
        let cq = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        assert_eq!(QueryMode::of(&cq), QueryMode::Monotone);
        assert!(QueryMode::of(&cq).degradable());
        let neg = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        assert_eq!(QueryMode::of(&neg), QueryMode::NonMonotone);
        assert!(!QueryMode::of(&neg).degradable());
    }

    #[test]
    fn certificate_coverage_roundtrip() {
        let c = Certificate {
            missing_nodes: vec![2],
            missing_facts: 5,
            coverage: 0.75,
            as_of_clock: 90,
            covered_nodes: vec![0, 1, 3],
            open_epochs: Vec::new(),
        };
        assert!(!c.is_complete());
        assert!(Certificate::complete(3).is_complete());
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"coverage\":0.75"));
    }

    #[test]
    fn forged_overclaiming_certificate_is_rejected() {
        // The forgery: 5 of 20 facts are gone, but the certificate
        // claims full coverage. Trusting the stored field would accept
        // it; the validated derivation does not.
        let forged = Certificate {
            missing_nodes: vec![2],
            missing_facts: 5,
            coverage: 1.0,
            as_of_clock: 90,
            covered_nodes: Vec::new(),
            open_epochs: Vec::new(),
        };
        assert!(forged.validate(20).is_err());
        assert!(!forged.is_full_coverage(20));

        // Honest loss certificates validate and report true coverage.
        let honest = Certificate::for_loss(vec![2], 5, 20, 90);
        assert_eq!(honest.validate(20).unwrap(), 0.75);
        assert!(!honest.is_full_coverage(20));
        assert!(Certificate::complete(3).is_full_coverage(20));
        assert!(Certificate::for_loss(vec![], 0, 0, 0).is_full_coverage(0));
    }

    #[test]
    fn malformed_coverages_are_rejected() {
        let mut c = Certificate::for_loss(vec![1], 5, 20, 0);
        c.coverage = f64::NAN;
        assert!(c.validate(20).is_err());
        c.coverage = f64::INFINITY;
        assert!(c.validate(20).is_err());
        c.coverage = -0.25;
        assert!(c.validate(20).is_err());
        c.coverage = 1.5;
        assert!(c.validate(20).is_err());
        // More missing than the input holds.
        let c = Certificate::for_loss(vec![1], 30, 20, 0);
        assert!(c.validate(20).is_err());
        // Missing facts without a named missing node.
        let c = Certificate::for_loss(vec![], 5, 20, 0);
        assert!(c.validate(20).is_err());
        // Stored coverage quietly nudged away from the derivation.
        let mut c = Certificate::for_loss(vec![1], 5, 20, 0);
        c.coverage = 0.80;
        assert!(c.validate(20).is_err());
    }

    #[test]
    fn partition_scoped_forgeries_are_rejected() {
        // Forgery 1: the certificate claims coverage of node 2 while
        // also reporting node 2's shard missing.
        let overlap = Certificate::for_loss(vec![2], 5, 20, 90).with_covered(vec![0, 1, 2]);
        let err = overlap.validate(20).unwrap_err();
        assert!(err.contains("overlaps"), "got: {err}");

        // Forgery 2: full coverage claimed while a partition epoch is
        // still open — held messages may be in flight, so completeness
        // is uncertifiable.
        let premature = Certificate::complete(90).with_open_epochs(vec![0]);
        let err = premature.validate(20).unwrap_err();
        assert!(err.contains("partition epoch"), "got: {err}");
        assert!(!premature.is_full_coverage(20));

        // The honest counterparts pass: a disjoint roster, and a
        // partial certificate issued during an open epoch.
        let honest = Certificate::for_loss(vec![2], 5, 20, 90).with_covered(vec![0, 1, 3]);
        assert_eq!(honest.validate(20).unwrap(), 0.75);
        let degraded_open = Certificate::for_loss(vec![2], 5, 20, 90).with_open_epochs(vec![0]);
        assert!(degraded_open.validate(20).is_ok());
        assert!(!degraded_open.is_full_coverage(20));
        // And a heal-complete certificate with no open epochs still
        // claims full coverage validly.
        assert!(Certificate::complete(90).is_full_coverage(20));
    }

    #[test]
    fn refusal_reasons_render_their_contract() {
        let loss = RefusalReason::NonMonotoneLoss {
            missing_nodes: vec![1],
            coverage: 0.75,
        };
        assert!(loss.to_string().contains("non-monotone"));
        assert!(loss.to_string().contains("75%"));
        let part = RefusalReason::PartitionOpen {
            epochs: vec![0],
            unreachable: vec![2, 3],
        };
        assert!(part.to_string().contains("until the partition heals"));
        let quorum = RefusalReason::QuorumLost {
            accounted: 1,
            total: 4,
        };
        assert!(quorum.to_string().contains("1 of 4"));
        assert!(quorum.to_string().contains("blocking"));
        // The typed reasons serialize for reports.
        assert!(serde_json::to_string(&part)
            .unwrap()
            .contains("PartitionOpen"));
    }

    #[test]
    fn degraded_accessors() {
        let inst = Instance::new();
        assert!(Degraded::Exact(inst.clone()).answer().is_some());
        assert!(Degraded::Exact(inst.clone()).certificate().is_none());
        let refused = Degraded::Refused {
            reason: RefusalReason::NonMonotoneLoss {
                missing_nodes: vec![1],
                coverage: 0.5,
            },
            certificate: Certificate::complete(0),
        };
        assert!(refused.answer().is_none());
        assert!(refused.certificate().is_some());
        let partial = Degraded::Partial {
            answer: inst,
            certificate: Certificate::complete(0),
        };
        assert!(!partial.is_exact());
        assert!(partial.answer().is_some());
    }
}
