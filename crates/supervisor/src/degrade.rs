//! Graceful degradation: certified partial answers, or a principled
//! refusal.
//!
//! When recovery is impossible within budget — no live survivor to adopt
//! a dead node's shard, or the heal allowance is spent — the supervisor
//! does not pretend. What it can still promise depends on the CALM
//! split:
//!
//! * **Monotone (F0) queries** are closed under shrinking input: every
//!   fact derived from the surviving shards is in the true answer, so
//!   the run's output is a *sound partial answer*. The supervisor
//!   returns it together with a [`Certificate`] naming the missing
//!   shards and the input coverage — a subset guarantee, machine-checked
//!   by the property tests.
//! * **Non-monotone queries** enjoy no such closure: an answer computed
//!   from a subset of the input can contain facts that the full input
//!   *retracts* (the open-triangle query closes triangles it cannot
//!   see). Returning anything would be unsound, so the supervisor
//!   [refuses][Degraded::Refused], reporting exactly why.
//!
//! This is the CALM theorem operationalized as a failure-mode contract:
//! monotonicity is not just coordination-freeness, it is *degradability*.

use parlog_relal::instance::Instance;
use parlog_relal::query::ConjunctiveQuery;

/// Whether a query's answers survive input shrinkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum QueryMode {
    /// Monotone: every answer over a subset of the input is an answer
    /// over the full input — degradation to a certified subset is sound.
    Monotone,
    /// Non-monotone: subset answers may be wrong — degradation must
    /// refuse.
    NonMonotone,
}

impl QueryMode {
    /// Classify a conjunctive query syntactically: CQs without negation
    /// are monotone; a negated atom breaks monotonicity.
    pub fn of(q: &ConjunctiveQuery) -> QueryMode {
        if q.negated.is_empty() {
            QueryMode::Monotone
        } else {
            QueryMode::NonMonotone
        }
    }

    /// Is degradation to a partial answer sound for this mode?
    pub fn degradable(self) -> bool {
        matches!(self, QueryMode::Monotone)
    }
}

/// The staleness/coverage certificate attached to a degraded answer (or
/// to a refusal): which shards are missing and how much input the
/// answer is computed from.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Certificate {
    /// Nodes whose shards are unrepresented: crashed, unhealed.
    pub missing_nodes: Vec<usize>,
    /// Facts lost with those shards.
    pub missing_facts: usize,
    /// Fraction of the input the answer covers, in `[0, 1]`:
    /// `1 − missing_facts / total_facts`.
    pub coverage: f64,
    /// Virtual-clock time the certificate was issued — the answer is
    /// complete w.r.t. everything delivered up to here.
    pub as_of_clock: usize,
}

impl Certificate {
    /// A full-coverage certificate (nothing missing) at `clock`.
    pub fn complete(clock: usize) -> Certificate {
        Certificate {
            missing_nodes: Vec::new(),
            missing_facts: 0,
            coverage: 1.0,
            as_of_clock: clock,
        }
    }

    /// Does this certificate claim full input coverage?
    pub fn is_complete(&self) -> bool {
        self.missing_nodes.is_empty()
    }

    /// Build a certificate for a run that lost `missing_facts` of
    /// `total_facts` with `missing_nodes` unhealed — the only place
    /// coverage is computed, so every issued certificate validates by
    /// construction.
    pub fn for_loss(
        missing_nodes: Vec<usize>,
        missing_facts: usize,
        total_facts: usize,
        clock: usize,
    ) -> Certificate {
        let coverage = if total_facts == 0 {
            1.0
        } else {
            1.0 - missing_facts as f64 / total_facts as f64
        };
        Certificate {
            missing_nodes,
            missing_facts,
            coverage,
            as_of_clock: clock,
        }
    }

    /// Validate the certificate's claimed coverage against the loss
    /// arithmetic it is supposed to summarize. A certificate is *forged*
    /// (and rejected) when its coverage is NaN/∞/outside `[0, 1]`,
    /// disagrees with `1 − missing_facts / total_facts`, claims missing
    /// facts without naming a missing node, or counts more missing facts
    /// than the input holds. Returns the recomputed coverage on success —
    /// callers should use the returned value, never the stored field.
    pub fn validate(&self, total_facts: usize) -> Result<f64, String> {
        if !self.coverage.is_finite() {
            return Err(format!("coverage {} is not finite", self.coverage));
        }
        if !(0.0..=1.0).contains(&self.coverage) {
            return Err(format!("coverage {} outside [0, 1]", self.coverage));
        }
        if self.missing_facts > total_facts {
            return Err(format!(
                "{} missing facts exceed the {} total",
                self.missing_facts, total_facts
            ));
        }
        if self.missing_facts > 0 && self.missing_nodes.is_empty() {
            return Err("missing facts without a missing node".into());
        }
        let derived = if total_facts == 0 {
            1.0
        } else {
            1.0 - self.missing_facts as f64 / total_facts as f64
        };
        if (self.coverage - derived).abs() > 1e-9 {
            return Err(format!(
                "claimed coverage {} disagrees with derived {}",
                self.coverage, derived
            ));
        }
        Ok(derived)
    }

    /// Does the certificate *validly* claim full coverage of
    /// `total_facts`? Unlike trusting the stored `coverage == 1.0`, this
    /// rederives coverage via [`Certificate::validate`] — a forged
    /// certificate that over-claims (says `1.0` while facts are missing)
    /// answers `false` here.
    pub fn is_full_coverage(&self, total_facts: usize) -> bool {
        matches!(self.validate(total_facts), Ok(c) if c == 1.0)
            && self.missing_facts == 0
            && self.missing_nodes.is_empty()
    }
}

/// The supervisor's verdict on a run's answer.
#[derive(Debug, Clone)]
pub enum Degraded {
    /// Every shard is represented (directly or via a heal): the answer
    /// is the run's full output.
    Exact(Instance),
    /// Shards are missing but the query is monotone: a sound partial
    /// answer — a subset of the true answer — with its certificate.
    Partial {
        /// The (sound, possibly incomplete) answer.
        answer: Instance,
        /// What is missing and how much is covered.
        certificate: Certificate,
    },
    /// Shards are missing and the query is non-monotone: no sound answer
    /// exists, so none is given.
    Refused {
        /// Why the answer is withheld.
        reason: String,
        /// What was missing when the refusal was issued.
        certificate: Certificate,
    },
}

impl Degraded {
    /// The answer, if one was (soundly) produced.
    pub fn answer(&self) -> Option<&Instance> {
        match self {
            Degraded::Exact(a) => Some(a),
            Degraded::Partial { answer, .. } => Some(answer),
            Degraded::Refused { .. } => None,
        }
    }

    /// Was the run healed to full coverage?
    pub fn is_exact(&self) -> bool {
        matches!(self, Degraded::Exact(_))
    }

    /// The certificate, when the run degraded (partial or refused).
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Degraded::Exact(_) => None,
            Degraded::Partial { certificate, .. } | Degraded::Refused { certificate, .. } => {
                Some(certificate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::parser::parse_query;

    #[test]
    fn syntactic_monotonicity_split() {
        let cq = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        assert_eq!(QueryMode::of(&cq), QueryMode::Monotone);
        assert!(QueryMode::of(&cq).degradable());
        let neg = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        assert_eq!(QueryMode::of(&neg), QueryMode::NonMonotone);
        assert!(!QueryMode::of(&neg).degradable());
    }

    #[test]
    fn certificate_coverage_roundtrip() {
        let c = Certificate {
            missing_nodes: vec![2],
            missing_facts: 5,
            coverage: 0.75,
            as_of_clock: 90,
        };
        assert!(!c.is_complete());
        assert!(Certificate::complete(3).is_complete());
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"coverage\":0.75"));
    }

    #[test]
    fn forged_overclaiming_certificate_is_rejected() {
        // The forgery: 5 of 20 facts are gone, but the certificate
        // claims full coverage. Trusting the stored field would accept
        // it; the validated derivation does not.
        let forged = Certificate {
            missing_nodes: vec![2],
            missing_facts: 5,
            coverage: 1.0,
            as_of_clock: 90,
        };
        assert!(forged.validate(20).is_err());
        assert!(!forged.is_full_coverage(20));

        // Honest loss certificates validate and report true coverage.
        let honest = Certificate::for_loss(vec![2], 5, 20, 90);
        assert_eq!(honest.validate(20).unwrap(), 0.75);
        assert!(!honest.is_full_coverage(20));
        assert!(Certificate::complete(3).is_full_coverage(20));
        assert!(Certificate::for_loss(vec![], 0, 0, 0).is_full_coverage(0));
    }

    #[test]
    fn malformed_coverages_are_rejected() {
        let mut c = Certificate::for_loss(vec![1], 5, 20, 0);
        c.coverage = f64::NAN;
        assert!(c.validate(20).is_err());
        c.coverage = f64::INFINITY;
        assert!(c.validate(20).is_err());
        c.coverage = -0.25;
        assert!(c.validate(20).is_err());
        c.coverage = 1.5;
        assert!(c.validate(20).is_err());
        // More missing than the input holds.
        let c = Certificate::for_loss(vec![1], 30, 20, 0);
        assert!(c.validate(20).is_err());
        // Missing facts without a named missing node.
        let c = Certificate::for_loss(vec![], 5, 20, 0);
        assert!(c.validate(20).is_err());
        // Stored coverage quietly nudged away from the derivation.
        let mut c = Certificate::for_loss(vec![1], 5, 20, 0);
        c.coverage = 0.80;
        assert!(c.validate(20).is_err());
    }

    #[test]
    fn degraded_accessors() {
        let inst = Instance::new();
        assert!(Degraded::Exact(inst.clone()).answer().is_some());
        assert!(Degraded::Exact(inst.clone()).certificate().is_none());
        let refused = Degraded::Refused {
            reason: "shard 1 lost".into(),
            certificate: Certificate::complete(0),
        };
        assert!(refused.answer().is_none());
        assert!(refused.certificate().is_some());
        let partial = Degraded::Partial {
            answer: inst,
            certificate: Certificate::complete(0),
        };
        assert!(!partial.is_exact());
        assert!(partial.answer().is_some());
    }
}
