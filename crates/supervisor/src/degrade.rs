//! Graceful degradation: certified partial answers, or a principled
//! refusal.
//!
//! When recovery is impossible within budget — no live survivor to adopt
//! a dead node's shard, or the heal allowance is spent — the supervisor
//! does not pretend. What it can still promise depends on the CALM
//! split:
//!
//! * **Monotone (F0) queries** are closed under shrinking input: every
//!   fact derived from the surviving shards is in the true answer, so
//!   the run's output is a *sound partial answer*. The supervisor
//!   returns it together with a [`Certificate`] naming the missing
//!   shards and the input coverage — a subset guarantee, machine-checked
//!   by the property tests.
//! * **Non-monotone queries** enjoy no such closure: an answer computed
//!   from a subset of the input can contain facts that the full input
//!   *retracts* (the open-triangle query closes triangles it cannot
//!   see). Returning anything would be unsound, so the supervisor
//!   [refuses][Degraded::Refused], reporting exactly why.
//!
//! This is the CALM theorem operationalized as a failure-mode contract:
//! monotonicity is not just coordination-freeness, it is *degradability*.

use parlog_relal::instance::Instance;
use parlog_relal::query::ConjunctiveQuery;

/// Whether a query's answers survive input shrinkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum QueryMode {
    /// Monotone: every answer over a subset of the input is an answer
    /// over the full input — degradation to a certified subset is sound.
    Monotone,
    /// Non-monotone: subset answers may be wrong — degradation must
    /// refuse.
    NonMonotone,
}

impl QueryMode {
    /// Classify a conjunctive query syntactically: CQs without negation
    /// are monotone; a negated atom breaks monotonicity.
    pub fn of(q: &ConjunctiveQuery) -> QueryMode {
        if q.negated.is_empty() {
            QueryMode::Monotone
        } else {
            QueryMode::NonMonotone
        }
    }

    /// Is degradation to a partial answer sound for this mode?
    pub fn degradable(self) -> bool {
        matches!(self, QueryMode::Monotone)
    }
}

/// The staleness/coverage certificate attached to a degraded answer (or
/// to a refusal): which shards are missing and how much input the
/// answer is computed from.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Certificate {
    /// Nodes whose shards are unrepresented: crashed, unhealed.
    pub missing_nodes: Vec<usize>,
    /// Facts lost with those shards.
    pub missing_facts: usize,
    /// Fraction of the input the answer covers, in `[0, 1]`:
    /// `1 − missing_facts / total_facts`.
    pub coverage: f64,
    /// Virtual-clock time the certificate was issued — the answer is
    /// complete w.r.t. everything delivered up to here.
    pub as_of_clock: usize,
}

impl Certificate {
    /// A full-coverage certificate (nothing missing) at `clock`.
    pub fn complete(clock: usize) -> Certificate {
        Certificate {
            missing_nodes: Vec::new(),
            missing_facts: 0,
            coverage: 1.0,
            as_of_clock: clock,
        }
    }

    /// Does this certificate claim full input coverage?
    pub fn is_complete(&self) -> bool {
        self.missing_nodes.is_empty()
    }
}

/// The supervisor's verdict on a run's answer.
#[derive(Debug, Clone)]
pub enum Degraded {
    /// Every shard is represented (directly or via a heal): the answer
    /// is the run's full output.
    Exact(Instance),
    /// Shards are missing but the query is monotone: a sound partial
    /// answer — a subset of the true answer — with its certificate.
    Partial {
        /// The (sound, possibly incomplete) answer.
        answer: Instance,
        /// What is missing and how much is covered.
        certificate: Certificate,
    },
    /// Shards are missing and the query is non-monotone: no sound answer
    /// exists, so none is given.
    Refused {
        /// Why the answer is withheld.
        reason: String,
        /// What was missing when the refusal was issued.
        certificate: Certificate,
    },
}

impl Degraded {
    /// The answer, if one was (soundly) produced.
    pub fn answer(&self) -> Option<&Instance> {
        match self {
            Degraded::Exact(a) => Some(a),
            Degraded::Partial { answer, .. } => Some(answer),
            Degraded::Refused { .. } => None,
        }
    }

    /// Was the run healed to full coverage?
    pub fn is_exact(&self) -> bool {
        matches!(self, Degraded::Exact(_))
    }

    /// The certificate, when the run degraded (partial or refused).
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Degraded::Exact(_) => None,
            Degraded::Partial { certificate, .. } | Degraded::Refused { certificate, .. } => {
                Some(certificate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::parser::parse_query;

    #[test]
    fn syntactic_monotonicity_split() {
        let cq = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        assert_eq!(QueryMode::of(&cq), QueryMode::Monotone);
        assert!(QueryMode::of(&cq).degradable());
        let neg = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        assert_eq!(QueryMode::of(&neg), QueryMode::NonMonotone);
        assert!(!QueryMode::of(&neg).degradable());
    }

    #[test]
    fn certificate_coverage_roundtrip() {
        let c = Certificate {
            missing_nodes: vec![2],
            missing_facts: 5,
            coverage: 0.75,
            as_of_clock: 90,
        };
        assert!(!c.is_complete());
        assert!(Certificate::complete(3).is_complete());
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"coverage\":0.75"));
    }

    #[test]
    fn degraded_accessors() {
        let inst = Instance::new();
        assert!(Degraded::Exact(inst.clone()).answer().is_some());
        assert!(Degraded::Exact(inst.clone()).certificate().is_none());
        let refused = Degraded::Refused {
            reason: "shard 1 lost".into(),
            certificate: Certificate::complete(0),
        };
        assert!(refused.answer().is_none());
        assert!(refused.certificate().is_some());
        let partial = Degraded::Partial {
            answer: inst,
            certificate: Certificate::complete(0),
        };
        assert!(!partial.is_exact());
        assert!(partial.answer().is_some());
    }
}
