//! φ-accrual failure detection over the virtual clock.
//!
//! Classic timeout detectors emit a binary verdict; the accrual detector
//! (Hayashibara et al.) instead outputs a *suspicion level* φ that grows
//! continuously the longer a node stays silent, leaving the
//! action threshold to the supervisor. We use the exponential
//! inter-arrival model: if heartbeats from a node arrive with mean
//! spacing `μ`, the probability that a live node is silent for `t` ticks
//! is `exp(−t/μ)`, so
//!
//! ```text
//! φ(t) = −log₁₀ P(silent ≥ t) = (t / μ) · log₁₀ e
//! ```
//!
//! A node is *suspected* once `φ ≥ threshold`: threshold 1 tolerates
//! ~2.3 mean intervals of silence, 3 tolerates ~6.9, each unit buying a
//! 10× lower false-positive probability under the model. All time is the
//! simulator's virtual clock — the detector is deterministic and
//! replayable like everything else in the workspace.

/// `log₁₀ e`, the slope of φ per mean-interval of silence.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Accrual failure detector for `n` nodes.
#[derive(Debug, Clone)]
pub struct PhiDetector {
    threshold: f64,
    /// Clock of the last heartbeat arrival per node.
    last: Vec<Option<usize>>,
    /// Smoothed mean inter-arrival time per node (EWMA).
    mean: Vec<f64>,
    /// Inter-arrival samples seen per node.
    samples: Vec<usize>,
    /// Nodes confirmed dead — monitoring stops, φ pinned to ∞.
    dead: Vec<bool>,
}

impl PhiDetector {
    /// A detector for `n` nodes that suspects at `φ ≥ threshold`, with
    /// the inter-arrival mean seeded at `expected_interval` (refined by
    /// observation as heartbeats arrive).
    pub fn new(n: usize, threshold: f64, expected_interval: usize) -> PhiDetector {
        assert!(
            threshold > 0.0,
            "a non-positive threshold suspects everyone"
        );
        assert!(expected_interval > 0, "heartbeats need a positive period");
        PhiDetector {
            threshold,
            last: vec![None; n],
            mean: vec![expected_interval as f64; n],
            samples: vec![0; n],
            dead: vec![false; n],
        }
    }

    /// Number of monitored nodes.
    pub fn n(&self) -> usize {
        self.last.len()
    }

    /// Record a heartbeat from `node` at clock `now`. Clears any current
    /// suspicion of the node (its φ drops back to 0).
    pub fn arrival(&mut self, node: usize, now: usize) {
        if self.dead[node] {
            return;
        }
        if let Some(prev) = self.last[node] {
            let dt = now.saturating_sub(prev).max(1) as f64;
            // EWMA with a 1/4 gain: adapts to drift without letting one
            // delayed heartbeat inflate the window. The seeded
            // `expected_interval` acts as the zeroth sample — replacing
            // it outright with the first observed gap let one early,
            // clamped-tiny inter-arrival collapse the mean and raise a
            // cold-start false suspicion at the very next probe.
            self.mean[node] = 0.75 * self.mean[node] + 0.25 * dt;
            self.samples[node] += 1;
        }
        self.last[node] = Some(now);
    }

    /// The suspicion level of `node` at clock `now`: 0 right after a
    /// heartbeat, +`log₁₀e` per mean interval of silence, ∞ once the node
    /// is marked dead.
    pub fn phi(&self, node: usize, now: usize) -> f64 {
        if self.dead[node] {
            return f64::INFINITY;
        }
        match self.last[node] {
            None => 0.0, // nothing observed yet: no basis for suspicion
            Some(t) => {
                let elapsed = now.saturating_sub(t) as f64;
                // The mean is seeded positive and every blend keeps it
                // positive, but floor the divisor anyway so a degenerate
                // state yields a finite (huge) φ instead of NaN/∞.
                elapsed / self.mean[node].max(f64::EPSILON) * LOG10_E
            }
        }
    }

    /// Nodes whose suspicion level crosses the threshold at `now`,
    /// excluding those already confirmed dead.
    pub fn suspects(&self, now: usize) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| !self.dead[i] && self.phi(i, now) >= self.threshold)
            .collect()
    }

    /// A suspicion turned out false (the node answered a confirm probe):
    /// treat the answer as an arrival, dropping φ back to 0.
    pub fn clear(&mut self, node: usize, now: usize) {
        self.arrival(node, now);
    }

    /// Confirm `node` dead: stop monitoring it (φ pinned to ∞, never
    /// listed as a new suspect again).
    pub fn mark_dead(&mut self, node: usize) {
        self.dead[node] = true;
    }

    /// Has `node` been confirmed dead?
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_detector_suspects_nobody() {
        let det = PhiDetector::new(4, 3.0, 8);
        assert!(det.suspects(1000).is_empty());
        assert_eq!(det.phi(0, 1000), 0.0);
    }

    #[test]
    fn regular_heartbeats_keep_phi_low() {
        let mut det = PhiDetector::new(2, 3.0, 8);
        for k in 0..50 {
            det.arrival(0, k * 8);
            det.arrival(1, k * 8);
            assert!(det.suspects(k * 8 + 8).is_empty(), "tick {k}");
        }
        // One period of silence: φ ≈ log10(e) ≈ 0.43, far below 3.
        assert!(det.phi(0, 50 * 8) < 1.0);
    }

    #[test]
    fn silence_accrues_past_the_threshold() {
        let mut det = PhiDetector::new(2, 3.0, 8);
        for k in 0..10 {
            det.arrival(0, k * 8);
            det.arrival(1, k * 8);
        }
        let crash = 9 * 8;
        // Node 0 goes silent; node 1 keeps beating.
        let mut detected_at = None;
        for k in 10..40 {
            let now = k * 8;
            det.arrival(1, now);
            if det.suspects(now) == vec![0] {
                detected_at = Some(now);
                break;
            }
        }
        let t = detected_at.expect("silence must eventually cross φ = 3");
        // φ = 3 at elapsed = 3·ln10·μ ≈ 6.9 intervals ≈ 56 ticks.
        let latency = t - crash;
        assert!((48..=72).contains(&latency), "latency {latency}");
        assert!(det.suspects(t).contains(&0));
        assert!(!det.suspects(t).contains(&1), "live node never suspected");
    }

    #[test]
    fn clear_resets_suspicion_and_mark_dead_pins_it() {
        let mut det = PhiDetector::new(2, 1.0, 4);
        det.arrival(0, 0);
        assert!(det.phi(0, 100) > 1.0);
        det.clear(0, 100);
        assert_eq!(det.phi(0, 100), 0.0);
        det.mark_dead(1);
        assert!(det.phi(1, 0).is_infinite());
        assert!(det.suspects(10_000).is_empty() || det.suspects(10_000) == vec![0]);
        assert!(!det.suspects(10_000).contains(&1));
    }

    #[test]
    fn one_tight_first_gap_does_not_trigger_cold_start_suspicion() {
        // Regression: the first observed inter-arrival used to *replace*
        // the seeded mean. Two back-to-back startup heartbeats (dt
        // clamped to 1) then collapsed μ to 1, so an 8-tick-cadence node
        // read φ ≈ 3.5 one period later — a false suspicion before the
        // detector had any real evidence. With the seed blended as the
        // zeroth sample, μ stays near 8·0.75 + 1·0.25 = 6.25 and φ stays
        // well under threshold.
        let mut det = PhiDetector::new(1, 2.0, 8);
        det.arrival(0, 0);
        det.arrival(0, 1); // startup burst: dt = 1
        assert!(
            det.phi(0, 9) < 2.0,
            "one period after the burst, φ = {} must stay sub-threshold",
            det.phi(0, 9)
        );
        assert!(det.suspects(9).is_empty());
    }

    #[test]
    fn phi_is_always_finite_for_live_nodes() {
        let mut det = PhiDetector::new(1, 2.0, 1);
        det.arrival(0, 0);
        for now in [0, 1, 1_000_000] {
            assert!(det.phi(0, now).is_finite());
        }
    }

    #[test]
    fn mean_adapts_to_observed_cadence() {
        // Seeded at 100 but heartbeats actually arrive every 4 ticks: the
        // EWMA converges and detection tightens accordingly.
        let mut det = PhiDetector::new(1, 3.0, 100);
        for k in 0..60 {
            det.arrival(0, k * 4);
        }
        let last = 59 * 4;
        assert!(
            det.phi(0, last + 40) > 3.0,
            "40 ticks ≈ 10 observed periods"
        );
    }
}
