//! Crash recovery on the MPC substrate: HyperCube shard re-replication.
//!
//! A HyperCube server's working set is its grid cell — the facts hashed
//! to its coordinates. When the server is lost after the communication
//! phase, the cell is gone from volatile memory, but the cell is
//! *reconstructible*: routing is deterministic, so the supervisor can
//! re-replicate the exact shard to a survivor, which then computes the
//! dead server's task on top of its own. Correctness is preserved
//! because strong saturation is per-cell: every valuation that met at
//! the dead server's coordinates now meets at the survivor, and local
//! join evaluation is sound on any subset of the real input, so the
//! union over survivors equals the fault-free output.
//!
//! The *cost* of the heal is the theory's own quantity: the adopted
//! shard is one server's load, which the Shares LP bounds by
//! `O(m / p^{1/τ*})` with `τ*` the optimal fractional edge packing
//! (Section 3.1). [`heal_hypercube_crash`] measures the adopted load and
//! checks it against that bound — recovery costs one unit of the
//! algorithm's per-server load, not a full recomputation.

use parlog_mpc::cluster::Cluster;
use parlog_mpc::hypercube::HypercubeAlgorithm;
use parlog_mpc::partition::{seed_cluster, InitialPartition};
use parlog_relal::eval::eval_query;
use parlog_relal::instance::Instance;
use parlog_relal::packing::hypercube_load_exponent;
use parlog_relal::query::ConjunctiveQuery;
use parlog_relal::simplex::LpError;

/// Why a requested heal could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealError {
    /// The query has no fractional-cover LP solution (no shares to
    /// build the grid from).
    Lp(LpError),
    /// The cluster has no survivor to adopt the shard — healing a
    /// 1-server (or all-dead) cluster is a refusal, not a panic.
    NoSurvivor {
        /// Servers the algorithm actually addressed.
        p_eff: usize,
    },
    /// The crashed-server index is outside the effective grid — the
    /// caller named a server that does not exist.
    DeadOutOfRange {
        /// The requested crash index.
        dead: usize,
        /// Servers the algorithm actually addressed.
        p_eff: usize,
    },
}

impl std::fmt::Display for HealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealError::Lp(e) => write!(f, "no shares to heal with: {e:?}"),
            HealError::NoSurvivor { p_eff } => {
                write!(f, "healing needs at least one survivor (p_eff = {p_eff})")
            }
            HealError::DeadOutOfRange { dead, p_eff } => {
                write!(f, "crashed server {dead} out of range (p_eff = {p_eff})")
            }
        }
    }
}

impl std::error::Error for HealError {}

impl From<LpError> for HealError {
    fn from(e: LpError) -> HealError {
        HealError::Lp(e)
    }
}

/// What one HyperCube shard re-replication did and cost.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MpcHealReport {
    /// Servers the algorithm actually addressed (shares may round `p`
    /// down).
    pub p: usize,
    /// Input size.
    pub m: usize,
    /// The crashed server.
    pub dead: usize,
    /// The survivor that adopted the shard (the least-loaded one).
    pub survivor: usize,
    /// Facts re-replicated — the extra load the heal placed on the
    /// survivor.
    pub extra_load: usize,
    /// The fault-free run's maximum per-server load, for comparison.
    pub fault_free_max_load: usize,
    /// `1/τ*` from the optimal fractional edge packing.
    pub load_exponent: f64,
    /// The theoretical per-server load `m / p^{1/τ*}`.
    pub predicted_load: f64,
    /// `extra_load ≤ slack · predicted_load + 1` — the heal stayed
    /// within the one-server-load bound.
    pub within_bound: bool,
    /// The healed union over survivors equals the fault-free output.
    pub output_matches: bool,
}

/// Crash server `dead` after the HyperCube communication phase of `q`
/// over `db` on (up to) `p` servers, re-replicate its shard to the
/// least-loaded survivor and recompute. `slack` is the constant allowed
/// over the `m/p^{1/τ*}` bound (hash imbalance on finite data; 2–3 is
/// ample for skew-free inputs).
///
/// Returns [`HealError::Lp`] when the query has no fractional-cover LP
/// solution (no shares to build the grid from),
/// [`HealError::NoSurvivor`] when the effective grid has a single
/// server (nobody left to adopt the shard), and
/// [`HealError::DeadOutOfRange`] when `dead` names a server outside the
/// effective grid — shares may round `p` down, and silently wrapping
/// the index healed a *different* server than the caller asked about.
pub fn heal_hypercube_crash(
    q: &ConjunctiveQuery,
    db: &Instance,
    p: usize,
    dead: usize,
    slack: f64,
) -> Result<MpcHealReport, HealError> {
    let algo = HypercubeAlgorithm::new(q, p)?;
    let p_eff = algo.servers();
    if p_eff <= 1 {
        return Err(HealError::NoSurvivor { p_eff });
    }
    if dead >= p_eff {
        return Err(HealError::DeadOutOfRange { dead, p_eff });
    }
    // The fault-free baseline: output and loads.
    let clean = algo.run(db, 0);
    // The crashed run: same distribution, then the dead server's cell is
    // re-replicated to the least-loaded survivor before computation.
    let mut cluster = Cluster::new(p_eff);
    seed_cluster(&mut cluster, db, InitialPartition::RoundRobin);
    cluster.communicate(|f| algo.destinations(f));
    let shard = cluster.local(dead).clone();
    let survivor = (0..p_eff)
        .filter(|&s| s != dead)
        .min_by_key(|&s| cluster.rounds()[0].received[s])
        .ok_or(HealError::NoSurvivor { p_eff })?;
    cluster.local_mut(survivor).extend_from(&shard);
    let mut healed_output = Instance::new();
    for s in (0..p_eff).filter(|&s| s != dead) {
        healed_output.extend_from(&eval_query(q, cluster.local(s)));
    }
    let load_exponent = hypercube_load_exponent(q)?;
    let m = db.len();
    let predicted_load = m as f64 / (p_eff as f64).powf(load_exponent);
    Ok(MpcHealReport {
        p: p_eff,
        m,
        dead,
        survivor,
        extra_load: shard.len(),
        fault_free_max_load: clean.stats.max_load,
        load_exponent,
        predicted_load,
        within_bound: (shard.len() as f64) <= slack * predicted_load + 1.0,
        output_matches: healed_output == clean.output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_mpc::datagen;
    use parlog_relal::parser::parse_query;

    fn triangle() -> ConjunctiveQuery {
        parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap()
    }

    #[test]
    fn skew_free_triangle_heal_stays_within_the_packing_bound() {
        let q = triangle();
        let mut db = datagen::matching_relation("R", 600, 0);
        db.extend_from(&datagen::matching_relation("S", 600, 2000));
        db.extend_from(&datagen::matching_relation("T", 600, 4000));
        let r = heal_hypercube_crash(&q, &db, 27, 5, 3.0).unwrap();
        assert_eq!(r.p, 27);
        assert!(r.output_matches, "healed union must equal the clean output");
        assert!((r.load_exponent - 2.0 / 3.0).abs() < 1e-9, "τ* = 3/2");
        assert!(
            r.within_bound,
            "extra load {} vs predicted {:.1}",
            r.extra_load, r.predicted_load
        );
        assert!(r.extra_load > 0, "the dead cell was not empty");
        assert_ne!(r.survivor, r.dead);
    }

    #[test]
    fn every_crash_position_heals_correctly_on_real_data() {
        let q = triangle();
        let db = datagen::triangle_db(120, 30, 7);
        for dead in 0..8 {
            let r = heal_hypercube_crash(&q, &db, 8, dead, 3.0).unwrap();
            assert!(r.output_matches, "dead server {dead}");
        }
    }

    #[test]
    fn one_server_cluster_refuses_to_heal_instead_of_panicking() {
        // A single-variable query on p = 1 leaves nobody to adopt the
        // shard: the old code hit `assert!(p_eff > 1)`.
        let q = parse_query("H(x) <- R(x)").unwrap();
        let db = datagen::matching_relation("R", 10, 0);
        let err = heal_hypercube_crash(&q, &db, 1, 0, 3.0).unwrap_err();
        assert_eq!(err, HealError::NoSurvivor { p_eff: 1 });
        assert!(err.to_string().contains("survivor"));
    }

    #[test]
    fn dead_index_outside_the_effective_grid_is_an_error_not_a_wrap() {
        // Triangle shares on p = 8 address exactly 8 servers; asking
        // about server 8 used to silently wrap to server 0 and report a
        // heal of the wrong cell.
        let q = triangle();
        let db = datagen::triangle_db(60, 20, 3);
        let err = heal_hypercube_crash(&q, &db, 8, 8, 3.0).unwrap_err();
        assert_eq!(err, HealError::DeadOutOfRange { dead: 8, p_eff: 8 });
    }

    #[test]
    fn heal_cost_is_one_server_load_not_a_recomputation() {
        let q = triangle();
        let mut db = datagen::matching_relation("R", 400, 0);
        db.extend_from(&datagen::matching_relation("S", 400, 2000));
        db.extend_from(&datagen::matching_relation("T", 400, 4000));
        let r = heal_hypercube_crash(&q, &db, 8, 1, 3.0).unwrap();
        // Re-replication moves ~max_load facts, far below m.
        assert!(r.extra_load <= 3 * r.fault_free_max_load);
        assert!(r.extra_load < r.m / 2);
    }
}
