//! # `parlog-supervisor` — the control plane above both substrates
//!
//! The fault-injection layer (`parlog-faults`, PR 1) established *what*
//! each fault class costs the CALM strategies: within-model faults are
//! absorbed, loss and crashes cost completeness but never soundness.
//! This crate adds the layer a real deployment would run on top — the
//! part of the system that *notices* faults and *does something*:
//!
//! * [`detector`] — a φ-accrual failure detector over the virtual
//!   clock: heartbeat probes accrue a continuous suspicion level
//!   instead of a binary timeout, deterministic and replayable by seed.
//! * [`retry`] — per-message retry budgets: the capped-backoff-with-
//!   jitter retransmit policy bounded by a *deadline*, converting a
//!   clock budget into an attempt budget.
//! * [`mod@supervise`] — the supervision loop for transducer networks:
//!   probe, suspect, confirm, then **heal** a dead node by
//!   re-replicating its durable shard to a survivor
//!   (`SimRun::adopt_shard`), all interleaved with the ordinary
//!   scheduler.
//! * [`heal`] — the MPC-side heal: a crashed HyperCube server's grid
//!   cell is re-replicated to the least-loaded survivor, and the extra
//!   load is checked against the theory's own `O(m/p^{1/τ*})`
//!   per-server bound — recovery costs one server-load, not a
//!   recomputation.
//! * [`mod@verify`] — the Byzantine control loop: rounds commit blind,
//!   the trusted checker of `parlog-verify` audits committed answers on
//!   a cadence, failed certificates quarantine the lying server with a
//!   measured rounds-to-quarantine latency, and rollback + replay heals
//!   the tainted rounds.
//! * [`partition`] — crash-vs-partition discrimination: φ suspicion is
//!   cross-checked against an indirect-reachability probe matrix, so a
//!   partitioned-but-alive node's shard is never re-replicated
//!   (split-brain fenced off), and every heal is quorum-gated — a
//!   monitor that cannot account for a strict majority blocks instead
//!   of diverging.
//! * [`replica`] — read-replica catch-up for the serving layer: delta
//!   replay against a primary writer's bounded log, falling back to
//!   full state adoption (the `adopt_shard` move) when the log has
//!   truncated, republished through the replica's own snapshot store.
//! * [`degrade`] — what happens when recovery is impossible within
//!   budget: monotone queries return a *certified sound partial answer*
//!   (a subset of the truth, with a coverage certificate naming the
//!   missing shards); non-monotone queries refuse, because a subset
//!   answer could contain retracted facts. The CALM split, restated as
//!   a failure-mode contract: monotone ⇒ degradable.
//!
//! Speculative re-execution of straggler tasks (MapReduce backup tasks,
//! first-finisher-wins) lives with the round barrier it optimizes:
//! `parlog_mpc::cluster::Cluster::with_speculation`, policy in
//! `parlog_faults::SpeculationPolicy`. Experiment E19 exercises the
//! whole stack end to end.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod degrade;
pub mod detector;
pub mod heal;
pub mod partition;
pub mod replica;
pub mod retry;
pub mod supervise;
pub mod verify;

pub use degrade::{Certificate, Degraded, QueryMode, RefusalReason};
pub use detector::PhiDetector;
pub use heal::{heal_hypercube_crash, HealError, MpcHealReport};
pub use partition::{
    accounted_nodes, classify_silence, has_quorum, round_trip_open, SilenceVerdict,
};
pub use replica::{CatchUp, ReadReplica};
pub use retry::DeadlineRetry;
pub use supervise::{
    supervise, supervise_traced, Detection, SupervisedRun, SupervisorConfig, SupervisorReport,
};
pub use verify::{
    run_verified_rounds, run_verified_rounds_cq, ByzantineDetection, VerifiedRunReport,
    VerifyPolicy,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::degrade::{Certificate, Degraded, QueryMode, RefusalReason};
    pub use crate::detector::PhiDetector;
    pub use crate::heal::{heal_hypercube_crash, HealError, MpcHealReport};
    pub use crate::partition::{
        accounted_nodes, classify_silence, has_quorum, round_trip_open, SilenceVerdict,
    };
    pub use crate::replica::{CatchUp, ReadReplica};
    pub use crate::retry::DeadlineRetry;
    pub use crate::supervise::{
        supervise, supervise_traced, Detection, SupervisedRun, SupervisorConfig, SupervisorReport,
    };
    pub use crate::verify::{
        run_verified_rounds, run_verified_rounds_cq, ByzantineDetection, VerifiedRunReport,
        VerifyPolicy,
    };
}
