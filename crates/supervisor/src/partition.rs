//! Crash-vs-partition discrimination and quorum accounting.
//!
//! A φ-accrual detector sees only *silence* — and silence has two very
//! different causes. A **crashed** node is gone: its shard must be
//! re-replicated to a survivor or the answer degrades. A
//! **partitioned-but-alive** node is fine: its messages (and its probe
//! responses) are held behind a severed link and will flush on heal.
//! Treating the second like the first is the classic split-brain
//! mistake: the supervisor re-replicates a shard whose original owner
//! is still running, two nodes now own it, and after the heal the
//! system has diverged.
//!
//! This module supplies the supervisor's cross-check. The φ suspicion
//! is confronted with an **indirect-reachability probe matrix**: which
//! nodes can the supervisor's home node still exchange messages with,
//! routing over any path the [`PartitionPlan`] leaves open (multi-hop,
//! both directions — an asymmetric one-way severance also blocks the
//! round trip)? The verdicts ([`classify_silence`]):
//!
//! * the node answers a (possibly relayed) probe → **false suspicion**;
//! * the network cannot explain the silence — the round trip is open —
//!   and the node stays silent → **dead**: heal is safe;
//! * the round trip is severed → the silence proves nothing. The node
//!   is **unaccountable**: it may be alive on the other side, so the
//!   heal is *fenced off* ([`FaultEventKind::SplitBrainAverted`] when
//!   it is in fact alive).
//!
//! Heals are additionally **quorum-gated** ([`has_quorum`]): a
//! supervisor that cannot account for a strict majority of the cluster
//! may itself be the minority side of a split, and a minority must
//! block rather than act — otherwise both sides heal "the other side's
//! crash" and every shard ends up double-owned. Accounting counts
//! round-trip network reachability, not liveness: a crashed node whose
//! links are open is *accounted for* (its silence is evidence), while a
//! partitioned node is not (its silence is noise).
//!
//! [`FaultEventKind::SplitBrainAverted`]: parlog_trace::FaultEventKind::SplitBrainAverted

use parlog_faults::PartitionPlan;

/// Can `a` and `b` exchange a message at `clock`, routing over any
/// multi-hop path the plan leaves open, in *both* directions? With no
/// plan installed the network is whole and the answer is always yes.
pub fn round_trip_open(
    plan: Option<&PartitionPlan>,
    clock: usize,
    a: usize,
    b: usize,
    n: usize,
) -> bool {
    match plan {
        None => true,
        Some(p) => {
            p.reachable_from(clock, a, n).contains(&b) && p.reachable_from(clock, b, n).contains(&a)
        }
    }
}

/// The nodes `home` can *account for* at `clock`: itself plus every
/// node with an open round trip. Liveness is deliberately ignored — a
/// crashed node with open links is accountable (probing it yields
/// evidence), a partitioned node is not.
pub fn accounted_nodes(
    plan: Option<&PartitionPlan>,
    clock: usize,
    home: usize,
    n: usize,
) -> Vec<usize> {
    (0..n)
        .filter(|&v| v == home || round_trip_open(plan, clock, home, v, n))
        .collect()
}

/// Does `home` account for a strict majority of the cluster at `clock`?
/// The gate every heal (and every non-monotone commit) must pass: a
/// minority side blocks instead of acting.
pub fn has_quorum(plan: Option<&PartitionPlan>, clock: usize, home: usize, n: usize) -> bool {
    2 * accounted_nodes(plan, clock, home, n).len() > n
}

/// What a silent, φ-suspected node's silence actually means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SilenceVerdict {
    /// The round trip is open and the node still answers: the suspicion
    /// was a false positive (slow, not dead).
    Alive,
    /// The round trip is open, so the network cannot explain the
    /// silence — the node is dead. Healing its shard is safe.
    Dead,
    /// The round trip is severed: the silence is explained by the
    /// partition and proves nothing about the node. The heal must be
    /// fenced off — the node may be alive on the other side.
    Unaccountable,
}

/// Classify a suspected node's silence by cross-checking the suspicion
/// against the reachability matrix. `answers` is the ground observation
/// of the confirm probe: whether the node responded (which it can only
/// do when it is up *and* the round trip is open).
pub fn classify_silence(
    plan: Option<&PartitionPlan>,
    clock: usize,
    home: usize,
    node: usize,
    n: usize,
    answers: bool,
) -> SilenceVerdict {
    if !round_trip_open(plan, clock, home, node, n) {
        return SilenceVerdict::Unaccountable;
    }
    if answers {
        SilenceVerdict::Alive
    } else {
        SilenceVerdict::Dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_network_accounts_for_everyone() {
        assert!(round_trip_open(None, 5, 0, 3, 4));
        assert_eq!(accounted_nodes(None, 5, 1, 4), vec![0, 1, 2, 3]);
        assert!(has_quorum(None, 5, 0, 4));
        assert_eq!(
            classify_silence(None, 5, 0, 2, 4, false),
            SilenceVerdict::Dead
        );
        assert_eq!(
            classify_silence(None, 5, 0, 2, 4, true),
            SilenceVerdict::Alive
        );
    }

    #[test]
    fn symmetric_split_fences_the_other_block() {
        let plan = PartitionPlan::split(0, 100, &[3, 4]);
        // Majority side: accounts for itself, not the minority.
        assert_eq!(accounted_nodes(Some(&plan), 10, 0, 5), vec![0, 1, 2]);
        assert!(has_quorum(Some(&plan), 10, 0, 5));
        // Minority side has no quorum.
        assert_eq!(accounted_nodes(Some(&plan), 10, 3, 5), vec![3, 4]);
        assert!(!has_quorum(Some(&plan), 10, 3, 5));
        // A silent cross-block node is unaccountable — never "dead".
        assert_eq!(
            classify_silence(Some(&plan), 10, 0, 4, 5, false),
            SilenceVerdict::Unaccountable
        );
        // A silent same-block node with open links is genuinely dead.
        assert_eq!(
            classify_silence(Some(&plan), 10, 0, 1, 5, false),
            SilenceVerdict::Dead
        );
        // After the heal everyone is accountable again.
        assert_eq!(accounted_nodes(Some(&plan), 100, 0, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            classify_silence(Some(&plan), 100, 0, 4, 5, false),
            SilenceVerdict::Dead
        );
    }

    #[test]
    fn one_way_severance_blocks_the_round_trip() {
        // Only 0 → 2 is severed; 2 → 0 is open. A round trip still
        // cannot complete directly… but may route via 1 if the plan
        // leaves 0 → 1 → 2 open (one-way links sever a single edge).
        let plan = PartitionPlan::one_way(0, 100, 0, 2);
        assert!(
            round_trip_open(Some(&plan), 10, 0, 2, 3),
            "multi-hop relay via node 1 restores the round trip"
        );
        // With only two nodes there is no relay: the trip is broken.
        let plan2 = PartitionPlan::one_way(0, 100, 0, 1);
        assert!(!round_trip_open(Some(&plan2), 10, 0, 1, 2));
        assert_eq!(
            classify_silence(Some(&plan2), 10, 0, 1, 2, false),
            SilenceVerdict::Unaccountable
        );
    }
}
