//! Read-replica catch-up: the serving layer's replication path.
//!
//! A read replica is a second [`Instance`] that trails a primary
//! writer, catching up on a cadence and serving pinned snapshots of its
//! own through a local `SnapshotStore`. Catch-up has exactly the two
//! modes the rest of the control plane already uses for state transfer:
//!
//! * **Delta replay** — the common case: replay
//!   [`Instance::delta_since`] from the last applied primary epoch.
//!   Cost proportional to the writer's recent churn, independent of
//!   database size.
//! * **Full adoption** — the fallback when the bounded delta log has
//!   truncated past the replica's epoch (the replica fell too far
//!   behind, or is brand new): adopt the primary's full durable state,
//!   the same move `SimRun::adopt_shard` performs when a survivor
//!   adopts a dead node's shard ([`crate::supervise`] uses it as the
//!   heal action; here it is the bootstrap/resync action).
//!
//! Equality of replica and primary after catch-up is checkable for free
//! via the content-addressed snapshot id (`parlog_verify::snapshot_id`):
//! both sides hash to the same Merkle root exactly when they converged.

use parlog_relal::delta::DeltaOp;
use parlog_relal::instance::Instance;
use parlog_relal::snapshot::SnapshotStore;

/// How one catch-up round brought the replica current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatchUp {
    /// Nothing to do: the replica already mirrors the primary's epoch.
    AlreadyCurrent,
    /// Replayed this many delta-log entries.
    Delta {
        /// Entries applied (inserts + deletes).
        applied: usize,
    },
    /// The log had truncated past the replica's epoch: adopted the
    /// primary's full state (the `adopt_shard` move).
    FullAdopt {
        /// Facts in the adopted state.
        facts: usize,
    },
}

/// A read replica of a primary writer instance.
#[derive(Debug)]
pub struct ReadReplica {
    local: Instance,
    applied_epoch: u64,
    delta_catchups: u64,
    full_adoptions: u64,
}

impl ReadReplica {
    /// Bootstrap a replica by full adoption of the primary's state.
    pub fn adopt(primary: &Instance) -> ReadReplica {
        ReadReplica {
            local: primary.clone(),
            applied_epoch: primary.epoch(),
            delta_catchups: 0,
            full_adoptions: 1,
        }
    }

    /// Bootstrap a replica by adopting a cluster's durable shards (the
    /// multi-shard form of [`ReadReplica::adopt`]): the union of the
    /// per-server shard instances, exactly the state a survivor
    /// re-derives shard by shard via `SimRun::adopt_shard`.
    pub fn adopt_shards(shards: &[Instance]) -> ReadReplica {
        let mut local = Instance::new();
        for s in shards {
            local.extend_from(s);
        }
        ReadReplica {
            local,
            applied_epoch: 0,
            delta_catchups: 0,
            full_adoptions: 1,
        }
    }

    /// The replica's local instance (serve reads from it, or hand it to
    /// a local `SnapshotStore`).
    pub fn instance(&self) -> &Instance {
        &self.local
    }

    /// The primary epoch the replica has applied through.
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch
    }

    /// Catch-up rounds that replayed deltas.
    pub fn delta_catchups(&self) -> u64 {
        self.delta_catchups
    }

    /// Catch-up rounds that fell back to full adoption (bootstrap
    /// included).
    pub fn full_adoptions(&self) -> u64 {
        self.full_adoptions
    }

    /// Bring the replica current with `primary`: delta replay when the
    /// log still covers the gap, full adoption otherwise.
    pub fn catch_up(&mut self, primary: &Instance) -> CatchUp {
        if primary.epoch() == self.applied_epoch {
            return CatchUp::AlreadyCurrent;
        }
        match primary.delta_since(self.applied_epoch) {
            Some(deltas) => {
                let applied = deltas.len();
                for e in deltas {
                    match e.op {
                        DeltaOp::Insert => {
                            self.local.insert(e.fact.clone());
                        }
                        DeltaOp::Delete => {
                            self.local.remove(&e.fact);
                        }
                    }
                }
                self.applied_epoch = primary.epoch();
                self.delta_catchups += 1;
                CatchUp::Delta { applied }
            }
            None => {
                self.local = primary.clone();
                self.applied_epoch = primary.epoch();
                self.full_adoptions += 1;
                CatchUp::FullAdopt {
                    facts: self.local.len(),
                }
            }
        }
    }

    /// Catch up against the primary `SnapshotStore`'s writer and
    /// publish the result through the replica's own `store` — the
    /// serving-layer replication round: after it returns, readers
    /// pinning from `store` see exactly the primary writer's state.
    pub fn catch_up_and_publish(
        &mut self,
        primary: &SnapshotStore,
        store: &SnapshotStore,
    ) -> CatchUp {
        let outcome = primary.with_writer(|w| self.catch_up(w));
        if outcome != CatchUp::AlreadyCurrent {
            let local = self.local.clone();
            store.mutate(move |w| {
                // Converge the replica store's writer to the replica
                // state (cheap diff via set ops on small divergence).
                let gone: Vec<_> = w.iter().filter(|f| !local.contains(f)).cloned().collect();
                for f in gone {
                    w.remove(&f);
                }
                w.extend_from(&local);
            });
            store.publish();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;

    #[test]
    fn delta_catch_up_converges() {
        let mut primary = Instance::from_facts([fact("R", &[1, 2]), fact("R", &[2, 3])]);
        let mut replica = ReadReplica::adopt(&primary);
        assert_eq!(replica.catch_up(&primary), CatchUp::AlreadyCurrent);
        primary.insert(fact("R", &[3, 4]));
        primary.remove(&fact("R", &[1, 2]));
        let outcome = replica.catch_up(&primary);
        assert_eq!(outcome, CatchUp::Delta { applied: 2 });
        assert_eq!(*replica.instance(), primary);
        assert_eq!(replica.delta_catchups(), 1);
        // Content roots agree — the free consistency check.
        assert_eq!(
            parlog_verify::snapshot::snapshot(replica.instance()),
            parlog_verify::snapshot::snapshot(&primary)
        );
    }

    #[test]
    fn truncated_log_falls_back_to_full_adoption() {
        let mut primary = Instance::from_facts([fact("R", &[0, 0])]);
        let mut replica = ReadReplica::adopt(&primary);
        // Push the bounded delta log far past its capacity so the
        // replica's epoch falls off the retained window.
        let cap = parlog_relal::delta::DEFAULT_LOG_CAPACITY;
        for k in 0..(cap as u64 + 10) {
            primary.insert(fact("R", &[k + 1, k + 1]));
        }
        let outcome = replica.catch_up(&primary);
        assert!(matches!(outcome, CatchUp::FullAdopt { facts } if facts == primary.len()));
        assert_eq!(*replica.instance(), primary);
        assert_eq!(replica.full_adoptions(), 2); // bootstrap + resync
    }

    #[test]
    fn adopt_shards_unions_durable_state() {
        let shards = vec![
            Instance::from_facts([fact("R", &[1, 2])]),
            Instance::from_facts([fact("R", &[2, 3]), fact("S", &[1, 1])]),
        ];
        let replica = ReadReplica::adopt_shards(&shards);
        assert_eq!(replica.instance().len(), 3);
        assert_eq!(replica.full_adoptions(), 1);
    }

    #[test]
    fn replica_store_serves_the_primary_state() {
        let primary = SnapshotStore::new(Instance::from_facts([fact("R", &[1, 2])]));
        let mut replica = primary.with_writer(ReadReplica::adopt);
        let store = SnapshotStore::new(replica.instance().clone());

        primary.mutate(|w| {
            w.insert(fact("R", &[5, 6]));
            w.remove(&fact("R", &[1, 2]));
        });
        primary.publish();
        let outcome = replica.catch_up_and_publish(&primary, &store);
        assert_eq!(outcome, CatchUp::Delta { applied: 2 });
        let snap = store.pin();
        assert!(snap.instance().contains(&fact("R", &[5, 6])));
        assert!(!snap.instance().contains(&fact("R", &[1, 2])));
        assert_eq!(
            primary.with_writer(parlog_verify::snapshot::snapshot),
            parlog_verify::snapshot::snapshot(snap.instance())
        );
    }
}
