//! Per-message retry under a deadline budget.
//!
//! The transducer runtime's reliable mode already retransmits with
//! capped exponential backoff and deterministic jitter
//! ([`RetransmitPolicy`]); what it lacks is a notion of *giving up on
//! time* rather than on attempts. A supervisor cares about the deadline:
//! "retry this message for at most `D` ticks, then escalate" — because
//! past `D` it will have failed the node over and healed around it, and
//! late retransmissions are pure waste.
//!
//! [`DeadlineRetry`] converts a clock budget into an attempt budget by
//! walking the *worst-case* (jitter-free upper bound) backoff schedule:
//! attempt `k` waits at most `min(base·2ᵏ, cap)`, so the cumulative
//! worst-case wait is a deterministic function of the policy, and the
//! largest `k` whose cumulative wait fits the deadline is the effective
//! retry count. The clamped policy is then installed in the fault plan as
//! usual — the runtime needs no new mechanism.

use parlog_faults::RetransmitPolicy;

/// A retransmit policy bounded by a total clock budget per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct DeadlineRetry {
    /// The underlying backoff/jitter policy.
    pub policy: RetransmitPolicy,
    /// Total virtual-clock budget a single message's retries may consume.
    pub deadline: usize,
}

impl DeadlineRetry {
    /// Bound `policy` by `deadline` ticks per message.
    pub fn new(policy: RetransmitPolicy, deadline: usize) -> DeadlineRetry {
        DeadlineRetry { policy, deadline }
    }

    /// The worst-case wait before retry attempt `k` (jitter can only
    /// shorten a wait, never lengthen it past the capped exponential).
    pub fn worst_case_wait(&self, attempt: u32) -> usize {
        let exp = (self.policy.backoff_base as u64)
            .checked_shl(attempt.min(32))
            .unwrap_or(u64::MAX);
        exp.min(self.policy.backoff_cap as u64).max(1) as usize
    }

    /// The largest number of retries whose worst-case cumulative wait
    /// fits inside the deadline (never more than the policy's own
    /// `max_retries`).
    pub fn retries_within_deadline(&self) -> u32 {
        let mut elapsed = 0usize;
        let mut k = 0u32;
        while k < self.policy.max_retries {
            let wait = self.worst_case_wait(k);
            match elapsed.checked_add(wait) {
                Some(e) if e <= self.deadline => elapsed = e,
                _ => break,
            }
            k += 1;
        }
        k
    }

    /// The policy with `max_retries` clamped so that no message's retry
    /// schedule can outlive the deadline. Backoff base, cap and jitter
    /// are untouched.
    pub fn effective_policy(&self) -> RetransmitPolicy {
        RetransmitPolicy {
            max_retries: self.retries_within_deadline(),
            ..self.policy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetransmitPolicy {
        RetransmitPolicy {
            max_retries: 16,
            backoff_base: 1,
            backoff_cap: 64,
            jitter_pct: 50,
        }
    }

    #[test]
    fn deadline_clamps_the_attempt_budget() {
        // Worst-case waits 1,2,4,8,16,… — cumulative 1,3,7,15,31.
        let r = DeadlineRetry::new(policy(), 15);
        assert_eq!(r.retries_within_deadline(), 4);
        assert_eq!(r.effective_policy().max_retries, 4);
        // One tick short of the next cumulative sum changes nothing…
        assert_eq!(
            DeadlineRetry::new(policy(), 30).retries_within_deadline(),
            4
        );
        // …and reaching it buys exactly one more attempt.
        assert_eq!(
            DeadlineRetry::new(policy(), 31).retries_within_deadline(),
            5
        );
    }

    #[test]
    fn budget_is_monotone_in_the_deadline() {
        let mut prev = 0;
        for d in 0..600 {
            let k = DeadlineRetry::new(policy(), d).retries_within_deadline();
            assert!(k >= prev, "deadline {d}");
            prev = k;
        }
        assert!(prev > 0);
    }

    #[test]
    fn never_exceeds_the_policy_cap() {
        let r = DeadlineRetry::new(RetransmitPolicy::fixed(3, 1), usize::MAX);
        assert_eq!(r.retries_within_deadline(), 3);
    }

    #[test]
    fn zero_deadline_means_no_retries() {
        let r = DeadlineRetry::new(policy(), 0);
        assert_eq!(r.retries_within_deadline(), 0);
        assert_eq!(r.effective_policy().max_retries, 0);
    }

    #[test]
    fn waits_saturate_at_the_cap() {
        let r = DeadlineRetry::new(policy(), 1_000);
        assert_eq!(r.worst_case_wait(0), 1);
        assert_eq!(r.worst_case_wait(6), 64);
        assert_eq!(r.worst_case_wait(60), 64, "cap holds past shift overflow");
    }
}
