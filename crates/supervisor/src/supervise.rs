//! The supervision loop over the transducer substrate.
//!
//! [`supervise`] drives a [`SimRun`] exactly like
//! `SimRun::run_faulty` — same scheduler, same quiescence condition, the
//! fault-free case is the same code path — but interleaves a control
//! plane:
//!
//! 1. **Probing.** Every `probe_every` virtual-clock ticks the
//!    supervisor pings every node; a live node's response is a heartbeat
//!    arrival for the [φ-accrual detector](crate::detector::PhiDetector)
//!    (responses are lost with the fault plan's drop probability, by a
//!    deterministic seeded roll — probes are as faulty as data traffic).
//! 2. **Suspicion → confirmation.** A node whose φ crosses the
//!    threshold is suspected. A confirm probe distinguishes slow from
//!    dead: a live node's answer clears the suspicion (counted as a
//!    *false suspicion*); silence from a down node converts it into a
//!    detection, with latency measured from the plan's crash step.
//! 3. **Heal.** A detected-dead node's durable shard is re-replicated to
//!    the live survivor with the smallest shard
//!    ([`SimRun::adopt_shard`]), within the configured heal allowance.
//!    Healing replays facts through set-semantics transition functions —
//!    it is idempotent and safe for the CALM (F0–F2) programs; counting
//!    barriers should not be healed this way (they refuse downstream
//!    instead).
//! 4. **Degrade.** If a dead node stays unhealed, the supervisor closes
//!    the run with a [`Degraded`] verdict: monotone queries get the
//!    sound partial answer plus a coverage [`Certificate`]; non-monotone
//!    queries are refused.
//!
//! When the network quiesces while a crash is still undetected, the
//! supervisor keeps probing on its own clock (`quiescent_probe_budget`
//! extra rounds) — failure detection must not depend on data traffic.

use crate::degrade::{Certificate, Degraded, QueryMode};
use crate::detector::PhiDetector;
use parlog_faults::{mix64, FaultPlan};
use parlog_relal::instance::Instance;
use parlog_trace::{FaultEvent, FaultEventKind, TraceEvent, TraceHandle};
use parlog_transducer::faulty::FaultStats;
use parlog_transducer::program::{Ctx, TransducerProgram};
use parlog_transducer::scheduler::{Schedule, SimRun};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tunables of the supervision loop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SupervisorConfig {
    /// Suspect a node once its φ crosses this level.
    pub phi_threshold: f64,
    /// Probe cadence in virtual-clock ticks.
    pub probe_every: usize,
    /// Extra probe rounds after quiescence while undetected-down nodes
    /// remain — the detector's own clock keeps running when the data
    /// plane goes silent.
    pub quiescent_probe_budget: usize,
    /// Heals allowed per run (0 disables healing: every crash degrades).
    pub max_heals: usize,
    /// Abandon a heal when detection came later than this many ticks
    /// after the crash — the answer would be too stale to certify fresh.
    pub heal_deadline: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            phi_threshold: 2.0,
            probe_every: 8,
            quiescent_probe_budget: 64,
            max_heals: usize::MAX,
            heal_deadline: usize::MAX,
        }
    }
}

/// One confirmed failure detection.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Detection {
    /// The dead node.
    pub node: usize,
    /// Clock of the plan's crash event.
    pub crashed_at: usize,
    /// Monitor clock at which φ crossed the threshold.
    pub detected_at: usize,
    /// `detected_at − crashed_at`.
    pub latency: usize,
    /// Whether the node's shard was re-replicated.
    pub healed: bool,
    /// The adopting survivor, when healed.
    pub healed_to: Option<usize>,
    /// Facts the survivor adopted (the heal's extra load).
    pub heal_load: usize,
}

/// What the supervisor observed and did during one run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SupervisorReport {
    /// Probe rounds issued.
    pub probes: usize,
    /// Heartbeat responses received.
    pub heartbeats_observed: usize,
    /// Responses lost to the fault plan's message loss.
    pub heartbeats_lost: usize,
    /// Times any node's φ crossed the threshold.
    pub suspicions: usize,
    /// Suspicions cleared by a confirm probe (the node was alive).
    pub false_suspicions: usize,
    /// Confirmed failures, in detection order.
    pub detections: Vec<Detection>,
    /// Shards re-replicated.
    pub heals: usize,
    /// Total facts adopted across heals.
    pub heal_load: usize,
    /// Dead nodes left unhealed (these drive degradation).
    pub unhealed: Vec<usize>,
    /// Monitor clock when the run closed.
    pub final_clock: usize,
}

impl SupervisorReport {
    /// Mean detection latency over confirmed detections.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        if self.detections.is_empty() {
            return None;
        }
        let sum: usize = self.detections.iter().map(|d| d.latency).sum();
        Some(sum as f64 / self.detections.len() as f64)
    }

    /// False suspicions per probe round (0.0 for a quiet run).
    pub fn false_positive_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_suspicions as f64 / self.probes as f64
        }
    }
}

/// The outcome of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// The answer, exact / certified-partial / refused.
    pub verdict: Degraded,
    /// The control plane's log.
    pub report: SupervisorReport,
    /// The data plane's fault tally.
    pub fault_stats: FaultStats,
}

/// Deterministic per-probe loss roll: a probe response from `node` on
/// round `probe_idx` is lost with the plan's drop probability, keyed so
/// replays reproduce the exact probe history.
fn probe_lost(plan: &FaultPlan, node: usize, probe_idx: usize) -> bool {
    if plan.drop_prob <= 0.0 {
        return false;
    }
    let key = mix64(plan.seed ^ mix64(0x9ea7_bea7 ^ ((node as u64) << 24) ^ probe_idx as u64));
    (key as f64 / u64::MAX as f64) < plan.drop_prob
}

struct Monitor<'a> {
    det: PhiDetector,
    config: &'a SupervisorConfig,
    plan: &'a FaultPlan,
    report: SupervisorReport,
    healed: Vec<bool>,
    probe_idx: usize,
    now: usize,
    trace: &'a TraceHandle,
}

impl Monitor<'_> {
    /// One probe round at monitor clock `self.now`: record responses,
    /// then evaluate and act on suspicions. Returns whether a heal
    /// produced new in-flight work.
    fn probe_and_act<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        run: &mut SimRun,
    ) -> bool {
        self.report.probes += 1;
        for node in 0..run.n() {
            if !run.health(node).is_up() {
                continue; // a down node cannot answer
            }
            if probe_lost(self.plan, node, self.probe_idx) {
                self.report.heartbeats_lost += 1;
            } else {
                self.report.heartbeats_observed += 1;
                self.det.arrival(node, self.now);
            }
        }
        self.probe_idx += 1;
        let mut did_heal = false;
        for s in self.det.suspects(self.now) {
            self.report.suspicions += 1;
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: self.now as f64,
                    kind: FaultEventKind::Suspect,
                    node: s,
                    info: (self.det.phi(s, self.now) * 1000.0) as u64,
                })
            });
            if run.health(s).is_up() {
                // Confirm probe answered: slow, not dead.
                self.report.false_suspicions += 1;
                self.det.clear(s, self.now);
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: self.now as f64,
                        kind: FaultEventKind::FalseSuspicion,
                        node: s,
                        info: 0,
                    })
                });
                continue;
            }
            self.det.mark_dead(s);
            let crashed_at = self
                .plan
                .crashes
                .iter()
                .filter(|c| c.node == s)
                .map(|c| c.at_step)
                .min()
                .unwrap_or(self.now);
            let latency = self.now.saturating_sub(crashed_at);
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: self.now as f64,
                    kind: FaultEventKind::ConfirmDead,
                    node: s,
                    info: latency as u64,
                })
            });
            let mut detection = Detection {
                node: s,
                crashed_at,
                detected_at: self.now,
                latency,
                healed: false,
                healed_to: None,
                heal_load: 0,
            };
            if self.report.heals < self.config.max_heals && latency <= self.config.heal_deadline {
                let survivor = run
                    .live_nodes()
                    .into_iter()
                    .filter(|&i| i != s)
                    .min_by_key(|&i| run.shard(i).len());
                if let Some(to) = survivor {
                    let load = run.adopt_shard(program, s, to);
                    self.report.heals += 1;
                    self.report.heal_load += load;
                    self.healed[s] = true;
                    detection.healed = true;
                    detection.healed_to = Some(to);
                    detection.heal_load = load;
                    did_heal = true;
                }
            }
            self.report.detections.push(detection);
        }
        did_heal
    }
}

/// Run `program` to quiescence under `plan` with the full supervisor
/// stack active; see the module docs for the loop's four duties.
///
/// `mode` states whether the query the program computes is monotone —
/// it decides the degradation contract when a crash cannot be healed.
pub fn supervise<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
    plan: &FaultPlan,
    mode: QueryMode,
    config: &SupervisorConfig,
) -> SupervisedRun {
    supervise_traced(
        program,
        shards,
        ctx,
        schedule,
        plan,
        mode,
        config,
        &TraceHandle::off(),
    )
}

/// [`supervise`] with an attached trace: the data plane's message-level
/// counters and crash/recovery/heal events flow to the sink through the
/// scheduler, and the control plane adds its own decision timeline —
/// `Suspect` (info = φ·1000), `FalseSuspicion`, `ConfirmDead`
/// (info = detection latency) and, at close-out, one `Degrade` or
/// `Refuse` per unhealed node (info = lost shard size).
/// `TraceHandle::off()` reproduces the untraced run exactly.
#[allow(clippy::too_many_arguments)]
pub fn supervise_traced<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
    plan: &FaultPlan,
    mode: QueryMode,
    config: &SupervisorConfig,
    trace: &TraceHandle,
) -> SupervisedRun {
    let mut run = SimRun::new(program, shards, ctx);
    run.set_trace(trace.clone());
    run.install_plan(plan);
    let seed = match schedule {
        Schedule::Random(s) => s,
        _ => 0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rr = 0usize;
    let n = run.n();
    let mut mon = Monitor {
        det: PhiDetector::new(n, config.phi_threshold, config.probe_every),
        config,
        plan,
        report: SupervisorReport::default(),
        healed: vec![false; n],
        probe_idx: 0,
        now: 0,
        trace,
    };
    let mut next_probe = 0usize;
    let budget = 10_000_000usize;
    let mut steps = 0usize;
    loop {
        loop {
            if run.clock() >= next_probe {
                mon.now = mon.now.max(run.clock());
                mon.probe_and_act(program, &mut run);
                next_probe = run.clock() + config.probe_every;
            }
            if !run.step(program, schedule, &mut rng, &mut rr) {
                break;
            }
            steps += 1;
            assert!(steps < budget, "supervised run diverged (no quiescence)");
        }
        if run.advance_clock(program) {
            continue;
        }
        let mut hb_changed = false;
        for _ in 0..n + 1 {
            if run.heartbeat_round(program) {
                hb_changed = true;
            } else {
                break;
            }
        }
        if hb_changed || !run.quiet() || run.fault_work_pending() {
            continue;
        }
        // Data plane quiescent. Keep the detector's clock running while
        // down nodes remain undetected — a crash that silences the
        // network must still be noticed.
        let mut healed_something = false;
        for _ in 0..config.quiescent_probe_budget {
            let undetected = (0..n).any(|i| !run.health(i).is_up() && !mon.det.is_dead(i));
            if !undetected {
                break;
            }
            mon.now += config.probe_every;
            if mon.probe_and_act(program, &mut run) {
                healed_something = true;
                break;
            }
        }
        if healed_something {
            next_probe = run.clock() + config.probe_every;
            continue;
        }
        break;
    }
    mon.report.final_clock = mon.now.max(run.clock());
    mon.report.unhealed = (0..n)
        .filter(|&i| !run.health(i).is_up() && !mon.healed[i])
        .collect();
    let verdict = close_out(&run, shards, mode, &mon.report, trace);
    SupervisedRun {
        verdict,
        report: mon.report,
        fault_stats: run.fault_stats(),
    }
}

/// Issue the final verdict from the run's outputs and the unhealed set.
fn close_out(
    run: &SimRun,
    shards: &[Instance],
    mode: QueryMode,
    report: &SupervisorReport,
    trace: &TraceHandle,
) -> Degraded {
    if report.unhealed.is_empty() {
        return Degraded::Exact(run.outputs());
    }
    let close_kind = if mode.degradable() {
        FaultEventKind::Degrade
    } else {
        FaultEventKind::Refuse
    };
    for &node in &report.unhealed {
        trace.emit(|| {
            TraceEvent::Fault(FaultEvent {
                vclock: report.final_clock as f64,
                kind: close_kind,
                node,
                info: shards[node].len() as u64,
            })
        });
    }
    let total: usize = shards.iter().map(Instance::len).sum();
    let missing_facts: usize = report.unhealed.iter().map(|&i| shards[i].len()).sum();
    let certificate = Certificate::for_loss(
        report.unhealed.clone(),
        missing_facts,
        total,
        report.final_clock,
    );
    debug_assert!(certificate.validate(total).is_ok());
    if mode.degradable() {
        Degraded::Partial {
            answer: run.outputs(),
            certificate,
        }
    } else {
        Degraded::Refused {
            reason: format!(
                "non-monotone query: shards of node(s) {:?} are lost and unhealed, \
                 so any answer computed from the surviving {:.0}% of the input \
                 could contain retracted facts",
                certificate.missing_nodes,
                certificate.coverage * 100.0
            ),
            certificate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::eval::eval_query;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;
    use parlog_transducer::distribution::hash_distribution;
    use parlog_transducer::prelude::{CoordinatedBroadcast, MonotoneBroadcast};

    fn setup() -> (MonotoneBroadcast, Vec<Instance>, Instance) {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])));
        let expected = eval_query(&q, &db);
        let shards = hash_distribution(&db, 4, 3);
        (MonotoneBroadcast::new(q), shards, expected)
    }

    #[test]
    fn fault_free_supervised_run_is_exact_and_unsuspicious() {
        let (p, shards, expected) = setup();
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(7),
            &FaultPlan::none(7),
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert!(out.verdict.is_exact());
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        assert_eq!(out.report.suspicions, 0, "no fault, no suspicion");
        assert_eq!(out.report.false_suspicions, 0);
        assert!(out.report.probes > 0, "the control plane did run");
        assert!(out.report.detections.is_empty());
    }

    #[test]
    fn crash_stop_is_detected_and_healed_to_the_exact_answer() {
        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert!(out.verdict.is_exact(), "heal must restore full coverage");
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        assert_eq!(out.report.heals, 1);
        assert_eq!(out.report.detections.len(), 1);
        let d = &out.report.detections[0];
        assert_eq!(d.node, 0);
        assert_eq!(d.crashed_at, 6);
        assert!(d.healed && d.healed_to.is_some() && d.healed_to != Some(0));
        assert_eq!(d.heal_load, shards[0].len());
        assert!(
            d.latency > 0 && d.latency < 40 * 8,
            "latency {} out of range",
            d.latency
        );
        assert!(out.report.unhealed.is_empty());
    }

    #[test]
    fn unhealable_monotone_crash_degrades_to_a_certified_subset() {
        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let config = SupervisorConfig {
            max_heals: 0, // heal budget spent: recovery impossible
            ..SupervisorConfig::default()
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &plan,
            QueryMode::Monotone,
            &config,
        );
        let Degraded::Partial {
            answer,
            certificate,
        } = &out.verdict
        else {
            panic!("expected a certified partial answer, got {:?}", out.verdict);
        };
        assert!(answer.is_subset_of(&expected), "partial answers stay sound");
        assert_ne!(answer, &expected, "the lost shard must cost derivations");
        assert_eq!(certificate.missing_nodes, vec![0]);
        assert_eq!(certificate.missing_facts, shards[0].len());
        assert!(certificate.coverage < 1.0 && certificate.coverage > 0.0);
        assert_eq!(out.report.unhealed, vec![0]);
    }

    #[test]
    fn unhealable_nonmonotone_crash_refuses_with_a_reason() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
        ]);
        let shards = hash_distribution(&db, 3, 2);
        let p = CoordinatedBroadcast::idempotent(q.clone());
        let plan = FaultPlan::crash_stop(1, 1, 4);
        let config = SupervisorConfig {
            max_heals: 0,
            ..SupervisorConfig::default()
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::aware(3),
            Schedule::Random(1),
            &plan,
            QueryMode::of(&q),
            &config,
        );
        let Degraded::Refused {
            reason,
            certificate,
        } = &out.verdict
        else {
            panic!("non-monotone + unhealed must refuse, got {:?}", out.verdict);
        };
        assert!(reason.contains("non-monotone"));
        assert_eq!(certificate.missing_nodes, vec![1]);
        assert!(out.verdict.answer().is_none(), "no answer is surfaced");
    }

    #[test]
    fn traced_supervision_emits_the_suspect_confirm_heal_timeline() {
        use parlog_trace::MemSink;
        use std::sync::Arc;

        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let run_traced = || {
            let sink = Arc::new(MemSink::new());
            let out = supervise_traced(
                &p,
                &shards,
                Ctx::oblivious(),
                Schedule::Random(2),
                &plan,
                QueryMode::Monotone,
                &SupervisorConfig::default(),
                &TraceHandle::to(sink.clone()),
            );
            (out, sink)
        };
        let (out, sink) = run_traced();
        assert!(out.verdict.is_exact());
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        let timeline = sink.timeline();
        let pos = |kind: FaultEventKind| {
            timeline
                .iter()
                .position(|e| e.kind == kind && e.node == 0)
                .unwrap_or_else(|| panic!("{kind:?} for node 0 missing from {timeline:?}"))
        };
        let (crash, suspect, confirm, heal) = (
            pos(FaultEventKind::Crash),
            pos(FaultEventKind::Suspect),
            pos(FaultEventKind::ConfirmDead),
            pos(FaultEventKind::Heal),
        );
        assert!(
            crash < suspect && suspect < confirm && confirm < heal,
            "lifecycle order crash→suspect→confirm→heal violated: {timeline:?}"
        );
        let confirm_ev = &timeline[confirm];
        assert_eq!(
            confirm_ev.info, out.report.detections[0].latency as u64,
            "ConfirmDead carries the detection latency"
        );
        // The control-plane decisions ride the same deterministic clock
        // as everything else: a rerun produces byte-identical JSON.
        let (_, sink2) = run_traced();
        assert_eq!(
            serde_json::to_string(&sink.report()).unwrap(),
            serde_json::to_string(&sink2.report()).unwrap()
        );
        // And the data plane's own books agree with the sink's counters.
        let ours = sink.comm();
        let theirs = out.fault_stats.as_comm_counters();
        assert_eq!(ours.dropped, theirs.dropped);
        assert_eq!(ours.retransmitted, theirs.retransmitted);
        assert_eq!(ours.acks, theirs.acks);
    }

    #[test]
    fn unhealable_traced_crash_emits_a_degrade_event() {
        use parlog_trace::MemSink;
        use std::sync::Arc;

        let (p, shards, _) = setup();
        let sink = Arc::new(MemSink::new());
        let out = supervise_traced(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &FaultPlan::crash_stop(2, 0, 6),
            QueryMode::Monotone,
            &SupervisorConfig {
                max_heals: 0,
                ..SupervisorConfig::default()
            },
            &TraceHandle::to(sink.clone()),
        );
        assert!(matches!(out.verdict, Degraded::Partial { .. }));
        let timeline = sink.timeline();
        let degrade = timeline
            .iter()
            .find(|e| e.kind == FaultEventKind::Degrade)
            .expect("unhealed node must be recorded as degraded");
        assert_eq!(degrade.node, 0);
        assert_eq!(degrade.info, shards[0].len() as u64);
        assert!(
            !timeline.iter().any(|e| e.kind == FaultEventKind::Heal),
            "no heal was allowed"
        );
    }

    #[test]
    fn supervision_is_deterministic() {
        let (p, shards, _) = setup();
        let run_once = || {
            let out = supervise(
                &p,
                &shards,
                Ctx::oblivious(),
                Schedule::Random(3),
                &FaultPlan::lossy(3, 0.3).with_retransmit(Default::default()),
                QueryMode::Monotone,
                &SupervisorConfig::default(),
            );
            (
                out.verdict.answer().cloned(),
                out.report.probes,
                out.report.suspicions,
                out.fault_stats,
            )
        };
        assert_eq!(run_once(), run_once());
    }
}
