//! The supervision loop over the transducer substrate.
//!
//! [`supervise`] drives a [`SimRun`] exactly like
//! `SimRun::run_faulty` — same scheduler, same quiescence condition, the
//! fault-free case is the same code path — but interleaves a control
//! plane:
//!
//! 1. **Probing.** Every `probe_every` virtual-clock ticks the
//!    supervisor pings every node; a live node's response is a heartbeat
//!    arrival for the [φ-accrual detector](crate::detector::PhiDetector)
//!    (responses are lost with the fault plan's drop probability, by a
//!    deterministic seeded roll — probes are as faulty as data traffic).
//! 2. **Suspicion → confirmation.** A node whose φ crosses the
//!    threshold is suspected. A confirm probe distinguishes slow from
//!    dead: a live node's answer clears the suspicion (counted as a
//!    *false suspicion*); silence from a down node converts it into a
//!    detection, with latency measured from the plan's crash step.
//! 3. **Heal.** A detected-dead node's durable shard is re-replicated to
//!    the live survivor with the smallest shard
//!    ([`SimRun::adopt_shard`]), within the configured heal allowance.
//!    Healing replays facts through set-semantics transition functions —
//!    it is idempotent and safe for the CALM (F0–F2) programs; counting
//!    barriers should not be healed this way (they refuse downstream
//!    instead).
//! 4. **Degrade.** If a dead node stays unhealed, the supervisor closes
//!    the run with a [`Degraded`] verdict: monotone queries get the
//!    sound partial answer plus a coverage [`Certificate`]; non-monotone
//!    queries are refused with a typed [`RefusalReason`].
//! 5. **Partition discipline.** φ sees only silence, and silence has two
//!    causes. Before confirming a suspect dead, the supervisor
//!    cross-checks the suspicion against the reachability matrix of the
//!    installed partition schedule ([`crate::partition`]): a suspect
//!    whose round trip to the monitor's home is severed is
//!    *unaccountable* — it may be alive on the other side, so its heal
//!    is fenced off (`SplitBrainAverted` when it is in fact alive) and
//!    its shard keeps its original owner. Confirmed heals are
//!    additionally **quorum-gated**: a monitor that cannot account for a
//!    strict majority of the cluster blocks (`QuorumLost`) instead of
//!    acting on a minority view.
//!
//! When the network quiesces while a crash is still undetected (or an
//! alive node is still unreachable), the supervisor keeps probing on its
//! own clock (`quiescent_probe_budget` extra rounds) — failure detection
//! must not depend on data traffic.

use crate::degrade::{Certificate, Degraded, QueryMode, RefusalReason};
use crate::detector::PhiDetector;
use crate::partition::{accounted_nodes, has_quorum, round_trip_open};
use parlog_faults::{mix64, FaultPlan};
use parlog_relal::instance::Instance;
use parlog_trace::{FaultEvent, FaultEventKind, TraceEvent, TraceHandle};
use parlog_transducer::faulty::FaultStats;
use parlog_transducer::program::{Ctx, TransducerProgram};
use parlog_transducer::scheduler::{Schedule, SimRun};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tunables of the supervision loop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SupervisorConfig {
    /// Suspect a node once its φ crosses this level.
    pub phi_threshold: f64,
    /// Probe cadence in virtual-clock ticks.
    pub probe_every: usize,
    /// Extra probe rounds after quiescence while undetected-down nodes
    /// remain — the detector's own clock keeps running when the data
    /// plane goes silent.
    pub quiescent_probe_budget: usize,
    /// Heals allowed per run (0 disables healing: every crash degrades).
    pub max_heals: usize,
    /// Abandon a heal when detection came later than this many ticks
    /// after the crash — the answer would be too stale to certify fresh.
    pub heal_deadline: usize,
    /// The node the monitor is co-located with: reachability (and hence
    /// quorum) is judged from this vantage point, so a monitor homed in
    /// the minority block of a split correctly loses quorum.
    pub monitor_home: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            phi_threshold: 2.0,
            probe_every: 8,
            quiescent_probe_budget: 64,
            max_heals: usize::MAX,
            heal_deadline: usize::MAX,
            monitor_home: 0,
        }
    }
}

/// One confirmed failure detection.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Detection {
    /// The dead node.
    pub node: usize,
    /// Clock of the plan's crash event.
    pub crashed_at: usize,
    /// Monitor clock at which φ crossed the threshold.
    pub detected_at: usize,
    /// `detected_at − crashed_at`.
    pub latency: usize,
    /// Whether the node's shard was re-replicated.
    pub healed: bool,
    /// The adopting survivor, when healed.
    pub healed_to: Option<usize>,
    /// Facts the survivor adopted (the heal's extra load).
    pub heal_load: usize,
}

/// What the supervisor observed and did during one run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SupervisorReport {
    /// Probe rounds issued.
    pub probes: usize,
    /// Heartbeat responses received.
    pub heartbeats_observed: usize,
    /// Responses lost to the fault plan's message loss.
    pub heartbeats_lost: usize,
    /// Responses held behind a severed partition link (parked, not
    /// lost — they flush on heal, but the monitor is deaf until then).
    pub heartbeats_held: usize,
    /// Times any node's φ crossed the threshold.
    pub suspicions: usize,
    /// Suspicions cleared by a confirm probe (the node was alive).
    pub false_suspicions: usize,
    /// Suspects whose silence the partition explained: the heal was
    /// fenced off while the node was in fact alive on the other side.
    pub split_brain_averted: usize,
    /// Confirmed-dead nodes whose heal was blocked because the monitor
    /// could not account for a strict majority of the cluster.
    pub quorum_losses: usize,
    /// Confirmed failures, in detection order.
    pub detections: Vec<Detection>,
    /// Shards re-replicated.
    pub heals: usize,
    /// Total facts adopted across heals.
    pub heal_load: usize,
    /// Dead nodes left unhealed (these drive degradation).
    pub unhealed: Vec<usize>,
    /// Shard-ownership registry: `owners[i]` is the node currently
    /// owning node `i`'s durable shard. Identity until a heal reassigns
    /// an entry — a fenced (partitioned-but-alive) node's entry is never
    /// touched, so each shard has exactly one owner at all times.
    pub owners: Vec<usize>,
    /// Monitor clock when the run closed.
    pub final_clock: usize,
}

impl SupervisorReport {
    /// Mean detection latency over confirmed detections.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        if self.detections.is_empty() {
            return None;
        }
        let sum: usize = self.detections.iter().map(|d| d.latency).sum();
        Some(sum as f64 / self.detections.len() as f64)
    }

    /// False suspicions per probe round (0.0 for a quiet run).
    pub fn false_positive_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.false_suspicions as f64 / self.probes as f64
        }
    }
}

/// The outcome of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// The answer, exact / certified-partial / refused.
    pub verdict: Degraded,
    /// The control plane's log.
    pub report: SupervisorReport,
    /// The data plane's fault tally.
    pub fault_stats: FaultStats,
}

/// Deterministic per-probe loss roll: a probe response from `node` on
/// round `probe_idx` is lost with the plan's drop probability, keyed so
/// replays reproduce the exact probe history.
fn probe_lost(plan: &FaultPlan, node: usize, probe_idx: usize) -> bool {
    if plan.drop_prob <= 0.0 {
        return false;
    }
    let key = mix64(plan.seed ^ mix64(0x9ea7_bea7 ^ ((node as u64) << 24) ^ probe_idx as u64));
    (key as f64 / u64::MAX as f64) < plan.drop_prob
}

struct Monitor<'a> {
    det: PhiDetector,
    config: &'a SupervisorConfig,
    plan: &'a FaultPlan,
    report: SupervisorReport,
    healed: Vec<bool>,
    /// Nodes whose suspicion the partition currently explains: their
    /// heal is fenced off until the round trip reopens.
    fenced: Vec<bool>,
    probe_idx: usize,
    now: usize,
    trace: &'a TraceHandle,
}

impl Monitor<'_> {
    /// One probe round at monitor clock `self.now`: record responses,
    /// then evaluate and act on suspicions. Returns whether a heal
    /// produced new in-flight work.
    fn probe_and_act<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        run: &mut SimRun,
    ) -> bool {
        let n = run.n();
        let home = self.config.monitor_home;
        let pp = self.plan.partition.as_ref();
        self.report.probes += 1;
        for node in 0..n {
            if !run.health(node).is_up() {
                continue; // a down node cannot answer
            }
            if !round_trip_open(pp, self.now, home, node, n) {
                // The response is parked behind the severed link — it
                // flushes on heal, but the monitor is deaf until then.
                self.report.heartbeats_held += 1;
                continue;
            }
            self.fenced[node] = false; // round trip open again: resume
            if probe_lost(self.plan, node, self.probe_idx) {
                self.report.heartbeats_lost += 1;
            } else {
                self.report.heartbeats_observed += 1;
                self.det.arrival(node, self.now);
            }
        }
        self.probe_idx += 1;
        let mut did_heal = false;
        for s in self.det.suspects(self.now) {
            self.report.suspicions += 1;
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: self.now as f64,
                    kind: FaultEventKind::Suspect,
                    node: s,
                    info: (self.det.phi(s, self.now) * 1000.0) as u64,
                })
            });
            if !round_trip_open(pp, self.now, home, s, n) {
                // The partition explains the silence: the suspect may be
                // alive on the other side, and re-replicating its shard
                // would leave it owned twice after the heal. Fence the
                // heal; the cleared detector retries once the round trip
                // reopens.
                if !self.fenced[s] && run.health(s).is_up() {
                    self.report.split_brain_averted += 1;
                    self.trace.emit(|| {
                        TraceEvent::Fault(FaultEvent {
                            vclock: self.now as f64,
                            kind: FaultEventKind::SplitBrainAverted,
                            node: s,
                            info: run.shard(s).len() as u64,
                        })
                    });
                }
                self.fenced[s] = true;
                self.det.clear(s, self.now);
                continue;
            }
            if run.health(s).is_up() {
                // Confirm probe answered: slow, not dead.
                self.report.false_suspicions += 1;
                self.det.clear(s, self.now);
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: self.now as f64,
                        kind: FaultEventKind::FalseSuspicion,
                        node: s,
                        info: 0,
                    })
                });
                continue;
            }
            self.det.mark_dead(s);
            let crashed_at = self
                .plan
                .crashes
                .iter()
                .filter(|c| c.node == s)
                .map(|c| c.at_step)
                .min()
                .unwrap_or(self.now);
            let latency = self.now.saturating_sub(crashed_at);
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: self.now as f64,
                    kind: FaultEventKind::ConfirmDead,
                    node: s,
                    info: latency as u64,
                })
            });
            let mut detection = Detection {
                node: s,
                crashed_at,
                detected_at: self.now,
                latency,
                healed: false,
                healed_to: None,
                heal_load: 0,
            };
            let quorum_ok = has_quorum(pp, self.now, home, n);
            if !quorum_ok {
                // The monitor's own side cannot account for a strict
                // majority — it may be the minority of a split, so it
                // blocks the heal instead of diverging.
                self.report.quorum_losses += 1;
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: self.now as f64,
                        kind: FaultEventKind::QuorumLost,
                        node: s,
                        info: accounted_nodes(pp, self.now, home, n).len() as u64,
                    })
                });
            }
            if quorum_ok
                && self.report.heals < self.config.max_heals
                && latency <= self.config.heal_deadline
            {
                let survivor = run
                    .live_nodes()
                    .into_iter()
                    .filter(|&i| i != s && round_trip_open(pp, self.now, home, i, n))
                    .min_by_key(|&i| run.shard(i).len());
                if let Some(to) = survivor {
                    let load = run.adopt_shard(program, s, to);
                    self.report.heals += 1;
                    self.report.heal_load += load;
                    self.healed[s] = true;
                    self.report.owners[s] = to;
                    detection.healed = true;
                    detection.healed_to = Some(to);
                    detection.heal_load = load;
                    did_heal = true;
                }
            }
            self.report.detections.push(detection);
        }
        did_heal
    }
}

/// Run `program` to quiescence under `plan` with the full supervisor
/// stack active; see the module docs for the loop's four duties.
///
/// `mode` states whether the query the program computes is monotone —
/// it decides the degradation contract when a crash cannot be healed.
pub fn supervise<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
    plan: &FaultPlan,
    mode: QueryMode,
    config: &SupervisorConfig,
) -> SupervisedRun {
    supervise_traced(
        program,
        shards,
        ctx,
        schedule,
        plan,
        mode,
        config,
        &TraceHandle::off(),
    )
}

/// [`supervise`] with an attached trace: the data plane's message-level
/// counters and crash/recovery/heal events flow to the sink through the
/// scheduler, and the control plane adds its own decision timeline —
/// `Suspect` (info = φ·1000), `FalseSuspicion`, `ConfirmDead`
/// (info = detection latency) and, at close-out, one `Degrade` or
/// `Refuse` per unhealed node (info = lost shard size).
/// `TraceHandle::off()` reproduces the untraced run exactly.
#[allow(clippy::too_many_arguments)]
pub fn supervise_traced<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
    plan: &FaultPlan,
    mode: QueryMode,
    config: &SupervisorConfig,
    trace: &TraceHandle,
) -> SupervisedRun {
    let mut run = SimRun::new(program, shards, ctx);
    run.set_trace(trace.clone());
    run.install_plan(plan);
    let seed = match schedule {
        Schedule::Random(s) => s,
        _ => 0,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rr = 0usize;
    let n = run.n();
    let mut mon = Monitor {
        det: PhiDetector::new(n, config.phi_threshold, config.probe_every),
        config,
        plan,
        report: SupervisorReport::default(),
        healed: vec![false; n],
        fenced: vec![false; n],
        probe_idx: 0,
        now: 0,
        trace,
    };
    mon.report.owners = (0..n).collect();
    if plan.partition.is_some() {
        // Count cluster formation as the zeroth heartbeat: a node
        // severed before it ever answered a probe must still accrue
        // suspicion, or the partition would render it invisible.
        for i in 0..n {
            mon.det.arrival(i, 0);
        }
    }
    let mut next_probe = 0usize;
    let budget = 10_000_000usize;
    let mut steps = 0usize;
    loop {
        loop {
            if run.clock() >= next_probe {
                mon.now = mon.now.max(run.clock());
                mon.probe_and_act(program, &mut run);
                next_probe = run.clock() + config.probe_every;
            }
            if !run.step(program, schedule, &mut rng, &mut rr) {
                break;
            }
            steps += 1;
            assert!(steps < budget, "supervised run diverged (no quiescence)");
        }
        if run.advance_clock(program) {
            continue;
        }
        let mut hb_changed = false;
        for _ in 0..n + 1 {
            if run.heartbeat_round(program) {
                hb_changed = true;
            } else {
                break;
            }
        }
        if hb_changed || !run.quiet() || run.fault_work_pending() {
            continue;
        }
        // Data plane quiescent. Keep the detector's clock running while
        // down nodes remain undetected — a crash that silences the
        // network must still be noticed — or while alive nodes are still
        // unreachable and not yet fenced, so a split that opened late is
        // still classified before close-out.
        let mut healed_something = false;
        for _ in 0..config.quiescent_probe_budget {
            let unresolved = (0..n).any(|i| {
                let undetected_down = !run.health(i).is_up() && !mon.det.is_dead(i);
                let unreached = plan.partition.is_some()
                    && run.health(i).is_up()
                    && !round_trip_open(
                        plan.partition.as_ref(),
                        mon.now,
                        config.monitor_home,
                        i,
                        n,
                    );
                (undetected_down || unreached) && !mon.fenced[i]
            });
            if !unresolved {
                break;
            }
            mon.now += config.probe_every;
            if mon.probe_and_act(program, &mut run) {
                healed_something = true;
                break;
            }
        }
        if healed_something {
            next_probe = run.clock() + config.probe_every;
            continue;
        }
        break;
    }
    mon.report.final_clock = mon.now.max(run.clock());
    mon.report.unhealed = (0..n)
        .filter(|&i| !run.health(i).is_up() && !mon.healed[i])
        .collect();
    let verdict = close_out(&run, shards, mode, &mon.report, plan, config, trace);
    SupervisedRun {
        verdict,
        report: mon.report,
        fault_stats: run.fault_stats(),
    }
}

/// Issue the final verdict from the run's outputs, the unhealed set,
/// and the network state at close.
fn close_out(
    run: &SimRun,
    shards: &[Instance],
    mode: QueryMode,
    report: &SupervisorReport,
    plan: &FaultPlan,
    config: &SupervisorConfig,
    trace: &TraceHandle,
) -> Degraded {
    let n = shards.len();
    let home = config.monitor_home;
    let pp = plan.partition.as_ref();
    let fc = report.final_clock;
    let open_epochs: Vec<usize> = pp.map(|p| p.open_at(fc)).unwrap_or_default();
    // Alive nodes the monitor cannot round-trip to at close: severed,
    // not lost — their held traffic flushes if the epoch ever heals, but
    // right now the answer cannot draw on them.
    let mut cut: Vec<usize> = (0..n)
        .filter(|&i| {
            run.health(i).is_up()
                && !report.unhealed.contains(&i)
                && !round_trip_open(pp, fc, home, i, n)
        })
        .collect();
    let held = run.held_by_partition();
    if cut.is_empty() && held > 0 {
        // One-way epochs can park copies without cutting any round trip
        // (a relay path keeps probes flowing). Name the severed-link
        // endpoints instead, so the certificate never over-claims.
        if let Some(p) = pp {
            cut = (0..n)
                .filter(|&i| {
                    i != home
                        && run.health(i).is_up()
                        && !report.unhealed.contains(&i)
                        && (0..n)
                            .any(|j| p.severed(fc, i, j).is_some() || p.severed(fc, j, i).is_some())
                })
                .collect();
        }
    }
    if report.unhealed.is_empty() && cut.is_empty() && held == 0 {
        return Degraded::Exact(run.outputs());
    }
    let close_kind = if mode.degradable() {
        FaultEventKind::Degrade
    } else {
        FaultEventKind::Refuse
    };
    for &node in report.unhealed.iter().chain(cut.iter()) {
        trace.emit(|| {
            TraceEvent::Fault(FaultEvent {
                vclock: fc as f64,
                kind: close_kind,
                node,
                info: shards[node].len() as u64,
            })
        });
    }
    let total: usize = shards.iter().map(Instance::len).sum();
    let mut missing_nodes: Vec<usize> = report.unhealed.iter().chain(cut.iter()).copied().collect();
    missing_nodes.sort_unstable();
    missing_nodes.dedup();
    let missing_facts: usize = missing_nodes.iter().map(|&i| shards[i].len()).sum();
    let covered_nodes: Vec<usize> = (0..n).filter(|i| !missing_nodes.contains(i)).collect();
    let certificate = Certificate::for_loss(missing_nodes, missing_facts, total, fc)
        .with_covered(covered_nodes)
        .with_open_epochs(open_epochs.clone());
    debug_assert!(certificate.validate(total).is_ok());
    if mode.degradable() {
        Degraded::Partial {
            answer: run.outputs(),
            certificate,
        }
    } else {
        let accounted = accounted_nodes(pp, fc, home, n).len();
        let reason = if 2 * accounted <= n {
            RefusalReason::QuorumLost {
                accounted,
                total: n,
            }
        } else if !open_epochs.is_empty() && !cut.is_empty() {
            RefusalReason::PartitionOpen {
                epochs: open_epochs,
                unreachable: cut,
            }
        } else {
            RefusalReason::NonMonotoneLoss {
                missing_nodes: certificate.missing_nodes.clone(),
                coverage: certificate.coverage,
            }
        };
        Degraded::Refused {
            reason,
            certificate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::eval::eval_query;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;
    use parlog_transducer::distribution::hash_distribution;
    use parlog_transducer::prelude::{CoordinatedBroadcast, MonotoneBroadcast};

    fn setup() -> (MonotoneBroadcast, Vec<Instance>, Instance) {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])));
        let expected = eval_query(&q, &db);
        let shards = hash_distribution(&db, 4, 3);
        (MonotoneBroadcast::new(q), shards, expected)
    }

    #[test]
    fn fault_free_supervised_run_is_exact_and_unsuspicious() {
        let (p, shards, expected) = setup();
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(7),
            &FaultPlan::none(7),
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert!(out.verdict.is_exact());
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        assert_eq!(out.report.suspicions, 0, "no fault, no suspicion");
        assert_eq!(out.report.false_suspicions, 0);
        assert!(out.report.probes > 0, "the control plane did run");
        assert!(out.report.detections.is_empty());
    }

    #[test]
    fn crash_stop_is_detected_and_healed_to_the_exact_answer() {
        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert!(out.verdict.is_exact(), "heal must restore full coverage");
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        assert_eq!(out.report.heals, 1);
        assert_eq!(out.report.detections.len(), 1);
        let d = &out.report.detections[0];
        assert_eq!(d.node, 0);
        assert_eq!(d.crashed_at, 6);
        assert!(d.healed && d.healed_to.is_some() && d.healed_to != Some(0));
        assert_eq!(d.heal_load, shards[0].len());
        assert!(
            d.latency > 0 && d.latency < 40 * 8,
            "latency {} out of range",
            d.latency
        );
        assert!(out.report.unhealed.is_empty());
    }

    #[test]
    fn unhealable_monotone_crash_degrades_to_a_certified_subset() {
        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let config = SupervisorConfig {
            max_heals: 0, // heal budget spent: recovery impossible
            ..SupervisorConfig::default()
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &plan,
            QueryMode::Monotone,
            &config,
        );
        let Degraded::Partial {
            answer,
            certificate,
        } = &out.verdict
        else {
            panic!("expected a certified partial answer, got {:?}", out.verdict);
        };
        assert!(answer.is_subset_of(&expected), "partial answers stay sound");
        assert_ne!(answer, &expected, "the lost shard must cost derivations");
        assert_eq!(certificate.missing_nodes, vec![0]);
        assert_eq!(certificate.missing_facts, shards[0].len());
        assert!(certificate.coverage < 1.0 && certificate.coverage > 0.0);
        assert_eq!(out.report.unhealed, vec![0]);
    }

    #[test]
    fn unhealable_nonmonotone_crash_refuses_with_a_reason() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
        ]);
        let shards = hash_distribution(&db, 3, 2);
        let p = CoordinatedBroadcast::idempotent(q.clone());
        let plan = FaultPlan::crash_stop(1, 1, 4);
        let config = SupervisorConfig {
            max_heals: 0,
            ..SupervisorConfig::default()
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::aware(3),
            Schedule::Random(1),
            &plan,
            QueryMode::of(&q),
            &config,
        );
        let Degraded::Refused {
            reason,
            certificate,
        } = &out.verdict
        else {
            panic!("non-monotone + unhealed must refuse, got {:?}", out.verdict);
        };
        assert!(matches!(reason, RefusalReason::NonMonotoneLoss { .. }));
        assert!(reason.to_string().contains("non-monotone"));
        assert_eq!(certificate.missing_nodes, vec![1]);
        assert!(out.verdict.answer().is_none(), "no answer is surfaced");
    }

    #[test]
    fn partitioned_alive_node_is_fenced_never_healed() {
        use parlog_faults::PartitionPlan;
        use parlog_trace::MemSink;
        use std::sync::Arc;

        // Node 3 is alive but cut off forever. A naive supervisor would
        // confirm it dead and re-replicate its shard — split-brain. Ours
        // must fence the heal and degrade instead.
        let (p, shards, expected) = setup();
        let plan = FaultPlan::partitioned(5, PartitionPlan::permanent_split(0, &[3]));
        let sink = Arc::new(MemSink::new());
        let out = supervise_traced(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(5),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
            &TraceHandle::to(sink.clone()),
        );
        assert_eq!(
            out.report.heals, 0,
            "a live shard must never be re-replicated"
        );
        assert!(
            out.report.split_brain_averted > 0,
            "the fence must be exercised"
        );
        assert_eq!(
            out.report.owners,
            vec![0, 1, 2, 3],
            "ownership unchanged: exactly one owner per shard"
        );
        assert!(
            out.report.heartbeats_held > 0,
            "probes were parked, not dropped"
        );
        assert!(
            out.fault_stats.partitioned > 0,
            "the split bit the data plane too"
        );
        let timeline = sink.timeline();
        assert!(timeline
            .iter()
            .any(|e| e.kind == FaultEventKind::SplitBrainAverted && e.node == 3));
        assert!(
            !timeline.iter().any(|e| e.kind == FaultEventKind::Heal),
            "no heal may fire: {timeline:?}"
        );
        // Monotone: a sound partial answer with a partition-scoped
        // certificate naming the severed shard and the open epoch.
        let Degraded::Partial {
            answer,
            certificate,
        } = &out.verdict
        else {
            panic!("expected a certified partial answer, got {:?}", out.verdict);
        };
        assert!(answer.is_subset_of(&expected), "partial answers stay sound");
        assert_ne!(answer, &expected, "severed traffic must cost derivations");
        assert_eq!(certificate.missing_nodes, vec![3]);
        assert_eq!(certificate.covered_nodes, vec![0, 1, 2]);
        assert_eq!(certificate.open_epochs, vec![0]);
        let total: usize = shards.iter().map(Instance::len).sum();
        assert!(certificate.validate(total).is_ok());
        assert!(!certificate.is_full_coverage(total));
    }

    #[test]
    fn healing_partition_supervises_to_the_exact_answer() {
        use parlog_faults::PartitionPlan;

        // The same split, but it heals: held traffic flushes, the fenced
        // node rejoins, and the verdict is exact — no heal ever fired.
        let (p, shards, expected) = setup();
        let plan = FaultPlan::partitioned(5, PartitionPlan::split(0, 40, &[3]));
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(5),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert!(
            out.verdict.is_exact(),
            "heal + flush must restore exactness"
        );
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        assert_eq!(
            out.report.heals, 0,
            "the network healed itself; no shard moved"
        );
        assert_eq!(out.report.owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn crash_on_the_majority_side_heals_while_the_split_stays_fenced() {
        use parlog_faults::PartitionPlan;

        // Node 1 crashes on the monitor's (majority) side while node 3
        // is partitioned-alive: the crash is healed to a *reachable*
        // survivor, the severed shard keeps its original owner.
        let (p, shards, _) = setup();
        let plan =
            FaultPlan::crash_stop(2, 1, 6).with_partition(PartitionPlan::permanent_split(0, &[3]));
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        assert_eq!(out.report.heals, 1);
        let d = &out.report.detections[0];
        assert_eq!(d.node, 1);
        let to = d.healed_to.expect("the crash must heal");
        assert!(
            to == 0 || to == 2,
            "the adopter must be a reachable survivor, not the severed node, got {to}"
        );
        assert_eq!(out.report.owners[1], to);
        assert_eq!(out.report.owners[3], 3, "the fenced shard keeps its owner");
        // Exactly one owner per shard, and nobody owns the severed one
        // but its original holder.
        assert_eq!(out.report.owners.len(), 4);
        assert_eq!(
            out.report.owners.iter().filter(|&&o| o == 3).count(),
            1,
            "node 3 owns exactly its own shard"
        );
    }

    #[test]
    fn minority_monitor_blocks_heals_and_refuses_with_quorum_lost() {
        use parlog_faults::PartitionPlan;

        // The monitor is homed at node 3, inside the 2-of-4 minority
        // block. Node 2 — same side, reachable — crashes. The monitor
        // confirms the death but cannot act: 2 accounted of 4 is no
        // majority, so the heal blocks and the non-monotone close-out
        // refuses with the typed quorum reason.
        let (p, shards, _) = setup();
        let plan = FaultPlan::crash_stop(9, 2, 4)
            .with_partition(PartitionPlan::permanent_split(0, &[2, 3]));
        let config = SupervisorConfig {
            monitor_home: 3,
            ..SupervisorConfig::default()
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(9),
            &plan,
            QueryMode::NonMonotone,
            &config,
        );
        assert!(out.report.quorum_losses > 0, "the gate must have fired");
        assert_eq!(out.report.heals, 0, "a minority must not act");
        assert_eq!(out.report.owners, vec![0, 1, 2, 3]);
        let Degraded::Refused {
            reason,
            certificate,
        } = &out.verdict
        else {
            panic!(
                "minority non-monotone close must refuse, got {:?}",
                out.verdict
            );
        };
        assert_eq!(
            *reason,
            RefusalReason::QuorumLost {
                accounted: 2,
                total: 4
            }
        );
        assert!(reason.to_string().contains("blocking"));
        assert!(!certificate.open_epochs.is_empty());
    }

    #[test]
    fn traced_supervision_emits_the_suspect_confirm_heal_timeline() {
        use parlog_trace::MemSink;
        use std::sync::Arc;

        let (p, shards, expected) = setup();
        let plan = FaultPlan::crash_stop(2, 0, 6);
        let run_traced = || {
            let sink = Arc::new(MemSink::new());
            let out = supervise_traced(
                &p,
                &shards,
                Ctx::oblivious(),
                Schedule::Random(2),
                &plan,
                QueryMode::Monotone,
                &SupervisorConfig::default(),
                &TraceHandle::to(sink.clone()),
            );
            (out, sink)
        };
        let (out, sink) = run_traced();
        assert!(out.verdict.is_exact());
        assert_eq!(out.verdict.answer().unwrap(), &expected);
        let timeline = sink.timeline();
        let pos = |kind: FaultEventKind| {
            timeline
                .iter()
                .position(|e| e.kind == kind && e.node == 0)
                .unwrap_or_else(|| panic!("{kind:?} for node 0 missing from {timeline:?}"))
        };
        let (crash, suspect, confirm, heal) = (
            pos(FaultEventKind::Crash),
            pos(FaultEventKind::Suspect),
            pos(FaultEventKind::ConfirmDead),
            pos(FaultEventKind::Heal),
        );
        assert!(
            crash < suspect && suspect < confirm && confirm < heal,
            "lifecycle order crash→suspect→confirm→heal violated: {timeline:?}"
        );
        let confirm_ev = &timeline[confirm];
        assert_eq!(
            confirm_ev.info, out.report.detections[0].latency as u64,
            "ConfirmDead carries the detection latency"
        );
        // The control-plane decisions ride the same deterministic clock
        // as everything else: a rerun produces byte-identical JSON.
        let (_, sink2) = run_traced();
        assert_eq!(
            serde_json::to_string(&sink.report()).unwrap(),
            serde_json::to_string(&sink2.report()).unwrap()
        );
        // And the data plane's own books agree with the sink's counters.
        let ours = sink.comm();
        let theirs = out.fault_stats.as_comm_counters();
        assert_eq!(ours.dropped, theirs.dropped);
        assert_eq!(ours.retransmitted, theirs.retransmitted);
        assert_eq!(ours.acks, theirs.acks);
    }

    #[test]
    fn unhealable_traced_crash_emits_a_degrade_event() {
        use parlog_trace::MemSink;
        use std::sync::Arc;

        let (p, shards, _) = setup();
        let sink = Arc::new(MemSink::new());
        let out = supervise_traced(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(2),
            &FaultPlan::crash_stop(2, 0, 6),
            QueryMode::Monotone,
            &SupervisorConfig {
                max_heals: 0,
                ..SupervisorConfig::default()
            },
            &TraceHandle::to(sink.clone()),
        );
        assert!(matches!(out.verdict, Degraded::Partial { .. }));
        let timeline = sink.timeline();
        let degrade = timeline
            .iter()
            .find(|e| e.kind == FaultEventKind::Degrade)
            .expect("unhealed node must be recorded as degraded");
        assert_eq!(degrade.node, 0);
        assert_eq!(degrade.info, shards[0].len() as u64);
        assert!(
            !timeline.iter().any(|e| e.kind == FaultEventKind::Heal),
            "no heal was allowed"
        );
    }

    #[test]
    fn supervision_is_deterministic() {
        let (p, shards, _) = setup();
        let run_once = || {
            let out = supervise(
                &p,
                &shards,
                Ctx::oblivious(),
                Schedule::Random(3),
                &FaultPlan::lossy(3, 0.3).with_retransmit(Default::default()),
                QueryMode::Monotone,
                &SupervisorConfig::default(),
            );
            (
                out.verdict.answer().cloned(),
                out.report.probes,
                out.report.suspicions,
                out.fault_stats,
            )
        };
        assert_eq!(run_once(), run_once());
    }
}
