//! The checkpointed verified-rounds driver: Byzantine auditing on a
//! cadence, with rollback + replay healing and measured
//! rounds-to-quarantine latency.
//!
//! [`parlog_mpc::verified`] verifies *every* computation round before it
//! commits — zero detection latency, full per-round certificate cost.
//! A deployment may not want to pay the checker on every round. This
//! driver explores the trade: rounds commit **blind** (the fast path,
//! answers and certificates parked in the round store), and every
//! [`VerifyPolicy::verify_every`] rounds an **audit** replays the trusted
//! checker over everything committed since the last checkpoint. A failed
//! certificate raises `Detect` and `Quarantine` on the timeline — with
//! the quarantine's `info` field carrying the *detection latency in
//! rounds* (audit round minus corruption round) — then heals by rolling
//! the tainted round back and re-executing the quarantined server's task
//! honestly on its shard alone. The final answer store is therefore
//! byte-identical to a fault-free run, at a latency cost the e23
//! experiment measures against the cadence.

use crate::degrade::QueryMode;
use parlog_faults::CorruptionPlan;
use parlog_relal::eval::EvalStrategy;
use parlog_relal::instance::Instance;
use parlog_relal::query::UnionQuery;
use parlog_trace::{FaultEvent, FaultEventKind, TraceEvent, TraceHandle};
use parlog_verify::checker::check_answer;
use parlog_verify::snapshot::snapshot;
use parlog_verify::{corrupt_answer, prove_ucq, ServerCertificate};

/// How often the trusted checker audits the committed rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyPolicy {
    /// Audit every `verify_every` rounds (1 = verify-then-commit on
    /// every round, zero detection latency; larger values amortize the
    /// checker at the price of latency). The final round always audits,
    /// so no corruption outlives the run.
    pub verify_every: usize,
}

impl VerifyPolicy {
    /// Audit on every round: the zero-latency policy.
    pub fn every_round() -> VerifyPolicy {
        VerifyPolicy { verify_every: 1 }
    }
}

/// One detected Byzantine corruption: where it happened, when the audit
/// caught it, and the gap between the two.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ByzantineDetection {
    /// The lying server.
    pub server: usize,
    /// Round whose committed answer was corrupt.
    pub corrupted_round: usize,
    /// Round at whose audit the checker rejected the certificate.
    pub detected_round: usize,
    /// `detected_round − corrupted_round`: the rounds-to-quarantine
    /// latency the verify cadence buys or costs.
    pub latency: usize,
}

/// What a verified multi-round run did.
#[derive(Debug, Clone)]
pub struct VerifiedRunReport {
    /// Rounds executed (one query per round).
    pub rounds: usize,
    /// Audits the policy triggered.
    pub audits: usize,
    /// Every corruption the checker caught, with its latency.
    pub detections: Vec<ByzantineDetection>,
    /// Servers quarantined by the end of the run.
    pub quarantined: Vec<usize>,
    /// Per-round cluster-wide answers (union over servers), after all
    /// rollback + replay heals — equal to the fault-free answers.
    pub answers: Vec<Instance>,
    /// Total certificate bytes across all rounds and servers.
    pub cert_bytes: usize,
}

impl VerifiedRunReport {
    /// Worst observed rounds-to-quarantine latency (0 when nothing was
    /// detected).
    pub fn max_latency(&self) -> usize {
        self.detections.iter().map(|d| d.latency).max().unwrap_or(0)
    }
}

/// Run one query per round over fixed input shards, committing blind and
/// auditing on the policy's cadence. `corruption` tampers with the
/// configured `(round, server)` outputs after the honest prover ran —
/// the Byzantine window the audits must close. Monotonicity is not
/// assumed: the checker's verdict is sound for any [`QueryMode`], since
/// certificates bind answers to snapshots rather than relying on
/// subset closure (this is what lets the verified path cover the
/// non-monotone rows of the fault matrix).
pub fn run_verified_rounds(
    queries: &[UnionQuery],
    shards: &[Instance],
    strategy: EvalStrategy,
    corruption: &CorruptionPlan,
    policy: VerifyPolicy,
    trace: &TraceHandle,
) -> VerifiedRunReport {
    assert!(policy.verify_every >= 1, "audit cadence must be at least 1");
    let p = shards.len();
    let mut quarantined = vec![false; p];
    let mut store: Vec<Vec<(Instance, ServerCertificate)>> = Vec::with_capacity(queries.len());
    let mut detections = Vec::new();
    let mut audits = 0usize;
    let mut cert_bytes = 0usize;
    let mut audited_through = 0usize;

    for (r, u) in queries.iter().enumerate() {
        let mut row = Vec::with_capacity(p);
        for (s, shard) in shards.iter().enumerate() {
            let (mut answer, mut cert) = prove_ucq(s, u, shard, strategy);
            // A quarantined server's task runs on trusted survivors; the
            // adversary has lost its foothold there.
            if !quarantined[s] {
                if let Some(kind) = corruption.event_for(r, s) {
                    let e = corruption.entropy(r, s);
                    corrupt_answer(&mut answer, &mut cert, u, kind, e);
                    trace.record(TraceEvent::Fault(FaultEvent {
                        vclock: r as f64,
                        kind: FaultEventKind::Corrupt,
                        node: s,
                        info: e,
                    }));
                }
            }
            cert_bytes += cert.size_bytes();
            row.push((answer, cert));
        }
        store.push(row);

        let last_round = r + 1 == queries.len();
        if (r + 1) % policy.verify_every != 0 && !last_round {
            continue; // blind commit: the fast path between audits
        }
        audits += 1;
        for rr in audited_through..=r {
            let audited_query = &queries[rr];
            for (s, shard) in shards.iter().enumerate() {
                let (answer, cert) = &store[rr][s];
                if check_answer(audited_query, shard, answer, cert).is_ok() {
                    continue;
                }
                let latency = r - rr;
                trace.record(TraceEvent::Fault(FaultEvent {
                    vclock: r as f64,
                    kind: FaultEventKind::Detect,
                    node: s,
                    info: snapshot(shard).short(),
                }));
                if !quarantined[s] {
                    quarantined[s] = true;
                    trace.record(TraceEvent::Fault(FaultEvent {
                        vclock: r as f64,
                        kind: FaultEventKind::Quarantine,
                        node: s,
                        info: latency as u64,
                    }));
                }
                // Rollback + replay: the tainted round's task re-executed
                // honestly on the server's shard alone.
                store[rr][s] = prove_ucq(s, audited_query, shard, strategy);
                trace.record(TraceEvent::Fault(FaultEvent {
                    vclock: r as f64,
                    kind: FaultEventKind::Heal,
                    node: s,
                    info: shard.len() as u64,
                }));
                detections.push(ByzantineDetection {
                    server: s,
                    corrupted_round: rr,
                    detected_round: r,
                    latency,
                });
            }
        }
        audited_through = r + 1;
    }

    let answers = store
        .iter()
        .map(|row| {
            let mut union = Instance::new();
            for (answer, _) in row {
                union.extend_from(answer);
            }
            union
        })
        .collect();
    VerifiedRunReport {
        rounds: queries.len(),
        audits,
        detections,
        quarantined: (0..p).filter(|&s| quarantined[s]).collect(),
        answers,
        cert_bytes,
    }
}

/// Convenience: the same conjunctive query every round.
pub fn run_verified_rounds_cq(
    q: &parlog_relal::query::ConjunctiveQuery,
    rounds: usize,
    shards: &[Instance],
    strategy: EvalStrategy,
    corruption: &CorruptionPlan,
    policy: VerifyPolicy,
    trace: &TraceHandle,
) -> VerifiedRunReport {
    let _ = QueryMode::of(q); // any mode is fine — see run_verified_rounds
    let queries = vec![UnionQuery::new(vec![q.clone()]); rounds];
    run_verified_rounds(&queries, shards, strategy, corruption, policy, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_faults::CorruptKind;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;
    use parlog_trace::MemSink;
    use std::sync::Arc;

    fn shards(p: usize) -> Vec<Instance> {
        let mut out = vec![Instance::new(); p];
        for i in 0..18u64 {
            out[(i % p as u64) as usize].insert(fact("R", &[i, i + 1]));
            out[(i % p as u64) as usize].insert(fact("S", &[i + 1, i + 2]));
        }
        out
    }

    fn q() -> parlog_relal::query::ConjunctiveQuery {
        parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap()
    }

    #[test]
    fn fault_free_run_detects_nothing() {
        let sh = shards(3);
        let rep = run_verified_rounds_cq(
            &q(),
            4,
            &sh,
            EvalStrategy::Indexed,
            &CorruptionPlan::none(3),
            VerifyPolicy { verify_every: 2 },
            &TraceHandle::off(),
        );
        assert_eq!(rep.rounds, 4);
        assert_eq!(rep.audits, 2);
        assert!(rep.detections.is_empty());
        assert!(rep.quarantined.is_empty());
        assert!(rep.cert_bytes > 0);
    }

    #[test]
    fn latency_equals_distance_to_the_next_audit() {
        let sh = shards(3);
        for (cadence, expected_latency) in [(1usize, 0usize), (3, 1), (6, 4)] {
            let plan = CorruptionPlan::single(7, 1, 2, CorruptKind::Inject);
            let rep = run_verified_rounds_cq(
                &q(),
                6,
                &sh,
                EvalStrategy::Indexed,
                &plan,
                VerifyPolicy {
                    verify_every: cadence,
                },
                &TraceHandle::off(),
            );
            assert_eq!(rep.detections.len(), 1, "cadence {cadence}");
            let d = &rep.detections[0];
            assert_eq!((d.server, d.corrupted_round), (2, 1));
            assert_eq!(d.latency, expected_latency, "cadence {cadence}");
            assert_eq!(rep.max_latency(), expected_latency);
            assert_eq!(rep.quarantined, vec![2]);
        }
    }

    #[test]
    fn healed_answers_match_the_faultfree_run() {
        let sh = shards(3);
        let clean = run_verified_rounds_cq(
            &q(),
            5,
            &sh,
            EvalStrategy::Indexed,
            &CorruptionPlan::none(9),
            VerifyPolicy::every_round(),
            &TraceHandle::off(),
        );
        for kind in CorruptKind::ALL {
            let plan = CorruptionPlan::single(9, 2, 0, kind).with_event(3, 1, kind);
            let rep = run_verified_rounds_cq(
                &q(),
                5,
                &sh,
                EvalStrategy::Indexed,
                &plan,
                VerifyPolicy { verify_every: 2 },
                &TraceHandle::off(),
            );
            assert_eq!(rep.detections.len(), 2, "{kind:?}");
            assert_eq!(rep.answers, clean.answers, "{kind:?}: heal restores truth");
        }
    }

    #[test]
    fn timeline_orders_corrupt_detect_quarantine_heal() {
        let sh = shards(3);
        let sink = Arc::new(MemSink::new());
        let plan = CorruptionPlan::single(5, 0, 1, CorruptKind::Mutate);
        run_verified_rounds_cq(
            &q(),
            3,
            &sh,
            EvalStrategy::Indexed,
            &plan,
            VerifyPolicy { verify_every: 2 },
            &TraceHandle::to(sink.clone()),
        );
        let tl = sink.timeline();
        let pos = |k| tl.iter().position(|e| e.kind == k).unwrap();
        assert!(pos(FaultEventKind::Corrupt) < pos(FaultEventKind::Detect));
        assert!(pos(FaultEventKind::Detect) < pos(FaultEventKind::Quarantine));
        assert!(pos(FaultEventKind::Quarantine) < pos(FaultEventKind::Heal));
        // Quarantine's info is the measured latency (round 1 audit, round
        // 0 corruption).
        let quarantine = tl
            .iter()
            .find(|e| e.kind == FaultEventKind::Quarantine)
            .unwrap();
        assert_eq!(quarantine.info, 1);
    }

    #[test]
    fn quarantine_blocks_later_corruption_without_reaudit_noise() {
        let sh = shards(2);
        let plan = CorruptionPlan::single(11, 0, 0, CorruptKind::Drop).with_event(
            2,
            0,
            CorruptKind::Inject,
        );
        let rep = run_verified_rounds_cq(
            &q(),
            4,
            &sh,
            EvalStrategy::Indexed,
            &plan,
            VerifyPolicy::every_round(),
            &TraceHandle::off(),
        );
        // Round 0's drop is caught instantly; round 2's event targets a
        // quarantined server and never fires.
        assert_eq!(rep.detections.len(), 1);
        assert_eq!(rep.quarantined, vec![0]);
    }
}
