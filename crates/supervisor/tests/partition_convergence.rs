//! Property tests for the partition contract (PR 7, satellite):
//!
//! A *healing* network partition is a within-model fault — messages are
//! arbitrarily delayed but never lost — so every monotone workload must
//! converge to the fault-free answer byte-for-byte once the partition
//! heals, on both substrates, whatever the seeded split/heal schedule:
//!
//! (a) transducer networks: random monotone CQ / UCQ / Datalog
//!     workloads under `PartitionPlan::seeded` schedules produce exactly
//!     the fault-free output, and reruns with the same seed are
//!     byte-identical (the no-loss assumption, checked end to end);
//! (b) the MPC simulator: a repartitioning hash join whose communication
//!     round is split by a seeded partition drains its held copies after
//!     heal and computes the exact join, byte-identical across
//!     `with_parallelism` thread counts and to the fault-free cluster.

use proptest::prelude::*;

use parlog_faults::{FaultPlan, MpcFaultPlan, PartitionPlan};
use parlog_mpc::cluster::{Cluster, Routing};
use parlog_relal::eval::eval_query;
use parlog_relal::fact::fact;
use parlog_relal::instance::Instance;
use parlog_relal::parser::parse_query;
use parlog_relal::query::UnionQuery;
use parlog_relal::symbols::rel;
use parlog_transducer::distribution::hash_distribution;
use parlog_transducer::network::QueryFunction;
use parlog_transducer::prelude::MonotoneBroadcast;
use parlog_transducer::program::Ctx;
use parlog_transducer::scheduler::{run_with_faults, Schedule};

/// Strategy: a small random edge relation.
fn small_edges(max_facts: usize, domain: u64) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..domain, 0..domain), 1..max_facts)
        .prop_map(|pairs| Instance::from_facts(pairs.into_iter().map(|(a, b)| fact("E", &[a, b]))))
}

/// A canonical byte string for an instance: sorted rendered facts.
/// Equality of canons is the "byte-identical" convergence check.
fn canon(inst: &Instance) -> String {
    let mut lines: Vec<String> = inst.iter().map(|f| format!("{f:?}")).collect();
    lines.sort();
    lines.join(";")
}

/// The monotone workload under test, plus its fault-free ground truth.
/// `pick` chooses among the three query classes the CALM contract
/// covers: a conjunctive query, a union of conjunctive queries, and a
/// recursive (but positive, hence monotone) Datalog program.
fn workload(pick: usize, db: &Instance) -> (MonotoneBroadcast, Instance) {
    match pick {
        0 => {
            let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
            let expected = eval_query(&q, db);
            (MonotoneBroadcast::new(q), expected)
        }
        1 => {
            let u = UnionQuery::new(vec![
                parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap(),
                parse_query("H(x,y) <- E(x,y)").unwrap(),
            ]);
            let expected = QueryFunction::eval(&u, db);
            (MonotoneBroadcast::new(u), expected)
        }
        _ => {
            let p = parlog_datalog::program::parse_program(
                "TC(x,y) <- E(x,y).\nTC(x,z) <- TC(x,y), E(y,z).",
            )
            .unwrap();
            let expected = QueryFunction::eval(&p, db);
            (MonotoneBroadcast::new(p), expected)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) On the transducer substrate, any seeded healing partition
    /// schedule leaves every monotone workload's final output exactly
    /// equal to the fault-free answer — the partition only delays.
    #[test]
    fn monotone_transducer_output_survives_any_seeded_partition(
        db in small_edges(18, 7),
        pick in 0usize..3,
        pseed in 0u64..512,
        sseed in 0u64..64,
        n in 3usize..5,
    ) {
        let (program, expected) = workload(pick, &db);
        let shards = hash_distribution(&db, n, 5);
        let plan = FaultPlan::partitioned(pseed, PartitionPlan::seeded(pseed, n, 24));

        let (out, stats) = run_with_faults(
            &program, &shards, Ctx::oblivious(), Schedule::Random(sseed), &plan,
        );
        prop_assert_eq!(&out, &expected, "partitioned run diverged from ground truth");

        // Byte-identical to the fault-free run under the same schedule…
        let (fault_free, _) = run_with_faults(
            &program, &shards, Ctx::oblivious(), Schedule::Random(sseed),
            &FaultPlan::none(pseed),
        );
        prop_assert_eq!(canon(&out), canon(&fault_free));

        // …and deterministic: the same seeds replay the same run.
        let (again, stats2) = run_with_faults(
            &program, &shards, Ctx::oblivious(), Schedule::Random(sseed), &plan,
        );
        prop_assert_eq!(canon(&out), canon(&again));
        prop_assert_eq!(stats.partitioned, stats2.partitioned);
    }

    /// (b) On the MPC substrate, a seeded partition over the
    /// communication round holds copies at their source; once drained
    /// after heal, the repartitioning join is exact and byte-identical
    /// across thread counts and to the fault-free cluster.
    #[test]
    fn mpc_join_converges_after_heal_across_thread_counts(
        r_pairs in prop::collection::vec((0..6u64, 0..6u64), 1..14),
        s_pairs in prop::collection::vec((0..6u64, 0..6u64), 1..14),
        pseed in 0u64..512,
    ) {
        let p = 3usize;
        let db = Instance::from_facts(
            r_pairs.iter().map(|&(a, b)| fact("R", &[a, b]))
                .chain(s_pairs.iter().map(|&(a, b)| fact("S", &[a, b]))),
        );
        let q = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let r_id = rel("R");

        let run = |threads: usize, faults: MpcFaultPlan| {
            let mut c = Cluster::new(p).with_parallelism(threads).with_faults(faults);
            for (i, f) in db.iter().enumerate() {
                c.local_mut(i % p).insert(f.clone());
            }
            // Repartition on the join key: R by its second column, S by
            // its first, so joining facts co-locate.
            c.communicate(|f| {
                let key = if f.rel == r_id { f.args[1].0 } else { f.args[0].0 };
                vec![(key % p as u64) as usize]
            });
            // Drain: seeded plans always heal within their horizon, so a
            // bounded number of Keep rounds flushes every held copy.
            let mut rounds = 0usize;
            while c.held_by_partition() > 0 && rounds < 32 {
                c.reshuffle(|_, _| Routing::Keep);
                rounds += 1;
            }
            c.compute(|inst| eval_query(&q, inst));
            c
        };

        let fault_free = run(1, MpcFaultPlan::none());
        prop_assert_eq!(&fault_free.union_all(), &expected);
        let baseline = canon(&fault_free.union_all());

        for threads in [1usize, 2, 4] {
            let plan = MpcFaultPlan::partitioned(PartitionPlan::seeded(pseed, p, 8));
            let c = run(threads, plan);
            prop_assert_eq!(
                c.held_by_partition(), 0,
                "held copies must flush once the seeded plan heals"
            );
            prop_assert_eq!(
                canon(&c.union_all()), baseline.clone(),
                "threads={} diverged from the fault-free join", threads
            );
        }
    }
}
