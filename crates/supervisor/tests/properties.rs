//! Property tests for the supervisor's three contracts (PR 2, satellite):
//!
//! (a) speculative re-execution never changes what is computed — a
//!     speculated run's outputs and loads equal the fault-free run's;
//! (b) degraded monotone answers are always a subset of the true answer;
//! (c) the failure detector never suspects a live node when the plan
//!     injects zero message faults.

use proptest::prelude::*;

use parlog_faults::{FaultPlan, MpcFaultPlan, SpeculationPolicy};
use parlog_mpc::cluster::Cluster;
use parlog_relal::eval::eval_query;
use parlog_relal::fact::fact;
use parlog_relal::instance::Instance;
use parlog_relal::parser::parse_query;
use parlog_supervisor::prelude::*;
use parlog_transducer::distribution::hash_distribution;
use parlog_transducer::prelude::MonotoneBroadcast;
use parlog_transducer::program::Ctx;
use parlog_transducer::scheduler::Schedule;

/// Strategy: a small random edge relation.
fn small_edges(max_facts: usize, domain: u64) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..domain, 0..domain), 1..max_facts)
        .prop_map(|pairs| Instance::from_facts(pairs.into_iter().map(|(a, b)| fact("E", &[a, b]))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) First-finisher-wins with idempotent commit: a cluster run with
    /// speculation enabled commits the same outputs and per-round loads
    /// as the identical run without it, whatever the straggler profile.
    #[test]
    fn speculation_never_changes_outputs(
        db in small_edges(24, 9),
        straggler in 0usize..4,
        slowdown in 1u32..12,
        threshold in 11u32..30,
    ) {
        let run = |spec: Option<SpeculationPolicy>| {
            let mut c = Cluster::new(4).with_faults(
                MpcFaultPlan::none().with_straggler(straggler, f64::from(slowdown)),
            );
            if let Some(s) = spec {
                c = c.with_speculation(s);
            }
            for (i, f) in db.iter().enumerate() {
                c.local_mut(i % 4).insert(f.clone());
            }
            c.communicate(|f| vec![(f.args[0].0 % 4) as usize]);
            c.compute(|inst| {
                let q = parse_query("H(x) <- E(x,y)").unwrap();
                eval_query(&q, inst)
            });
            c
        };
        let plain = run(None);
        let spec = run(Some(SpeculationPolicy {
            threshold: f64::from(threshold) / 10.0,
            min_load: 2,
        }));
        prop_assert_eq!(plain.union_all(), spec.union_all());
        prop_assert_eq!(&plain.rounds()[0].received, &spec.rounds()[0].received);
        prop_assert_eq!(plain.max_load(), spec.max_load());
        // Latency can only improve, and every win is paid for in waste.
        prop_assert!(spec.tail_time() <= plain.tail_time());
        if spec.speculation().wins > 0 {
            prop_assert!(spec.speculation().wasted_work > 0);
        }
    }

    /// (b) A monotone query degraded by an unhealable crash-stop returns
    /// a certified answer that is a subset of the true answer, with a
    /// certificate that accounts exactly for the missing shard.
    #[test]
    fn degraded_monotone_answers_are_sound(
        db in small_edges(20, 8),
        seed in 0u64..40,
        node in 0usize..3,
        at_step in 0usize..12,
    ) {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let shards = hash_distribution(&db, 3, 5);
        let p = MonotoneBroadcast::new(q);
        let config = SupervisorConfig { max_heals: 0, ..SupervisorConfig::default() };
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(seed),
            &FaultPlan::crash_stop(seed, node, at_step),
            QueryMode::Monotone,
            &config,
        );
        let answer = out.verdict.answer().expect("monotone runs always answer");
        prop_assert!(answer.is_subset_of(&expected));
        if let Degraded::Partial { certificate, .. } = &out.verdict {
            prop_assert_eq!(&certificate.missing_nodes, &vec![node]);
            prop_assert_eq!(certificate.missing_facts, shards[node].len());
            prop_assert!(certificate.coverage <= 1.0);
        } else {
            // The node died after quiescence-equivalent delivery or held
            // an empty shard: exact is also a sound outcome.
            prop_assert!(out.verdict.is_exact());
        }
    }

    /// (d) Cold start is never suspicious: whatever the true heartbeat
    /// cadence, a detector that has seen at most one (possibly
    /// clamped-tiny) inter-arrival keeps φ sub-threshold through the
    /// whole first observed period. Regression for the cold-start bug
    /// where the first sample *replaced* the seeded mean.
    #[test]
    fn cold_start_never_false_suspects(cadence in 1usize..50) {
        let mut det = PhiDetector::new(1, 2.0, cadence);
        det.arrival(0, 0);
        det.arrival(0, 1); // startup burst: the degenerate first gap
        let mut now = 1;
        for beat in 0..20usize {
            // Probe just before the next heartbeat — the worst moment.
            prop_assert!(
                det.suspects(now + cadence).is_empty(),
                "beat {} (cadence {}): φ = {}",
                beat, cadence, det.phi(0, now + cadence)
            );
            now += cadence;
            det.arrival(0, now);
        }
    }

    /// (c) Zero message faults: every live node answers every probe, so
    /// the detector never suspects one — no false positives, ever.
    #[test]
    fn no_false_suspicion_without_message_faults(
        db in small_edges(20, 8),
        seed in 0u64..60,
        crash_flag in 0u64..2,
    ) {
        let crash = crash_flag == 1;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let shards = hash_distribution(&db, 4, 5);
        let p = MonotoneBroadcast::new(q);
        // Crash plans are allowed — they inject no *message* faults, and
        // dead nodes are not live; live nodes must stay unsuspected.
        let plan = if crash {
            FaultPlan::crash_stop(seed, (seed as usize) % 4, 4)
        } else {
            FaultPlan::none(seed)
        };
        let out = supervise(
            &p,
            &shards,
            Ctx::oblivious(),
            Schedule::Random(seed),
            &plan,
            QueryMode::Monotone,
            &SupervisorConfig::default(),
        );
        prop_assert_eq!(out.report.false_suspicions, 0);
        if !crash {
            prop_assert_eq!(out.report.suspicions, 0);
            prop_assert!(out.report.detections.is_empty());
        }
    }
}
