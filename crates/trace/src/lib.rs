//! # `parlog-trace` — structured observability for both substrates
//!
//! The paper's quantitative claims are *per-server, per-round*
//! quantities — the MPC load bound `O(m/p^{1/τ*})`, the coordination
//! cost of reliability, the latency of failure detection — yet runtimes
//! naturally surface only end-of-run aggregates. This crate is the
//! missing middle: a tracing layer both substrates thread through their
//! hot paths, recording
//!
//! * **phase spans** — communication / computation / barrier, per round,
//!   on the deterministic virtual clock, with wall-clock measurements
//!   segregated into their own report section;
//! * **load histograms** — the per-server received-load distribution of
//!   every round, summarized to min/p50/p95/max at record time and
//!   compared against the `m/p^{1/τ*}` bound;
//! * **comm counters** — message copies sent, delivered, dropped,
//!   duplicated, delayed, retransmitted, wasted, and payload bytes;
//! * **a fault timeline** — crashes, recoveries, round replays,
//!   speculative backups, and the supervisor's decisions
//!   (suspect → confirm → heal → degrade) in virtual-clock order.
//!
//! ## Design constraints
//!
//! **The hot path pays nothing when tracing is off.** Runtimes hold a
//! [`TraceHandle`]; [`TraceHandle::off`] carries no sink, so
//! [`TraceHandle::emit`] is a single branch — the event is not even
//! constructed. Events borrow their slices ([`TraceEvent::Loads`])
//! rather than owning them, so the *on* path allocates only inside the
//! sink.
//!
//! **The export is deterministic.** [`MemSink`] splits its export in
//! two: [`report::TraceReport`] holds only virtual-clock and counter
//! data and is byte-identical across reruns and thread counts for a
//! deterministic workload; [`report::WallReport`] holds the
//! machine-dependent wall-clock spans. Double-run diff jobs in CI
//! compare the former and ignore the latter.
//!
//! The crate is zero-dependency by design (the `serde`/`parking_lot`
//! entries resolve to the workspace's in-repo shims): it sits below
//! every runtime crate and must never create a dependency cycle or pull
//! in an external crate.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod report;
pub mod sink;

use std::fmt;
use std::sync::Arc;

/// The phase of a round a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Phase {
    /// Routing and delivering facts — the phase that generates load.
    Communication,
    /// Local computation over the received data (free in the MPC model's
    /// accounting; its virtual span is therefore empty, only wall-clock
    /// is measured).
    Computation,
    /// Waiting at the round barrier for the slowest (straggling) server.
    Barrier,
}

/// One completed phase of one round, on two clocks: the deterministic
/// virtual clock (load units / simulator ticks) and — when the phase was
/// actually timed — the machine-dependent wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Index of the round the phase belongs to.
    pub round: usize,
    /// Which phase.
    pub phase: Phase,
    /// Virtual-clock start.
    pub vstart: f64,
    /// Virtual-clock end (`≥ vstart`).
    pub vend: f64,
    /// Wall-clock duration in nanoseconds. Machine-dependent: exported
    /// only in the segregated [`report::WallReport`], never in the
    /// deterministic section.
    pub wall_ns: Option<u64>,
}

/// Message-level communication counters. Every [`TraceEvent::Comm`]
/// event carries a *delta*; sinks accumulate with [`CommCounters::add`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CommCounters {
    /// Copies put on the wire (first sends, duplicates, retransmits).
    pub sent: u64,
    /// Copies actually delivered to a live destination.
    pub delivered: u64,
    /// Copies dropped by the network (loss faults).
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Copies held back by delay faults.
    pub delayed: u64,
    /// Copies enqueued at an out-of-order position.
    pub reordered: u64,
    /// Copies re-sent by an ack/retransmit protocol.
    pub retransmitted: u64,
    /// Delivery acknowledgements (reliable mode only).
    pub acks: u64,
    /// Copies whose work was thrown away: sent to a crashed endpoint,
    /// or part of a replayed (discarded) MPC round attempt.
    pub wasted: u64,
    /// Estimated payload bytes across sent copies: 8 bytes per value
    /// plus an 8-byte relation tag per fact.
    pub bytes: u64,
}

impl CommCounters {
    /// Accumulate `delta` into `self`, field by field.
    pub fn add(&mut self, delta: &CommCounters) {
        self.sent += delta.sent;
        self.delivered += delta.delivered;
        self.dropped += delta.dropped;
        self.duplicated += delta.duplicated;
        self.delayed += delta.delayed;
        self.reordered += delta.reordered;
        self.retransmitted += delta.retransmitted;
        self.acks += delta.acks;
        self.wasted += delta.wasted;
        self.bytes += delta.bytes;
    }
}

/// What happened at one point of the fault / supervisor-decision
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum FaultEventKind {
    /// A node crashed, or an MPC server crashed mid-attempt.
    Crash,
    /// A crash-recover node restarted from its durable snapshot.
    Recovery,
    /// An MPC round attempt was discarded and replayed from checkpoint.
    RoundReplay,
    /// A speculative backup task was launched for a straggler.
    SpeculativeBackup,
    /// The speculative backup finished before the original and won.
    SpeculativeWin,
    /// The φ-accrual detector crossed its threshold for a node.
    Suspect,
    /// A suspected node answered its confirm probe — alive after all.
    FalseSuspicion,
    /// A suspicion was confirmed: the node is dead.
    ConfirmDead,
    /// A dead node's durable shard was re-replicated to a survivor.
    Heal,
    /// The run closed with a certified partial answer over a lost shard.
    Degrade,
    /// The run closed refusing to answer (non-monotone query over a
    /// lost shard).
    Refuse,
    /// Byzantine corruption fired: a message payload or a server's local
    /// output was tampered with (`info` = corruption entropy / kind tag).
    Corrupt,
    /// The certificate checker rejected a server's answer (`info` = the
    /// snapshot id's short form, binding the detection to the round's
    /// content address).
    Detect,
    /// A detected-Byzantine server was quarantined: its answer discarded
    /// and its task reassigned (`info` = detection latency in rounds).
    Quarantine,
    /// A partition epoch opened: the node set split into blocks that
    /// cannot exchange messages (`node` = epoch index, `info` = the
    /// scheduled heal clock, `u64::MAX` if permanent).
    PartitionStart,
    /// A partition epoch healed: held messages flush (`node` = epoch
    /// index, `info` = copies released from the source-side holds).
    PartitionHeal,
    /// A quorum-gated operation found its reachable set short of a
    /// strict majority and blocked/degraded instead of proceeding
    /// (`node` = the observer, `info` = reachable-set size).
    QuorumLost,
    /// The supervisor suppressed a heal because the silent node is
    /// partitioned-but-alive, not crashed — re-replicating its shard
    /// would have double-owned it (`node` = the spared node).
    SplitBrainAverted,
}

/// One timeline entry: what happened, to whom, when on the virtual
/// clock, and a kind-specific detail.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct FaultEvent {
    /// Virtual-clock timestamp (load units for MPC, simulator ticks for
    /// the transducer network).
    pub vclock: f64,
    /// What happened.
    pub kind: FaultEventKind,
    /// The node / server concerned.
    pub node: usize,
    /// Kind-specific detail: the replay's attempt index, the heal's
    /// adopted load, the detection's latency, the suspicion's φ×1000….
    pub info: u64,
}

/// One observation offered to a sink. Slices are borrowed from the hot
/// path — a sink must copy whatever it wants to keep.
#[derive(Debug, Clone, Copy)]
pub enum TraceEvent<'a> {
    /// A completed phase span.
    Phase(Span),
    /// The per-server received-load histogram of one round.
    Loads {
        /// Round index.
        round: usize,
        /// Facts received by each server this round.
        received: &'a [usize],
    },
    /// A communication-counter delta.
    Comm(CommCounters),
    /// A fault or supervisor-decision timeline entry.
    Fault(FaultEvent),
}

/// Where trace events go. Implementations must be cheap and
/// thread-safe: the cluster's parallel round engine shares the handle
/// across scoped workers.
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn record(&self, ev: &TraceEvent<'_>);
}

/// The cloneable on/off handle the runtimes thread through their hot
/// paths.
///
/// [`TraceHandle::off`] is the default everywhere. With no sink
/// attached, every instrumentation site is a single branch on an
/// `Option` — no allocation, no formatting, no locking; [`emit`]
/// doesn't even build the event.
///
/// [`emit`]: TraceHandle::emit
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn TraceSink>>);

impl TraceHandle {
    /// The disabled handle (the default): every record is a no-op.
    pub fn off() -> TraceHandle {
        TraceHandle(None)
    }

    /// A handle delivering every event to `sink`.
    pub fn to(sink: Arc<dyn TraceSink>) -> TraceHandle {
        TraceHandle(Some(sink))
    }

    /// Is a sink attached?
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Record an already-built event. Use [`TraceHandle::emit`] instead
    /// when building the event itself costs anything.
    #[inline]
    pub fn record(&self, ev: TraceEvent<'_>) {
        if let Some(sink) = &self.0 {
            sink.record(&ev);
        }
    }

    /// Build and record an event only when a sink is attached — the
    /// per-message hot-path form: the off case runs no closure at all.
    #[inline]
    pub fn emit<'a>(&self, build: impl FnOnce() -> TraceEvent<'a>) {
        if let Some(sink) = &self.0 {
            sink.record(&build());
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_on() {
            "TraceHandle(on)"
        } else {
            "TraceHandle(off)"
        })
    }
}

pub use report::{
    LoadBound, LoadBoundPart, RoundLoadReport, SpanReport, TraceReport, WallReport, WallSpan,
};
pub use sink::{MemSink, RoundLoads};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert_and_never_runs_the_builder() {
        let h = TraceHandle::off();
        assert!(!h.is_on());
        let mut built = false;
        h.emit(|| {
            built = true;
            TraceEvent::Comm(CommCounters::default())
        });
        assert!(!built, "off handle must not construct the event");
        // record() on an off handle is a harmless no-op too.
        h.record(TraceEvent::Fault(FaultEvent {
            vclock: 0.0,
            kind: FaultEventKind::Crash,
            node: 0,
            info: 0,
        }));
    }

    #[test]
    fn default_handle_is_off() {
        assert!(!TraceHandle::default().is_on());
        assert_eq!(format!("{:?}", TraceHandle::default()), "TraceHandle(off)");
    }

    #[test]
    fn comm_counters_accumulate_fieldwise() {
        let mut acc = CommCounters::default();
        acc.add(&CommCounters {
            sent: 2,
            delivered: 1,
            bytes: 48,
            ..CommCounters::default()
        });
        acc.add(&CommCounters {
            sent: 1,
            dropped: 1,
            bytes: 24,
            ..CommCounters::default()
        });
        assert_eq!(acc.sent, 3);
        assert_eq!(acc.delivered, 1);
        assert_eq!(acc.dropped, 1);
        assert_eq!(acc.bytes, 72);
    }
}
