//! Two-section report export.
//!
//! [`TraceReport`] is the **deterministic** section — virtual clocks,
//! load histograms, counters, timeline. For a deterministic workload it
//! is byte-identical across reruns *and across thread counts*, so CI
//! double-run diff jobs can compare it verbatim. [`WallReport`] is the
//! **wall-clock** section — machine-dependent span timings, segregated
//! here so they never leak into the deterministic bytes.

use crate::sink::MemSink;
use crate::{CommCounters, FaultEvent, Phase};

/// One component of a skew-aware (heavy/light decomposed) load bound:
/// a residual sub-query over its own server block, bounded by the
/// finite-size skew-free guarantee `m / servers^exponent + atoms ×
/// light_freq` — the balanced share plus the heaviest single value the
/// component's hashing must absorb, once per body atom.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadBoundPart {
    /// Human-readable heavy-pattern label (`"light"`, `"y=7"`, …).
    pub pattern: String,
    /// Facts consistent with the pattern (the residual input size).
    pub m: usize,
    /// Servers in the pattern's block.
    pub servers: usize,
    /// The residual load exponent `1/τ*` of the residual query.
    pub exponent: f64,
    /// The heaviest frequency among values the pattern leaves *light*
    /// — every hash bucket must be able to hold one such value whole.
    pub light_freq: usize,
    /// `m / servers^exponent + atoms × light_freq`.
    pub predicted: f64,
}

/// The theoretical per-server load `m / p^{1/τ*}` the histograms are
/// compared against (`1/τ*` from the optimal fractional edge packing).
///
/// The **skew-aware** form ([`LoadBound::skew`]) carries one
/// [`LoadBoundPart`] per heavy/light residual sub-query; its `predicted`
/// is the worst component — the `m/p^{1/ρ*}`-style bound of the
/// Beame–Koutris–Suciu heavy/light decomposition, against which the
/// skew-adaptive multi-round engine is machine-checked (E26).
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadBound {
    /// Input size.
    pub m: usize,
    /// Number of servers.
    pub p: usize,
    /// The load exponent `1/τ*` (effective exponent for skew bounds).
    pub exponent: f64,
    /// `m / p^exponent` (for skew bounds: the worst component).
    pub predicted: f64,
    /// Heavy/light decomposition of the bound, when skew-aware.
    pub components: Option<Vec<LoadBoundPart>>,
}

impl LoadBound {
    /// Build the bound from `m`, `p` and the packing exponent `1/τ*`.
    pub fn new(m: usize, p: usize, exponent: f64) -> LoadBound {
        LoadBound {
            m,
            p,
            exponent,
            predicted: m as f64 / (p as f64).powf(exponent),
            components: None,
        }
    }

    /// Build a skew-aware bound from heavy/light components: the
    /// predicted load is the worst residual's `m_i / B_i^{1/τ*_i}`, and
    /// the recorded exponent is the *effective* one it implies for the
    /// whole input (`predicted = m / p^exponent`).
    pub fn skew(m: usize, p: usize, components: Vec<LoadBoundPart>) -> LoadBound {
        let predicted = components
            .iter()
            .map(|c| c.predicted)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let exponent = if m == 0 || p <= 1 {
            0.0
        } else {
            (m as f64 / predicted).ln() / (p as f64).ln()
        };
        LoadBound {
            m,
            p,
            exponent,
            predicted,
            components: Some(components),
        }
    }
}

/// One round's load histogram with its balance ratios.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RoundLoadReport {
    /// Round index.
    pub round: usize,
    /// Number of servers.
    pub servers: usize,
    /// `Σ received` — the round's total communication.
    pub total: usize,
    /// Smallest per-server load.
    pub min: usize,
    /// Median per-server load (nearest-rank).
    pub p50: usize,
    /// 95th-percentile per-server load (nearest-rank).
    pub p95: usize,
    /// Largest per-server load.
    pub max: usize,
    /// `max / mean` — 1.0 is perfect balance.
    pub balance: f64,
    /// `max / bound.predicted`, `null` when no bound is configured.
    pub max_over_bound: Option<f64>,
}

/// A phase span on the virtual clock only.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct SpanReport {
    /// Round index.
    pub round: usize,
    /// Which phase.
    pub phase: Phase,
    /// Virtual-clock start.
    pub vstart: f64,
    /// Virtual-clock end.
    pub vend: f64,
}

/// A phase span's wall-clock measurement.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct WallSpan {
    /// Round index.
    pub round: usize,
    /// Which phase.
    pub phase: Phase,
    /// Measured wall-clock duration in nanoseconds.
    pub wall_ns: u64,
}

/// The deterministic report section.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TraceReport {
    /// The bound the histograms are compared against, when configured.
    pub bound: Option<LoadBound>,
    /// Per-round load histograms with balance ratios.
    pub rounds: Vec<RoundLoadReport>,
    /// Phase spans on the virtual clock.
    pub spans: Vec<SpanReport>,
    /// Accumulated message counters.
    pub comm: CommCounters,
    /// The fault / supervisor-decision timeline, in record order.
    pub timeline: Vec<FaultEvent>,
    /// Maximum per-server load over all rounds.
    pub max_load: usize,
    /// Total communication over all rounds (`Σ` of round totals).
    pub total_comm: usize,
    /// `max_load / bound.predicted` when a bound is configured.
    pub max_over_bound: Option<f64>,
}

/// The wall-clock report section — machine-dependent, kept out of
/// [`TraceReport`] so double-run diffs stay byte-identical.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WallReport {
    /// Spans that were actually timed (tracing on during the phase).
    pub spans: Vec<WallSpan>,
    /// Sum of measured nanoseconds.
    pub total_ns: u64,
}

impl MemSink {
    /// Export the deterministic section, comparing every histogram
    /// against `bound` when one is given.
    pub fn report_with_bound(&self, bound: Option<LoadBound>) -> TraceReport {
        let d = self.data.lock();
        let rounds: Vec<RoundLoadReport> = d
            .rounds
            .iter()
            .map(|r| {
                let mean = if r.servers == 0 {
                    0.0
                } else {
                    r.total as f64 / r.servers as f64
                };
                RoundLoadReport {
                    round: r.round,
                    servers: r.servers,
                    total: r.total,
                    min: r.min,
                    p50: r.p50,
                    p95: r.p95,
                    max: r.max,
                    balance: if mean > 0.0 { r.max as f64 / mean } else { 1.0 },
                    max_over_bound: bound
                        .as_ref()
                        .map(|b| r.max as f64 / b.predicted.max(f64::MIN_POSITIVE)),
                }
            })
            .collect();
        let spans: Vec<SpanReport> = d
            .spans
            .iter()
            .map(|s| SpanReport {
                round: s.round,
                phase: s.phase,
                vstart: s.vstart,
                vend: s.vend,
            })
            .collect();
        let max_load = d.rounds.iter().map(|r| r.max).max().unwrap_or(0);
        let total_comm = d.rounds.iter().map(|r| r.total).sum();
        let max_over_bound = bound
            .as_ref()
            .map(|b| max_load as f64 / b.predicted.max(f64::MIN_POSITIVE));
        TraceReport {
            bound,
            rounds,
            spans,
            comm: d.comm,
            timeline: d.timeline.clone(),
            max_load,
            total_comm,
            max_over_bound,
        }
    }

    /// [`MemSink::report_with_bound`] without a bound.
    pub fn report(&self) -> TraceReport {
        self.report_with_bound(None)
    }

    /// Export the segregated wall-clock section.
    pub fn wall_report(&self) -> WallReport {
        let d = self.data.lock();
        let spans: Vec<WallSpan> = d
            .spans
            .iter()
            .filter_map(|s| {
                s.wall_ns.map(|wall_ns| WallSpan {
                    round: s.round,
                    phase: s.phase,
                    wall_ns,
                })
            })
            .collect();
        let total_ns = spans.iter().map(|s| s.wall_ns).sum();
        WallReport { spans, total_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, TraceEvent, TraceHandle};
    use std::sync::Arc;

    fn spanned_sink() -> Arc<MemSink> {
        let sink = Arc::new(MemSink::new());
        let h = TraceHandle::to(sink.clone());
        h.record(TraceEvent::Loads {
            round: 0,
            received: &[3, 5, 4, 4],
        });
        h.record(TraceEvent::Phase(Span {
            round: 0,
            phase: Phase::Communication,
            vstart: 0.0,
            vend: 5.0,
            wall_ns: Some(1234),
        }));
        h.record(TraceEvent::Phase(Span {
            round: 0,
            phase: Phase::Barrier,
            vstart: 5.0,
            vend: 5.0,
            wall_ns: None,
        }));
        h.record(TraceEvent::Loads {
            round: 1,
            received: &[2, 2, 2, 2],
        });
        sink
    }

    #[test]
    fn report_totals_cover_all_rounds() {
        let sink = spanned_sink();
        let r = sink.report();
        assert_eq!(r.rounds.len(), 2);
        assert_eq!(r.max_load, 5);
        assert_eq!(r.total_comm, 16 + 8);
        assert!(r.bound.is_none());
        assert!(r.max_over_bound.is_none());
        assert!((r.rounds[0].balance - 5.0 / 4.0).abs() < 1e-9);
        assert!((r.rounds[1].balance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bound_ratios_are_attached_when_configured() {
        let sink = spanned_sink();
        // m = 16, p = 4, exponent 1 → predicted 4.0.
        let r = sink.report_with_bound(Some(LoadBound::new(16, 4, 1.0)));
        let b = r.bound.expect("bound configured");
        assert!((b.predicted - 4.0).abs() < 1e-9);
        assert!((r.max_over_bound.unwrap() - 5.0 / 4.0).abs() < 1e-9);
        assert!((r.rounds[1].max_over_bound.unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_is_segregated_from_the_deterministic_section() {
        let sink = spanned_sink();
        let det = serde_json::to_string(&sink.report()).unwrap();
        assert!(
            !det.contains("wall_ns"),
            "deterministic section must not leak wall-clock fields: {det}"
        );
        let wall = sink.wall_report();
        // Only the timed span appears; the untimed barrier is absent.
        assert_eq!(wall.spans.len(), 1);
        assert_eq!(wall.spans[0].wall_ns, 1234);
        assert_eq!(wall.total_ns, 1234);
    }

    #[test]
    fn deterministic_json_is_stable_across_identical_recordings() {
        let a = serde_json::to_string(&spanned_sink().report()).unwrap();
        let b = serde_json::to_string(&spanned_sink().report()).unwrap();
        assert_eq!(a, b);
    }
}
