//! The in-memory accumulating sink.
//!
//! [`MemSink`] summarizes load histograms *at record time* (the raw
//! per-server vectors are not retained — a trace over thousands of
//! rounds stays small), accumulates comm-counter deltas, and keeps the
//! fault timeline in arrival order. Export is via
//! [`MemSink::report`](crate::report) — see the [`crate::report`]
//! module for the deterministic / wall-clock split.

use crate::{CommCounters, FaultEvent, Span, TraceEvent, TraceSink};
use parking_lot::Mutex;

/// Per-round load-histogram summary, computed when the round's
/// [`TraceEvent::Loads`] event is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct RoundLoads {
    /// Round index.
    pub round: usize,
    /// Number of servers in the histogram.
    pub servers: usize,
    /// `Σ received` — the round's total communication.
    pub total: usize,
    /// Smallest per-server load.
    pub min: usize,
    /// Median per-server load (nearest-rank).
    pub p50: usize,
    /// 95th-percentile per-server load (nearest-rank).
    pub p95: usize,
    /// Largest per-server load — the round's maximum load.
    pub max: usize,
}

/// Everything a [`MemSink`] has accumulated.
#[derive(Default)]
pub(crate) struct TraceData {
    pub spans: Vec<Span>,
    pub rounds: Vec<RoundLoads>,
    pub comm: CommCounters,
    pub timeline: Vec<FaultEvent>,
}

/// A thread-safe accumulating sink: attach with
/// [`TraceHandle::to`](crate::TraceHandle::to), run, then export with
/// the report methods in [`crate::report`].
#[derive(Default)]
pub struct MemSink {
    pub(crate) data: Mutex<TraceData>,
}

/// Nearest-rank percentile of ascending-sorted data, `q` in `(0, 100]`.
fn percentile(sorted: &[usize], q: usize) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// The comm counters accumulated so far.
    pub fn comm(&self) -> CommCounters {
        self.data.lock().comm
    }

    /// A copy of the fault / supervisor timeline so far.
    pub fn timeline(&self) -> Vec<FaultEvent> {
        self.data.lock().timeline.clone()
    }

    /// The per-round load summaries so far.
    pub fn rounds(&self) -> Vec<RoundLoads> {
        self.data.lock().rounds.clone()
    }
}

impl TraceSink for MemSink {
    fn record(&self, ev: &TraceEvent<'_>) {
        let mut d = self.data.lock();
        match ev {
            TraceEvent::Phase(span) => d.spans.push(*span),
            TraceEvent::Loads { round, received } => {
                let mut sorted = received.to_vec();
                sorted.sort_unstable();
                d.rounds.push(RoundLoads {
                    round: *round,
                    servers: sorted.len(),
                    total: sorted.iter().sum(),
                    min: sorted.first().copied().unwrap_or(0),
                    p50: percentile(&sorted, 50),
                    p95: percentile(&sorted, 95),
                    max: sorted.last().copied().unwrap_or(0),
                });
            }
            TraceEvent::Comm(delta) => d.comm.add(delta),
            TraceEvent::Fault(f) => d.timeline.push(*f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceHandle;
    use std::sync::Arc;

    #[test]
    fn percentile_is_nearest_rank() {
        let data: Vec<usize> = (1..=100).collect();
        assert_eq!(percentile(&data, 50), 50);
        assert_eq!(percentile(&data, 95), 95);
        assert_eq!(percentile(&data, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[], 50), 0);
        // Nearest-rank on 4 items: p50 → rank 2, p95 → rank 4.
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 95), 4);
    }

    #[test]
    fn loads_events_are_summarized_at_record_time() {
        let sink = Arc::new(MemSink::new());
        let h = TraceHandle::to(sink.clone());
        h.record(TraceEvent::Loads {
            round: 0,
            received: &[4, 0, 2, 10],
        });
        let rounds = sink.rounds();
        assert_eq!(rounds.len(), 1);
        let r = rounds[0];
        assert_eq!(
            (r.round, r.servers, r.total, r.min, r.max),
            (0, 4, 16, 0, 10)
        );
        assert_eq!(r.p50, 2);
        assert_eq!(r.p95, 10);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = Arc::new(MemSink::new());
        let h = TraceHandle::to(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        h.record(TraceEvent::Comm(CommCounters {
                            sent: 1,
                            ..CommCounters::default()
                        }));
                    }
                });
            }
        });
        assert_eq!(sink.comm().sent, 400);
    }
}
