//! Eventual-consistency and coordination-freeness checkers.
//!
//! A program computes `Q` when *every* run — for every network size,
//! horizontal distribution and fair schedule — outputs exactly `Q(I)`.
//! [`check_eventual_consistency`] samples that space (seeded schedules ×
//! the standard distribution family × network sizes) and reports every
//! discrepancy; [`check_coordination_free`] tests the existential
//! condition: some (ideal) distribution on which the program produces
//! `Q(I)` without reading a single message.

use crate::distribution::{ideal_distribution, standard_family};
use crate::program::{Ctx, TransducerProgram};
use crate::scheduler::{run_heartbeats_only, run_with_ctx, Schedule};
use parlog_relal::instance::Instance;

/// The outcome of a consistency sweep.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Number of runs executed.
    pub runs: usize,
    /// Human-readable description of each failing configuration.
    pub failures: Vec<String>,
}

impl ConsistencyReport {
    /// Did every run produce the expected output?
    pub fn consistent(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweep network sizes × the standard distribution family × schedules and
/// compare every run's output with `expected`. `ctx_of` builds the
/// execution context for a given network size (attach policies here for
/// policy-aware programs — and supply policy-derived distributions via
/// [`check_eventual_consistency_with`] instead when the program's
/// soundness depends on them).
pub fn check_eventual_consistency<P, C>(
    program: &P,
    db: &Instance,
    expected: &Instance,
    network_sizes: &[usize],
    seeds: &[u64],
    ctx_of: C,
) -> ConsistencyReport
where
    P: TransducerProgram + ?Sized,
    C: Fn(usize) -> Ctx,
{
    let mut report = ConsistencyReport {
        runs: 0,
        failures: Vec::new(),
    };
    for &n in network_sizes {
        for (dist_name, shards) in standard_family(db, n, 0x5eed) {
            let mut schedules = vec![Schedule::Fifo, Schedule::Lifo];
            schedules.extend(seeds.iter().map(|&s| Schedule::Random(s)));
            for schedule in schedules {
                report.runs += 1;
                let out = run_with_ctx(program, &shards, ctx_of(n), schedule);
                if out != *expected {
                    report.failures.push(format!(
                        "n={n} dist={dist_name} schedule={schedule:?}: got {} facts, expected {}",
                        out.len(),
                        expected.len()
                    ));
                }
            }
        }
    }
    report
}

/// Like [`check_eventual_consistency`] but over explicitly provided
/// (name, shards, ctx) setups — for policy-aware programs whose
/// distribution must agree with the policy.
pub fn check_eventual_consistency_with<P>(
    program: &P,
    expected: &Instance,
    setups: &[(String, Vec<Instance>, Ctx)],
    seeds: &[u64],
) -> ConsistencyReport
where
    P: TransducerProgram + ?Sized,
{
    let mut report = ConsistencyReport {
        runs: 0,
        failures: Vec::new(),
    };
    for (name, shards, ctx) in setups {
        let mut schedules = vec![Schedule::Fifo, Schedule::Lifo];
        schedules.extend(seeds.iter().map(|&s| Schedule::Random(s)));
        for schedule in schedules {
            report.runs += 1;
            let out = run_with_ctx(program, shards, ctx.clone(), schedule);
            if out != *expected {
                report.failures.push(format!(
                    "setup={name} schedule={schedule:?}: got {} facts, expected {}",
                    out.len(),
                    expected.len()
                ));
            }
        }
    }
    report
}

/// Coordination-freeness test: does the ideal (replicate-all)
/// distribution let the program output `expected` without reading any
/// message? (The definition asks for *some* distribution; replicate-all
/// is the canonical witness — see the proofs of Theorems 5.3/5.8/5.12.)
pub fn check_coordination_free<P>(
    program: &P,
    db: &Instance,
    expected: &Instance,
    n: usize,
    ctx: Ctx,
) -> bool
where
    P: TransducerProgram + ?Sized,
{
    let out = run_heartbeats_only(program, &ideal_distribution(db, n), ctx);
    out == *expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::coordinated::CoordinatedBroadcast;
    use crate::programs::monotone::MonotoneBroadcast;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;
    use parlog_relal::policy::ReplicateAll;
    use std::sync::Arc;

    fn db() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
        ])
    }

    #[test]
    fn monotone_broadcast_is_consistent_and_free() {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = MonotoneBroadcast::new(q);
        let report = check_eventual_consistency(&p, &db(), &expected, &[1, 2, 4], &[0, 1], |_| {
            Ctx::oblivious()
        });
        assert!(report.consistent(), "{:?}", report.failures);
        assert!(report.runs >= 45);
        assert!(check_coordination_free(
            &p,
            &db(),
            &expected,
            3,
            Ctx::oblivious()
        ));
    }

    #[test]
    fn coordinated_broadcast_is_consistent_but_not_free() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = CoordinatedBroadcast::new(q);
        let report =
            check_eventual_consistency(&p, &db(), &expected, &[1, 2, 3], &[0, 1], Ctx::aware);
        assert!(report.consistent(), "{:?}", report.failures);
        // Not coordination-free (for n > 1): the barrier starves without
        // messages.
        assert!(!check_coordination_free(
            &p,
            &db(),
            &expected,
            3,
            Ctx::aware(3)
        ));
    }

    #[test]
    fn detecting_a_broken_program() {
        // The monotone broadcast run on a non-monotone query must fail
        // consistency — the checker's purpose.
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = MonotoneBroadcast::new(q);
        let report =
            check_eventual_consistency(&p, &db(), &expected, &[3], &[0], |_| Ctx::oblivious());
        assert!(!report.consistent());
    }

    #[test]
    fn with_setups_variant() {
        let q = parse_query("H(x) <- E(x,y)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = MonotoneBroadcast::new(q);
        let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 2 }));
        let setups = vec![(
            "ideal-2".to_string(),
            crate::distribution::ideal_distribution(&db(), 2),
            ctx,
        )];
        let report = check_eventual_consistency_with(&p, &expected, &setups, &[3]);
        assert!(report.consistent());
        assert_eq!(report.runs, 3);
    }
}
