//! Horizontal distributions: how the global instance is split over nodes.
//!
//! A horizontal distribution `H` maps each node to a shard such that the
//! union of the shards is the global database (shards may overlap). The
//! transducer semantics quantifies over *all* of them; the generators
//! here produce representative families for the consistency checkers.

use parlog_relal::fastmap::hash_u64;
use parlog_relal::instance::Instance;
use parlog_relal::policy::DistributionPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ideal distribution of Section 5.1: every node holds everything.
pub fn ideal_distribution(db: &Instance, n: usize) -> Vec<Instance> {
    vec![db.clone(); n]
}

/// All data on node 0, the rest empty.
pub fn single_node_distribution(db: &Instance, n: usize) -> Vec<Instance> {
    let mut shards = vec![Instance::new(); n];
    shards[0] = db.clone();
    shards
}

/// A value-oblivious hash partition of the facts (each fact on exactly one
/// node).
pub fn hash_distribution(db: &Instance, n: usize, seed: u64) -> Vec<Instance> {
    let mut shards = vec![Instance::new(); n];
    for f in db.iter() {
        let mut h = hash_u64(seed, f.rel.0 as u64);
        for v in &f.args {
            h = hash_u64(h, v.0);
        }
        shards[(h % n as u64) as usize].insert(f.clone());
    }
    shards
}

/// A random distribution where every fact lands on one or more random
/// nodes (overlap allowed — distributions need not partition).
pub fn random_distribution(db: &Instance, n: usize, seed: u64) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shards = vec![Instance::new(); n];
    for f in db.iter() {
        let copies = 1 + rng.gen_range(0..2usize.min(n));
        let mut placed = 0;
        while placed < copies {
            let node = rng.gen_range(0..n);
            if shards[node].insert(f.clone()) {
                placed += 1;
            }
        }
    }
    shards
}

/// The distribution induced by a policy: `H(κ) = I ∩ rfacts(κ)`, as in the
/// policy-aware setting of Section 5.2.2. Facts no node is responsible for
/// are dropped (a total policy assigns everything somewhere).
pub fn policy_distribution<P: DistributionPolicy + ?Sized>(
    db: &Instance,
    policy: &P,
) -> Vec<Instance> {
    policy.distribute(db)
}

/// A small standard family of distributions used by the consistency
/// checkers: ideal, single-node, and a few hash/random splits.
pub fn standard_family(db: &Instance, n: usize, seed: u64) -> Vec<(String, Vec<Instance>)> {
    vec![
        ("ideal".into(), ideal_distribution(db, n)),
        ("single-node".into(), single_node_distribution(db, n)),
        ("hash-a".into(), hash_distribution(db, n, seed)),
        ("hash-b".into(), hash_distribution(db, n, seed ^ 0xdead)),
        ("random".into(), random_distribution(db, n, seed ^ 0xbeef)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;

    fn db() -> Instance {
        Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])))
    }

    #[test]
    fn unions_reassemble_global_instance() {
        let d = db();
        for (name, shards) in standard_family(&d, 4, 3) {
            let mut union = Instance::new();
            for s in &shards {
                union.extend_from(s);
            }
            assert_eq!(union, d, "distribution {name}");
            assert_eq!(shards.len(), 4, "distribution {name}");
        }
    }

    #[test]
    fn hash_distribution_partitions() {
        let shards = hash_distribution(&db(), 4, 1);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn ideal_replicates() {
        let shards = ideal_distribution(&db(), 3);
        assert!(shards.iter().all(|s| s.len() == 20));
    }

    #[test]
    fn policy_distribution_matches_policy() {
        use parlog_relal::policy::HashPolicy;
        let p = HashPolicy::new(3, 9);
        let shards = policy_distribution(&db(), &p);
        for (node, shard) in shards.iter().enumerate() {
            for f in shard.iter() {
                assert!(p.responsible(node, f));
            }
        }
    }
}
