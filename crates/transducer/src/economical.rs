//! Economical broadcasting for full conjunctive queries without
//! self-joins — the Ketsman–Neven direction discussed in Section 6.
//!
//! "Ketsman and Neven investigate more economical broadcasting strategies
//! for full conjunctive queries without self-joins that only transmit a
//! part of the local data necessary to evaluate the query at hand."
//!
//! Our strategy transmits only the facts that can possibly participate in
//! a valuation: facts whose relation occurs in the query and which match
//! some body atom (constants and repeated-variable patterns respected).
//! For full CQs without self-joins this is complete — every valuation's
//! required facts are atom-matching — while everything else stays local.
//! The saving is measured against [`crate::programs::monotone::MonotoneBroadcast`]
//! via [`crate::scheduler::SimRun::facts_broadcast`].

use crate::network::NodeState;
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_relal::eval::eval_query;
use parlog_relal::fact::Fact;
use parlog_relal::query::ConjunctiveQuery;

/// Broadcast only query-relevant facts (class F0, for monotone CQs).
#[derive(Clone)]
pub struct EconomicalBroadcast {
    query: ConjunctiveQuery,
    name: String,
}

impl EconomicalBroadcast {
    /// Wrap a full CQ without self-joins.
    ///
    /// # Panics
    /// Panics if the query has a self-join or is not full — the regime the
    /// strategy is proven complete for.
    pub fn new(query: ConjunctiveQuery) -> EconomicalBroadcast {
        assert!(
            !query.has_self_join(),
            "economical broadcasting targets self-join-free queries"
        );
        assert!(
            query.is_full(),
            "economical broadcasting targets full queries"
        );
        assert!(query.is_plain_cq(), "plain CQs only");
        EconomicalBroadcast {
            query,
            name: "economical-broadcast".into(),
        }
    }

    /// Is the fact relevant: does it match some body atom?
    pub fn relevant(&self, f: &Fact) -> bool {
        self.query.body.iter().any(|a| a.matches(f))
    }

    fn emit(&self, node: &mut NodeState) {
        let result = eval_query(&self.query, &node.local);
        node.output_all(&result);
    }
}

impl TransducerProgram for EconomicalBroadcast {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, node: &mut NodeState, _ctx: &Ctx) -> Broadcast {
        self.emit(node);
        node.local
            .iter()
            .filter(|f| self.relevant(f))
            .cloned()
            .collect()
    }

    fn on_fact(&self, node: &mut NodeState, _from: usize, fact: &Fact, _ctx: &Ctx) -> Broadcast {
        if node.local.insert(fact.clone()) {
            self.emit(node);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::hash_distribution;
    use crate::programs::monotone::MonotoneBroadcast;
    use crate::scheduler::{Schedule, SimRun};
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;

    fn q() -> ConjunctiveQuery {
        parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap()
    }

    fn db_with_noise() -> Instance {
        let mut db = Instance::new();
        for i in 0..20u64 {
            db.insert(fact("R", &[i, i + 100]));
            db.insert(fact("S", &[i + 100, i + 200]));
            // Irrelevant relation and non-matching facts.
            db.insert(fact("Noise", &[i, i, i]));
        }
        db.insert(fact("R", &[1, 2, 3])); // arity mismatch: irrelevant
        db
    }

    #[test]
    fn computes_the_query() {
        let db = db_with_noise();
        let expected = parlog_relal::eval::eval_query(&q(), &db);
        assert_eq!(expected.len(), 20);
        let p = EconomicalBroadcast::new(q());
        let dist = hash_distribution(&db, 3, 5);
        let mut run = SimRun::new(&p, &dist, Ctx::oblivious());
        run.run(&p, Schedule::Random(1));
        assert_eq!(run.outputs(), expected);
    }

    #[test]
    fn transmits_strictly_less_than_naive_broadcast() {
        let db = db_with_noise();
        let dist = hash_distribution(&db, 3, 5);

        let eco = EconomicalBroadcast::new(q());
        let mut eco_run = SimRun::new(&eco, &dist, Ctx::oblivious());
        eco_run.run(&eco, Schedule::Fifo);

        let naive = MonotoneBroadcast::new(q());
        let mut naive_run = SimRun::new(&naive, &dist, Ctx::oblivious());
        naive_run.run(&naive, Schedule::Fifo);

        assert_eq!(eco_run.outputs(), naive_run.outputs());
        assert!(
            eco_run.facts_broadcast < naive_run.facts_broadcast,
            "economical {} vs naive {}",
            eco_run.facts_broadcast,
            naive_run.facts_broadcast
        );
        // Exactly the noise is saved: 40 relevant facts.
        assert_eq!(eco_run.facts_broadcast, 40);
    }

    #[test]
    fn constants_tighten_relevance() {
        let qc = parse_query("H(x,y) <- R(7, x), S(x, y)").unwrap();
        let p = EconomicalBroadcast::new(qc);
        assert!(p.relevant(&fact("R", &[7, 1])));
        assert!(!p.relevant(&fact("R", &[8, 1])));
        assert!(p.relevant(&fact("S", &[1, 2])));
    }

    #[test]
    #[should_panic(expected = "self-join")]
    fn self_joins_rejected() {
        EconomicalBroadcast::new(parse_query("H(x,y,z) <- R(x,y), R(y,z)").unwrap());
    }

    #[test]
    #[should_panic(expected = "full")]
    fn non_full_rejected() {
        EconomicalBroadcast::new(parse_query("H(x) <- R(x,y), S(y,z)").unwrap());
    }
}
