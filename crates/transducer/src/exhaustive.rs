//! Exhaustive schedule exploration — model checking tiny transducer
//! networks.
//!
//! The semantics quantifies over **all** fair runs; the seeded scheduler
//! samples them, while this module *enumerates* them for small inputs:
//! a DFS over the nondeterministic delivery choices, with memoization on
//! the global state (node states + multiset buffers). It verifies, for
//! every reachable quiescent state, that the union of outputs equals the
//! expected query answer — turning Theorem 5.3-style claims into
//! machine-checked facts on small instances — and, along every prefix,
//! that outputs stay sound (never retracted facts are never wrong).

use crate::network::NodeState;
use crate::program::{Ctx, TransducerProgram};
use parlog_relal::fact::Fact;
use parlog_relal::fastmap::{fxset, FxSet};
use parlog_relal::instance::Instance;

/// Outcome of the exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Distinct global states visited.
    pub states: usize,
    /// Quiescent states reached.
    pub quiescent: usize,
    /// Violations found (empty = verified).
    pub violations: Vec<String>,
}

impl ExplorationReport {
    /// Did every run end with the expected output and stay sound?
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A canonical encoding of a global state for memoization.
///
/// Keys are memoization tokens, never shown to a human: facts are
/// encoded as raw interned ids. Going through `Display` here would take
/// the global interner's `RwLock` (and allocate a `String`) once per
/// fact per explored state — the single hottest formatting path in the
/// whole exhaustive checker.
fn encode_state(nodes: &[NodeState], buffers: &[Vec<(usize, Fact)>]) -> String {
    use std::fmt::Write;
    fn push_fact(s: &mut String, f: &Fact) {
        let _ = write!(s, "{}(", f.rel.0);
        for a in &f.args {
            let _ = write!(s, "{},", a.0);
        }
        s.push(')');
    }
    fn push_facts(s: &mut String, facts: &[Fact]) {
        for f in facts {
            push_fact(s, f);
        }
    }
    let mut s = String::new();
    for n in nodes {
        let _ = write!(s, "N{}:", n.id);
        push_facts(&mut s, &n.local.sorted_facts());
        s.push('|');
        push_facts(&mut s, &n.aux.sorted_facts());
        s.push('|');
        push_facts(&mut s, &n.output_so_far().sorted_facts());
        s.push(';');
    }
    for (i, b) in buffers.iter().enumerate() {
        let mut msgs: Vec<(usize, &Fact)> = b.iter().map(|(sender, m)| (*sender, m)).collect();
        msgs.sort();
        let _ = write!(s, "B{i}:");
        for (sender, m) in msgs {
            let _ = write!(s, "{sender}->");
            push_fact(&mut s, m);
        }
        s.push(';');
    }
    s
}

/// Explore every delivery order of `program` on `shards` (message
/// *reordering* is covered by exploring which buffered message is
/// consumed next). `max_states` bounds the search; exceeding it is
/// reported as a violation so tests fail loudly rather than silently
/// passing on a truncated space.
pub fn explore_all_schedules<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    expected: &Instance,
    max_states: usize,
) -> ExplorationReport {
    let n = shards.len();
    let mut nodes: Vec<NodeState> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| NodeState::new(i, s.clone()))
        .collect();
    let mut buffers: Vec<Vec<(usize, Fact)>> = vec![Vec::new(); n];
    let mut sent: Vec<FxSet<Fact>> = vec![fxset(); n];

    // Init phase (deterministic).
    for i in 0..n {
        let out = program.init(&mut nodes[i], &ctx);
        for f in out {
            if sent[i].insert(f.clone()) {
                for (dest, buf) in buffers.iter_mut().enumerate() {
                    if dest != i {
                        buf.push((i, f.clone()));
                    }
                }
            }
        }
    }

    let mut report = ExplorationReport {
        states: 0,
        quiescent: 0,
        violations: Vec::new(),
    };
    let mut seen: FxSet<String> = fxset();

    // DFS over (nodes, buffers, sent) states.
    #[allow(clippy::too_many_arguments)]
    fn dfs<P: TransducerProgram + ?Sized>(
        program: &P,
        ctx: &Ctx,
        nodes: &mut [NodeState],
        buffers: &mut [Vec<(usize, Fact)>],
        sent: &mut [FxSet<Fact>],
        expected: &Instance,
        seen: &mut FxSet<String>,
        report: &mut ExplorationReport,
        max_states: usize,
    ) {
        if report.states >= max_states {
            if report.violations.is_empty()
                || !report
                    .violations
                    .last()
                    .unwrap()
                    .starts_with("state budget")
            {
                report
                    .violations
                    .push(format!("state budget {max_states} exhausted"));
            }
            return;
        }
        let key = encode_state(nodes, buffers);
        if !seen.insert(key) {
            return;
        }
        report.states += 1;

        // Soundness along every prefix: outputs ⊆ expected.
        let mut outputs = Instance::new();
        for node in nodes.iter() {
            outputs.extend_from(node.output_so_far());
        }
        if !outputs.is_subset_of(expected) {
            report.violations.push(format!(
                "unsound prefix output {:?}",
                outputs.difference(expected).sorted_facts()
            ));
            return;
        }

        let choices: Vec<(usize, usize)> = (0..buffers.len())
            .flat_map(|i| (0..buffers[i].len()).map(move |j| (i, j)))
            .collect();
        if choices.is_empty() {
            // Quiescent (set-driven programs have no heartbeat effects by
            // construction here; heartbeat-using programs are sampled by
            // the scheduler instead).
            report.quiescent += 1;
            if outputs != *expected {
                report.violations.push(format!(
                    "quiescent output mismatch: got {} facts, expected {}",
                    outputs.len(),
                    expected.len()
                ));
            }
            return;
        }
        for (node_idx, msg_idx) in choices {
            // Deliver.
            let (from, fact) = buffers[node_idx][msg_idx].clone();
            let mut nodes2 = nodes.to_vec();
            let mut buffers2 = buffers.to_vec();
            let mut sent2 = sent.to_vec();
            buffers2[node_idx].remove(msg_idx);
            let out = program.on_fact(&mut nodes2[node_idx], from, &fact, ctx);
            for f in out {
                if sent2[node_idx].insert(f.clone()) {
                    for (dest, buf) in buffers2.iter_mut().enumerate() {
                        if dest != node_idx {
                            buf.push((node_idx, f.clone()));
                        }
                    }
                }
            }
            dfs(
                program,
                ctx,
                &mut nodes2,
                &mut buffers2,
                &mut sent2,
                expected,
                seen,
                report,
                max_states,
            );
        }
    }

    dfs(
        program,
        &ctx,
        &mut nodes,
        &mut buffers,
        &mut sent,
        expected,
        &mut seen,
        &mut report,
        max_states,
    );
    report
}

/// Outcome of exhaustive fault-schedule exploration.
#[derive(Debug, Clone)]
pub struct FaultExplorationReport {
    /// Distinct (state, fault-budget) configurations visited.
    pub states: usize,
    /// Quiescent states reached on fault-free paths.
    pub quiescent_clean: usize,
    /// Quiescent states reached on paths where at least one message was
    /// dropped.
    pub quiescent_lossy: usize,
    /// Violations found (empty = verified).
    pub violations: Vec<String>,
}

impl FaultExplorationReport {
    /// Did every explored run satisfy its obligation — exact output on
    /// fault-free paths, soundness everywhere?
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Enumerate every small **fault schedule** on top of every delivery
/// order: at each state the adversary may, besides delivering any
/// buffered message, *duplicate* one (up to `max_dups` times) or *drop*
/// one (up to `max_drops` times). Delay needs no extra actions — it is
/// already subsumed by delivery-order nondeterminism.
///
/// Obligations checked on every path:
///
/// * **soundness** along every prefix: outputs ⊆ `expected`;
/// * **exactness** in quiescent states of paths with no drops —
///   duplication and reordering are within the survey's model, so the
///   output must still be exactly `expected`;
/// * lossy paths (≥ 1 drop) only owe soundness; their quiescent states
///   are tallied separately in `quiescent_lossy`.
///
/// This machine-checks, on small instances, that duplication-tolerance
/// is a *theorem* of the program (all schedules), not an artifact of the
/// sampled ones — and that no fault schedule whatsoever can make it
/// output a wrong fact.
pub fn explore_fault_schedules<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    expected: &Instance,
    max_states: usize,
    max_drops: usize,
    max_dups: usize,
) -> FaultExplorationReport {
    let n = shards.len();
    let mut nodes: Vec<NodeState> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| NodeState::new(i, s.clone()))
        .collect();
    let mut buffers: Vec<Vec<(usize, Fact)>> = vec![Vec::new(); n];
    let mut sent: Vec<FxSet<Fact>> = vec![fxset(); n];
    for i in 0..n {
        let out = program.init(&mut nodes[i], &ctx);
        for f in out {
            if sent[i].insert(f.clone()) {
                for (dest, buf) in buffers.iter_mut().enumerate() {
                    if dest != i {
                        buf.push((i, f.clone()));
                    }
                }
            }
        }
    }

    let mut report = FaultExplorationReport {
        states: 0,
        quiescent_clean: 0,
        quiescent_lossy: 0,
        violations: Vec::new(),
    };
    let mut seen: FxSet<String> = fxset();

    struct Search<'a, P: ?Sized> {
        program: &'a P,
        ctx: Ctx,
        expected: &'a Instance,
        seen: &'a mut FxSet<String>,
        report: &'a mut FaultExplorationReport,
        max_states: usize,
    }

    /// One adversary move on a buffered message.
    #[derive(Clone, Copy)]
    enum Move {
        Deliver(usize, usize),
        Drop(usize, usize),
        Duplicate(usize, usize),
    }

    fn dfs<P: TransducerProgram + ?Sized>(
        s: &mut Search<'_, P>,
        nodes: &[NodeState],
        buffers: &[Vec<(usize, Fact)>],
        sent: &[FxSet<Fact>],
        drops_left: usize,
        dups_left: usize,
        lossy: bool,
    ) {
        if s.report.states >= s.max_states {
            if !s
                .report
                .violations
                .last()
                .is_some_and(|v| v.starts_with("state budget"))
            {
                s.report
                    .violations
                    .push(format!("state budget {} exhausted", s.max_states));
            }
            return;
        }
        let key = format!(
            "{}#d{drops_left}u{dups_left}l{}",
            encode_state(nodes, buffers),
            lossy as u8
        );
        if !s.seen.insert(key) {
            return;
        }
        s.report.states += 1;

        let mut outputs = Instance::new();
        for node in nodes {
            outputs.extend_from(node.output_so_far());
        }
        if !outputs.is_subset_of(s.expected) {
            s.report.violations.push(format!(
                "unsound prefix output under faults {:?}",
                outputs.difference(s.expected).sorted_facts()
            ));
            return;
        }

        let mut moves: Vec<Move> = Vec::new();
        for (i, buf) in buffers.iter().enumerate() {
            for j in 0..buf.len() {
                moves.push(Move::Deliver(i, j));
                if dups_left > 0 {
                    moves.push(Move::Duplicate(i, j));
                }
                if drops_left > 0 {
                    moves.push(Move::Drop(i, j));
                }
            }
        }
        if moves.is_empty() {
            if lossy {
                s.report.quiescent_lossy += 1; // soundness already checked
            } else {
                s.report.quiescent_clean += 1;
                if outputs != *s.expected {
                    s.report.violations.push(format!(
                        "quiescent mismatch on drop-free fault schedule: \
                         got {} facts, expected {}",
                        outputs.len(),
                        s.expected.len()
                    ));
                }
            }
            return;
        }
        for mv in moves {
            let mut nodes2 = nodes.to_vec();
            let mut buffers2 = buffers.to_vec();
            let mut sent2 = sent.to_vec();
            let (drops2, dups2, lossy2) = match mv {
                Move::Deliver(i, j) => {
                    let (from, fact) = buffers2[i].remove(j);
                    let out = s.program.on_fact(&mut nodes2[i], from, &fact, &s.ctx);
                    for f in out {
                        if sent2[i].insert(f.clone()) {
                            for (dest, buf) in buffers2.iter_mut().enumerate() {
                                if dest != i {
                                    buf.push((i, f.clone()));
                                }
                            }
                        }
                    }
                    (drops_left, dups_left, lossy)
                }
                Move::Drop(i, j) => {
                    buffers2[i].remove(j);
                    (drops_left - 1, dups_left, true)
                }
                Move::Duplicate(i, j) => {
                    let copy = buffers2[i][j].clone();
                    buffers2[i].push(copy);
                    (drops_left, dups_left - 1, lossy)
                }
            };
            dfs(s, &nodes2, &buffers2, &sent2, drops2, dups2, lossy2);
        }
    }

    let mut search = Search {
        program,
        ctx,
        expected,
        seen: &mut seen,
        report: &mut report,
        max_states,
    };
    dfs(
        &mut search,
        &nodes,
        &buffers,
        &sent,
        max_drops,
        max_dups,
        false,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::hash_distribution;
    use crate::programs::coordinated::CoordinatedBroadcast;
    use crate::programs::monotone::MonotoneBroadcast;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;

    #[test]
    fn monotone_broadcast_verified_exhaustively() {
        // Tiny instance, 2 nodes: the full schedule space is explored.
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 200_000);
        assert!(report.verified(), "{:?}", report.violations);
        assert!(report.quiescent >= 1);
        assert!(report.states > 1);
    }

    #[test]
    fn coordinated_broadcast_verified_exhaustively() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report = explore_all_schedules(&p, &shards, Ctx::aware(2), &expected, 500_000);
        assert!(report.verified(), "{:?}", report.violations);
    }

    #[test]
    fn broken_program_is_caught() {
        // Monotone broadcast on a NON-monotone query: some schedule
        // outputs a fact that the full instance refutes — the explorer
        // must find the unsound prefix.
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]), // closes the triangle centrally
        ]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        assert!(expected.is_empty());
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 2);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 200_000);
        assert!(!report.verified());
    }

    #[test]
    fn fault_schedules_monotone_duplication_is_harmless() {
        // Every schedule with up to 2 adversarial duplications still ends
        // in exactly the expected output: duplication-tolerance of the
        // monotone broadcast as a machine-checked theorem (small scope).
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report =
            explore_fault_schedules(&p, &shards, Ctx::oblivious(), &expected, 400_000, 0, 2);
        assert!(report.verified(), "{:?}", report.violations);
        assert!(report.quiescent_clean >= 1);
        assert_eq!(report.quiescent_lossy, 0, "no drops were allowed");
    }

    #[test]
    fn fault_schedules_drops_stay_sound() {
        // With 1 adversarial drop allowed, lossy quiescent states exist
        // (completeness can break) but soundness never does.
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report =
            explore_fault_schedules(&p, &shards, Ctx::oblivious(), &expected, 400_000, 1, 0);
        assert!(report.verified(), "{:?}", report.violations);
        assert!(
            report.quiescent_lossy >= 1,
            "some path must actually use the drop budget"
        );
        assert!(report.quiescent_clean >= 1);
    }

    #[test]
    fn fault_schedules_catch_unsound_program_under_duplication() {
        // A counting-based program that outputs a fact the second time it
        // sees it is *wrong* under duplication; the explorer must find
        // the schedule that exposes it.
        use crate::program::Broadcast;
        struct CountTwice;
        impl TransducerProgram for CountTwice {
            fn name(&self) -> &str {
                "count-twice"
            }
            fn init(&self, node: &mut NodeState, _ctx: &Ctx) -> Broadcast {
                node.local.iter().cloned().collect()
            }
            fn on_fact(
                &self,
                node: &mut NodeState,
                _from: usize,
                f: &Fact,
                _ctx: &Ctx,
            ) -> Broadcast {
                // Non-idempotent: a duplicate delivery looks like a second
                // distinct derivation.
                if !node.aux.insert(f.clone()) {
                    node.output(fact("Twice", &[1]));
                }
                Vec::new()
            }
        }
        let db = Instance::from_facts([fact("E", &[1])]);
        let expected = Instance::new(); // nothing arrives twice legitimately
        let shards = vec![db, Instance::new()];
        let report = explore_fault_schedules(
            &CountTwice,
            &shards,
            Ctx::oblivious(),
            &expected,
            100_000,
            0,
            1,
        );
        assert!(
            !report.verified(),
            "duplication must expose the non-idempotent output"
        );
    }

    #[test]
    fn three_node_exploration_terminates() {
        let q = parse_query("H(x) <- E(x,y)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[3, 4])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 3, 5);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 500_000);
        assert!(report.verified(), "{:?}", report.violations);
    }
}
