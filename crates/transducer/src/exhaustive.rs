//! Exhaustive schedule exploration — model checking tiny transducer
//! networks.
//!
//! The semantics quantifies over **all** fair runs; the seeded scheduler
//! samples them, while this module *enumerates* them for small inputs:
//! a DFS over the nondeterministic delivery choices, with memoization on
//! the global state (node states + multiset buffers). It verifies, for
//! every reachable quiescent state, that the union of outputs equals the
//! expected query answer — turning Theorem 5.3-style claims into
//! machine-checked facts on small instances — and, along every prefix,
//! that outputs stay sound (never retracted facts are never wrong).

use crate::network::NodeState;
use crate::program::{Ctx, TransducerProgram};
use parlog_relal::fact::Fact;
use parlog_relal::fastmap::{fxset, FxSet};
use parlog_relal::instance::Instance;

/// Outcome of the exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Distinct global states visited.
    pub states: usize,
    /// Quiescent states reached.
    pub quiescent: usize,
    /// Violations found (empty = verified).
    pub violations: Vec<String>,
}

impl ExplorationReport {
    /// Did every run end with the expected output and stay sound?
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A canonical encoding of a global state for memoization.
fn encode_state(nodes: &[NodeState], buffers: &[Vec<(usize, Fact)>]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for n in nodes {
        let _ = write!(
            s,
            "N{}:{:?}|{:?}|{:?};",
            n.id,
            n.local.sorted_facts(),
            n.aux.sorted_facts(),
            n.output_so_far().sorted_facts()
        );
    }
    for (i, b) in buffers.iter().enumerate() {
        let mut msgs: Vec<String> = b.iter().map(|(f, m)| format!("{f}->{m}")).collect();
        msgs.sort();
        let _ = write!(s, "B{i}:{msgs:?};");
    }
    s
}

/// Explore every delivery order of `program` on `shards` (message
/// *reordering* is covered by exploring which buffered message is
/// consumed next). `max_states` bounds the search; exceeding it is
/// reported as a violation so tests fail loudly rather than silently
/// passing on a truncated space.
pub fn explore_all_schedules<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    expected: &Instance,
    max_states: usize,
) -> ExplorationReport {
    let n = shards.len();
    let mut nodes: Vec<NodeState> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| NodeState::new(i, s.clone()))
        .collect();
    let mut buffers: Vec<Vec<(usize, Fact)>> = vec![Vec::new(); n];
    let mut sent: Vec<FxSet<Fact>> = vec![fxset(); n];

    // Init phase (deterministic).
    for i in 0..n {
        let out = program.init(&mut nodes[i], &ctx);
        for f in out {
            if sent[i].insert(f.clone()) {
                for (dest, buf) in buffers.iter_mut().enumerate() {
                    if dest != i {
                        buf.push((i, f.clone()));
                    }
                }
            }
        }
    }

    let mut report = ExplorationReport {
        states: 0,
        quiescent: 0,
        violations: Vec::new(),
    };
    let mut seen: FxSet<String> = fxset();

    // DFS over (nodes, buffers, sent) states.
    #[allow(clippy::too_many_arguments)]
    fn dfs<P: TransducerProgram + ?Sized>(
        program: &P,
        ctx: &Ctx,
        nodes: &mut [NodeState],
        buffers: &mut [Vec<(usize, Fact)>],
        sent: &mut [FxSet<Fact>],
        expected: &Instance,
        seen: &mut FxSet<String>,
        report: &mut ExplorationReport,
        max_states: usize,
    ) {
        if report.states >= max_states {
            if report.violations.is_empty()
                || !report
                    .violations
                    .last()
                    .unwrap()
                    .starts_with("state budget")
            {
                report
                    .violations
                    .push(format!("state budget {max_states} exhausted"));
            }
            return;
        }
        let key = encode_state(nodes, buffers);
        if !seen.insert(key) {
            return;
        }
        report.states += 1;

        // Soundness along every prefix: outputs ⊆ expected.
        let mut outputs = Instance::new();
        for node in nodes.iter() {
            outputs.extend_from(node.output_so_far());
        }
        if !outputs.is_subset_of(expected) {
            report.violations.push(format!(
                "unsound prefix output {:?}",
                outputs.difference(expected).sorted_facts()
            ));
            return;
        }

        let choices: Vec<(usize, usize)> = (0..buffers.len())
            .flat_map(|i| (0..buffers[i].len()).map(move |j| (i, j)))
            .collect();
        if choices.is_empty() {
            // Quiescent (set-driven programs have no heartbeat effects by
            // construction here; heartbeat-using programs are sampled by
            // the scheduler instead).
            report.quiescent += 1;
            if outputs != *expected {
                report.violations.push(format!(
                    "quiescent output mismatch: got {} facts, expected {}",
                    outputs.len(),
                    expected.len()
                ));
            }
            return;
        }
        for (node_idx, msg_idx) in choices {
            // Deliver.
            let (from, fact) = buffers[node_idx][msg_idx].clone();
            let mut nodes2 = nodes.to_vec();
            let mut buffers2 = buffers.to_vec();
            let mut sent2 = sent.to_vec();
            buffers2[node_idx].remove(msg_idx);
            let out = program.on_fact(&mut nodes2[node_idx], from, &fact, ctx);
            for f in out {
                if sent2[node_idx].insert(f.clone()) {
                    for (dest, buf) in buffers2.iter_mut().enumerate() {
                        if dest != node_idx {
                            buf.push((node_idx, f.clone()));
                        }
                    }
                }
            }
            dfs(
                program,
                ctx,
                &mut nodes2,
                &mut buffers2,
                &mut sent2,
                expected,
                seen,
                report,
                max_states,
            );
        }
    }

    dfs(
        program,
        &ctx,
        &mut nodes,
        &mut buffers,
        &mut sent,
        expected,
        &mut seen,
        &mut report,
        max_states,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::hash_distribution;
    use crate::programs::coordinated::CoordinatedBroadcast;
    use crate::programs::monotone::MonotoneBroadcast;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;

    #[test]
    fn monotone_broadcast_verified_exhaustively() {
        // Tiny instance, 2 nodes: the full schedule space is explored.
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 200_000);
        assert!(report.verified(), "{:?}", report.violations);
        assert!(report.quiescent >= 1);
        assert!(report.states > 1);
    }

    #[test]
    fn coordinated_broadcast_verified_exhaustively() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 1);
        let report = explore_all_schedules(&p, &shards, Ctx::aware(2), &expected, 500_000);
        assert!(report.verified(), "{:?}", report.violations);
    }

    #[test]
    fn broken_program_is_caught() {
        // Monotone broadcast on a NON-monotone query: some schedule
        // outputs a fact that the full instance refutes — the explorer
        // must find the unsound prefix.
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let db = Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]), // closes the triangle centrally
        ]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        assert!(expected.is_empty());
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 2, 2);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 200_000);
        assert!(!report.verified());
    }

    #[test]
    fn three_node_exploration_terminates() {
        let q = parse_query("H(x) <- E(x,y)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[3, 4])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 3, 5);
        let report = explore_all_schedules(&p, &shards, Ctx::oblivious(), &expected, 500_000);
        assert!(report.verified(), "{:?}", report.violations);
    }
}
