//! Fault-aware execution of transducer networks — the chaos half of the
//! scheduler.
//!
//! The survey's asynchronous model permits arbitrary *reordering* and
//! *delay* but assumes messages are never lost and nodes never fail.
//! This module makes each assumption injectable via a seeded
//! [`parlog_faults::FaultPlan`], so the CALM-style guarantees
//! can be tested per fault class:
//!
//! * **reorder / duplicate / delay** — within the model; monotone (F0)
//!   programs must produce identical output.
//! * **loss** — outside the model; breaks completeness, never soundness.
//! * **crash-stop / crash-recover** — outside the model; a crash loses
//!   the node's volatile state and every message still in flight to or
//!   from it. Crash-recover nodes resume from their durable snapshot
//!   (the initial shard) after a downtime and re-run `init`,
//!   rebroadcasting their data.
//! * **ack/retransmit** — the *explicit coordination* that buys back
//!   reliability under loss: every delivery is acknowledged and dropped
//!   copies are retransmitted with exponential backoff, all of it
//!   counted, so the price of reliability is measurable.
//!
//! The fault-free run is the exact `plan = None` special case of this
//! code path (regression-tested): there is one router, not two.

use parlog_faults::{CrashKind, FaultPlan, MessageFate};
use serde::Serialize;

/// Liveness of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Processing normally.
    Up,
    /// Crashed, recovers at the given clock value.
    Down {
        /// Clock value at which the node restarts from its snapshot.
        until: usize,
    },
    /// Crash-stop: never returns.
    Stopped,
}

impl Health {
    /// Can the node currently take transitions?
    pub fn is_up(self) -> bool {
        matches!(self, Health::Up)
    }
}

/// Everything the injector did during one run — the observable cost of
/// the fault plan (and of the coordination that compensates for it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Message copies silently dropped.
    pub dropped: usize,
    /// Extra copies enqueued by duplication.
    pub duplicated: usize,
    /// Copies held back by the delay fault.
    pub delayed: usize,
    /// Copies enqueued at a random position (reordering).
    pub reordered: usize,
    /// Copies destroyed because an endpoint was down or crashing.
    pub lost_in_crash: usize,
    /// Crash events fired.
    pub crashes: usize,
    /// Crash-recover restarts completed.
    pub recoveries: usize,
    /// Copies re-sent by the ack/retransmit protocol.
    pub retransmissions: usize,
    /// Copies whose payload was tampered with in transit (Byzantine
    /// corruption faults).
    pub corrupted: usize,
    /// Acknowledgements sent (one per delivery in reliable mode).
    pub acks: usize,
    /// Messages processed by a deliberately slowed (straggler) node —
    /// each one stalled its node's progress (threaded runtime only;
    /// the simulator accounts stragglers in MPC tail time instead).
    pub straggler_stalls: usize,
    /// Copies held at the source because a partition epoch severed
    /// their link; flushed on heal (never lost).
    pub partitioned: usize,
}

impl FaultStats {
    /// Messages attributable to explicit coordination: acks plus
    /// retransmissions. Zero in a non-reliable run.
    pub fn coordination_messages(&self) -> usize {
        self.acks + self.retransmissions
    }

    /// Project the injector's tallies onto the trace-layer counter
    /// shape, for cross-validating an attached sink against the
    /// injector's own books. Fields the injector does not track
    /// (`sent`, `delivered`, `bytes`) stay zero; copies destroyed by a
    /// crash land in `wasted`; partition holds land in `delayed` (a
    /// hold-and-flush is a delay on the wire).
    pub fn as_comm_counters(&self) -> parlog_trace::CommCounters {
        parlog_trace::CommCounters {
            dropped: self.dropped as u64,
            duplicated: self.duplicated as u64,
            delayed: (self.delayed + self.partitioned) as u64,
            reordered: self.reordered as u64,
            retransmitted: self.retransmissions as u64,
            acks: self.acks as u64,
            wasted: self.lost_in_crash as u64,
            ..parlog_trace::CommCounters::default()
        }
    }
}

/// A message copy parked until the clock reaches `release`: either a
/// delayed delivery or a scheduled retransmission.
#[derive(Debug, Clone)]
pub(crate) struct ParkedMsg<M> {
    pub release: usize,
    pub dest: usize,
    pub from: usize,
    pub msg: M,
    /// Send attempts so far (retransmissions only; 0 for pure delays).
    pub attempts: u32,
}

/// The fault-side state of a run: injector, clocks, queues, health.
/// Embedded in the simulator's `SimRun`; `None`-plan runs keep it inert.
pub(crate) struct FaultState<M> {
    pub injector: Option<parlog_faults::FaultInjector>,
    /// Virtual time: delivered messages, plus jumps at drain boundaries.
    pub clock: usize,
    pub health: Vec<Health>,
    /// Copies held back by the delay fault.
    pub delayed: Vec<ParkedMsg<M>>,
    /// Sender-side retransmission queue (reliable mode).
    pub retrans: Vec<ParkedMsg<M>>,
    /// Which plan crash events have fired already.
    pub fired: Vec<bool>,
    pub stats: FaultStats,
}

impl<M: Clone> FaultState<M> {
    pub fn inert(n: usize) -> FaultState<M> {
        FaultState {
            injector: None,
            clock: 0,
            health: vec![Health::Up; n],
            delayed: Vec::new(),
            retrans: Vec::new(),
            fired: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    pub fn install(&mut self, plan: &FaultPlan) {
        self.fired = vec![false; plan.crashes.len()];
        self.injector = Some(plan.injector());
    }

    pub fn plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(|i| i.plan())
    }

    /// Is the ack/retransmit protocol active?
    pub fn reliable(&self) -> Option<parlog_faults::RetransmitPolicy> {
        self.plan().and_then(|p| p.retransmit)
    }

    /// Decide the fate of one copy. `Deliver` when no injector is
    /// installed — the fault-free fast path.
    pub fn fate(&mut self) -> MessageFate {
        match &mut self.injector {
            None => MessageFate::Deliver,
            Some(inj) => inj.fate(),
        }
    }

    /// The installed partition schedule, if any.
    pub fn partition(&self) -> Option<&parlog_faults::PartitionPlan> {
        self.plan().and_then(|p| p.partition.as_ref())
    }

    /// If an open partition epoch severs `from → to` at the current
    /// clock, the heal clock at which a held copy releases. Checked
    /// *before* the injector's dice: a severed link delivers nothing,
    /// so there is no fate to roll.
    pub fn severed(&self, from: usize, to: usize) -> Option<usize> {
        self.partition()
            .and_then(|p| p.severed(self.clock, from, to))
    }

    /// Park one copy held by a partition until the severing epoch
    /// heals. `usize::MAX` releases never fire (permanent partition):
    /// the copy stays parked but does not count as pending work, so a
    /// deadlocked run can still quiesce and be observed.
    pub fn hold_partitioned(&mut self, from: usize, dest: usize, msg: M, until: usize) {
        self.stats.partitioned += 1;
        self.delayed.push(ParkedMsg {
            release: until,
            dest,
            from,
            msg,
            attempts: 0,
        });
    }

    /// Where to insert into a buffer of length `len`; `None` = back.
    pub fn enqueue_position(&mut self, len: usize) -> Option<usize> {
        match &mut self.injector {
            None => None,
            Some(inj) => inj.enqueue_position(len),
        }
    }

    /// Park a retransmission of a copy whose previous attempt was lost,
    /// with capped exponential backoff and deterministic seeded jitter
    /// (keyed by the plan seed and the `(from, dest, attempts)` triple —
    /// see [`RetransmitPolicy::backoff`](parlog_faults::RetransmitPolicy::backoff)).
    /// Gives up past the retry budget.
    pub fn schedule_retrans(&mut self, from: usize, dest: usize, msg: M, attempts: u32) {
        let seed = self.plan().map_or(0, |p| p.seed);
        if let Some(policy) = self.reliable() {
            if attempts < policy.max_retries {
                let backoff = policy.backoff(seed, from, dest, attempts);
                self.retrans.push(ParkedMsg {
                    release: self.clock + backoff,
                    dest,
                    from,
                    msg,
                    attempts: attempts + 1,
                });
            }
        }
    }

    /// Crash events due at or before the current clock that have not
    /// fired yet. Returns `(plan_index, event)` pairs.
    pub fn due_crashes(&self) -> Vec<(usize, parlog_faults::CrashEvent)> {
        match self.plan() {
            None => Vec::new(),
            Some(plan) => plan
                .crashes
                .iter()
                .enumerate()
                .filter(|(i, c)| !self.fired[*i] && c.at_step <= self.clock)
                .map(|(i, c)| (i, *c))
                .collect(),
        }
    }

    /// Apply one crash event: mark health, purge in-flight state tied to
    /// the node. The caller purges its own buffers.
    pub fn apply_crash(&mut self, idx: usize, event: parlog_faults::CrashEvent) {
        self.fired[idx] = true;
        self.stats.crashes += 1;
        self.health[event.node] = match event.kind {
            CrashKind::Stop => Health::Stopped,
            CrashKind::Recover { downtime } => Health::Down {
                until: self.clock + downtime.max(1),
            },
        };
        // The crashed node's volatile send state dies with it: parked
        // copies *from* it are gone. Copies *to* it that were already in
        // the delivery network are lost too; sender-side retransmission
        // records (`retrans` with dest == node) survive — that is the
        // whole point of the ack/retransmit protocol.
        let node = event.node;
        let before = self.delayed.len() + self.retrans.len();
        self.delayed.retain(|m| m.from != node && m.dest != node);
        self.retrans.retain(|m| m.from != node);
        self.stats.lost_in_crash += before - (self.delayed.len() + self.retrans.len());
    }

    /// Nodes whose downtime has elapsed at the current clock.
    pub fn due_recoveries(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| matches!(h, Health::Down { until } if *until <= self.clock))
            .map(|(i, _)| i)
            .collect()
    }

    /// Earliest future clock value at which anything changes: a parked
    /// release, a recovery, or an unfired crash. `None` = nothing ahead.
    pub fn next_event(&self) -> Option<usize> {
        let parked = self
            .delayed
            .iter()
            .chain(self.retrans.iter())
            .map(|m| m.release)
            .filter(|&r| r != usize::MAX)
            .min();
        let recovery = self
            .health
            .iter()
            .filter_map(|h| match h {
                Health::Down { until } => Some(*until),
                _ => None,
            })
            .min();
        let crash = self.plan().and_then(|p| {
            p.crashes
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.fired[*i])
                .map(|(_, c)| c.at_step)
                .min()
        });
        [parked, recovery, crash].into_iter().flatten().min()
    }

    /// Take every parked copy whose release is due. Retransmissions are
    /// counted here — at the moment they actually go back on the wire.
    pub fn take_due(&mut self) -> Vec<ParkedMsg<M>> {
        let clock = self.clock;
        let mut due: Vec<ParkedMsg<M>> = Vec::new();
        self.delayed.retain(|m| {
            if m.release <= clock && m.release != usize::MAX {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        let mut retrans_due = 0usize;
        self.retrans.retain(|m| {
            if m.release <= clock {
                due.push(m.clone());
                retrans_due += 1;
                false
            } else {
                true
            }
        });
        self.stats.retransmissions += retrans_due;
        due
    }

    /// Is any fault-side work pending? Copies held by a *permanent*
    /// partition (release `usize::MAX`) will never move again and do
    /// not count — a deadlocked run must still be able to quiesce.
    pub fn idle(&self) -> bool {
        self.delayed.iter().all(|m| m.release == usize::MAX) && self.retrans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_state_is_a_noop_router() {
        let mut fs: FaultState<u32> = FaultState::inert(3);
        assert_eq!(fs.fate(), MessageFate::Deliver);
        assert_eq!(fs.enqueue_position(10), None);
        assert!(fs.due_crashes().is_empty());
        assert_eq!(fs.next_event(), None);
        assert!(fs.idle());
        fs.schedule_retrans(0, 1, 9, 0); // no policy: dropped silently
        assert!(fs.retrans.is_empty());
    }

    #[test]
    fn retransmit_backs_off_exponentially() {
        // A jitter-free policy reproduces the plain exponential schedule.
        let mut fs: FaultState<u32> = FaultState::inert(2);
        fs.install(
            &FaultPlan::lossy(1, 0.5).with_retransmit(parlog_faults::RetransmitPolicy::fixed(3, 2)),
        );
        fs.clock = 10;
        fs.schedule_retrans(0, 1, 7, 0);
        fs.schedule_retrans(0, 1, 7, 2);
        assert_eq!(fs.retrans[0].release, 12); // 10 + 2<<0
        assert_eq!(fs.retrans[1].release, 18); // 10 + 2<<2
        fs.schedule_retrans(0, 1, 7, 3); // budget exhausted
        assert_eq!(fs.retrans.len(), 2);
    }

    #[test]
    fn retransmit_jitter_is_capped_and_reproducible() {
        let policy = parlog_faults::RetransmitPolicy {
            max_retries: 6,
            backoff_base: 4,
            backoff_cap: 16,
            jitter_pct: 50,
        };
        let releases = |seed: u64| -> Vec<usize> {
            let mut fs: FaultState<u32> = FaultState::inert(4);
            fs.install(&FaultPlan::lossy(seed, 0.5).with_retransmit(policy));
            fs.clock = 100;
            for dest in 1..4 {
                for attempts in 0..5 {
                    fs.schedule_retrans(0, dest, 7, attempts);
                }
            }
            fs.retrans.iter().map(|m| m.release).collect()
        };
        let a = releases(3);
        assert_eq!(a, releases(3), "same seed, same jittered schedule");
        assert_ne!(a, releases(4), "jitter must depend on the plan seed");
        for (i, r) in a.iter().enumerate() {
            let attempts = (i % 5) as u32;
            let exp = (4usize << attempts).min(16);
            assert!(
                (100 + exp - exp / 2..=100 + exp).contains(r),
                "release {r} (attempt {attempts}) outside jitter window"
            );
        }
    }

    #[test]
    fn crash_purges_inflight_but_keeps_sender_retrans() {
        let mut fs: FaultState<u32> = FaultState::inert(3);
        fs.install(&FaultPlan::crash_stop(1, 1, 0));
        fs.delayed.push(ParkedMsg {
            release: 5,
            dest: 1,
            from: 0,
            msg: 1,
            attempts: 0,
        });
        fs.delayed.push(ParkedMsg {
            release: 5,
            dest: 2,
            from: 1,
            msg: 2,
            attempts: 0,
        });
        fs.retrans.push(ParkedMsg {
            release: 5,
            dest: 1,
            from: 0,
            msg: 3,
            attempts: 1,
        });
        let (idx, ev) = fs.due_crashes()[0];
        fs.apply_crash(idx, ev);
        assert!(fs.delayed.is_empty(), "in-flight copies to/from node 1 die");
        assert_eq!(fs.retrans.len(), 1, "sender-side record to node 1 survives");
        assert_eq!(fs.stats.lost_in_crash, 2);
        assert_eq!(fs.health[1], Health::Stopped);
    }

    #[test]
    fn partition_holds_flush_on_heal() {
        let mut fs: FaultState<u32> = FaultState::inert(3);
        fs.install(&FaultPlan::partitioned(
            1,
            parlog_faults::PartitionPlan::split(0, 6, &[0]),
        ));
        assert_eq!(fs.severed(0, 1), Some(6));
        assert_eq!(fs.severed(1, 2), None, "same side stays connected");
        fs.hold_partitioned(0, 1, 42, 6);
        assert!(!fs.idle());
        assert_eq!(fs.next_event(), Some(6));
        fs.clock = 6;
        assert_eq!(fs.severed(0, 1), None, "healed");
        let due = fs.take_due();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].msg, 42);
        assert_eq!(fs.stats.partitioned, 1);
        assert_eq!(fs.stats.retransmissions, 0, "a flush is not a retransmit");
        assert_eq!(
            fs.stats.as_comm_counters().delayed,
            1,
            "holds project onto the delayed counter"
        );
    }

    #[test]
    fn permanent_holds_never_release_and_do_not_block_quiescence() {
        let mut fs: FaultState<u32> = FaultState::inert(2);
        fs.install(&FaultPlan::partitioned(
            2,
            parlog_faults::PartitionPlan::permanent_split(0, &[0]),
        ));
        assert_eq!(fs.severed(0, 1), Some(usize::MAX));
        fs.hold_partitioned(0, 1, 9, usize::MAX);
        assert!(fs.idle(), "permanently held copies are not pending work");
        assert_eq!(fs.next_event(), None);
        fs.clock = 1_000_000;
        assert!(fs.take_due().is_empty(), "a MAX release never fires");
        assert_eq!(fs.delayed.len(), 1, "the copy stays parked, not lost");
    }

    #[test]
    fn take_due_counts_retransmissions() {
        let mut fs: FaultState<u32> = FaultState::inert(2);
        fs.retrans.push(ParkedMsg {
            release: 3,
            dest: 1,
            from: 0,
            msg: 1,
            attempts: 1,
        });
        fs.delayed.push(ParkedMsg {
            release: 9,
            dest: 1,
            from: 0,
            msg: 2,
            attempts: 0,
        });
        fs.clock = 4;
        let due = fs.take_due();
        assert_eq!(due.len(), 1);
        assert_eq!(fs.stats.retransmissions, 1);
        assert!(!fs.idle());
        assert_eq!(fs.next_event(), Some(9));
    }
}
