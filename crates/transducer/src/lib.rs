//! # `parlog-transducer` — relational transducer networks (Section 5)
//!
//! The asynchronous half of Neven's PODS'16 survey: computing nodes hold a
//! horizontal partition of the database, communicate by **broadcast only**
//! with arbitrarily delayed (never lost) messages, and write to
//! *write-only* output relations. A program computes a query `Q` when
//! **every fair run**, on **every network**, under **every horizontal
//! distribution**, eventually outputs exactly `Q(I)` — eventual
//! consistency.
//!
//! A program is **coordination-free** when for every instance there is
//! some *ideal* distribution on which it computes `Q` without reading a
//! single message (heartbeats only).
//!
//! This crate provides:
//!
//! * [`network`] — node states, write-only outputs, message buffers;
//! * [`program`] — the transducer-program trait (network-aware or
//!   oblivious, optionally policy-aware);
//! * [`scheduler`] — fair asynchronous runs under seeded-random, FIFO,
//!   LIFO and adversarial schedules, plus the heartbeat-only mode used by
//!   the coordination-freeness test;
//! * [`distribution`] — horizontal distributions (including the ideal
//!   replicate-all one);
//! * [`programs`] — the survey's algorithms: monotone broadcast (F0,
//!   Example 5.1(1)), the explicitly coordinating broadcast for
//!   non-monotone queries (Example 5.1(2)), the policy-aware
//!   open-triangle strategy (F1, Example 5.4), and the domain-guided
//!   component algorithm (F2, Section 5.2.2);
//! * [`consistency`] — eventual-consistency and coordination-freeness
//!   checkers quantifying over seeds × networks × distributions;
//! * [`economical`] — the Ketsman–Neven economical broadcasting strategy
//!   for full CQs without self-joins (Section 6);
//! * [`threaded`] — a crossbeam-based true-multithreaded runtime for the
//!   same programs, cross-validated against the simulator;
//! * [`faulty`] — fault injection (drop/duplicate/reorder/delay,
//!   crash-stop, crash-recover, ack/retransmit) driven by seeded
//!   [`parlog_faults::FaultPlan`]s: the model's no-loss and no-failure
//!   assumptions, made injectable and machine-checkable.
//!
//! ```
//! use parlog_transducer::prelude::*;
//! use parlog_relal::prelude::*;
//!
//! // Example 5.1(1): the triangle query is monotone, so the naive
//! // broadcast program computes it on every network and distribution.
//! let q = parse_query(
//!     "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x",
//! )
//! .unwrap();
//! let db = Instance::from_facts([
//!     fact("E", &[1, 2]), fact("E", &[2, 3]), fact("E", &[3, 1]),
//! ]);
//! let program = MonotoneBroadcast::new(q.clone());
//! let out = run_to_quiescence(&program, &hash_distribution(&db, 3, 7), 42);
//! assert_eq!(out, eval_query(&q, &db));
//! ```

pub mod consistency;
pub mod distribution;
pub mod economical;
pub mod exhaustive;
pub mod faulty;
pub mod network;
pub mod program;
pub mod programs;
pub mod scheduler;
pub mod threaded;

pub use faulty::{FaultStats, Health};
pub use network::{NodeState, QueryFunction};
pub use program::{Ctx, TransducerProgram};
pub use scheduler::{run_to_quiescence, run_with_faults, Schedule, SimRun};

/// Commonly used items.
pub mod prelude {
    pub use crate::consistency::{check_coordination_free, check_eventual_consistency};
    pub use crate::distribution::{
        hash_distribution, ideal_distribution, random_distribution, single_node_distribution,
    };
    pub use crate::economical::EconomicalBroadcast;
    pub use crate::exhaustive::{explore_all_schedules, explore_fault_schedules};
    pub use crate::faulty::{FaultStats, Health};
    pub use crate::network::{NodeState, QueryFunction};
    pub use crate::program::{Ctx, TransducerProgram};
    pub use crate::programs::coordinated::CoordinatedBroadcast;
    pub use crate::programs::disjoint::DisjointComponent;
    pub use crate::programs::distinct::PolicyAwareCq;
    pub use crate::programs::distinct_sets::DistinctCompleteSets;
    pub use crate::programs::monotone::MonotoneBroadcast;
    pub use crate::programs::reliable::ReliableBroadcast;
    pub use crate::scheduler::{
        run_heartbeats_only, run_to_quiescence, run_with_faults, Schedule, SimRun,
    };
}
