//! Node state for relational transducer networks.

use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::query::{ConjunctiveQuery, UnionQuery};

/// A query as a black-box function on instances — the survey's nodes may
/// run "any computable (but generic) function". Conjunctive queries,
/// unions, Datalog programs and closures all implement it.
pub trait QueryFunction: Send + Sync {
    /// Evaluate the query on an instance.
    fn eval(&self, db: &Instance) -> Instance;
}

impl QueryFunction for ConjunctiveQuery {
    fn eval(&self, db: &Instance) -> Instance {
        parlog_relal::eval::eval_query(self, db)
    }
}

impl QueryFunction for UnionQuery {
    fn eval(&self, db: &Instance) -> Instance {
        parlog_relal::eval::eval_union(self, db)
    }
}

impl QueryFunction for parlog_datalog::program::Program {
    fn eval(&self, db: &Instance) -> Instance {
        parlog_datalog::eval::eval_program(self, db).unwrap_or_default()
    }
}

impl<F> QueryFunction for F
where
    F: Fn(&Instance) -> Instance + Send + Sync,
{
    fn eval(&self, db: &Instance) -> Instance {
        self(db)
    }
}

/// The relational state of one computing node.
///
/// `local` starts as the node's horizontal shard `H(κ)` and grows as data
/// arrives; `aux` is scratch space for protocol bookkeeping (counters,
/// markers); `out` is the **write-only** output relation — facts can be
/// inserted but never retracted, which is what makes eventual consistency
/// meaningful ("the system never outputs facts that later need to be
/// retracted").
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's id.
    pub id: usize,
    /// Accumulated data: the initial shard plus everything received.
    pub local: Instance,
    /// Auxiliary relations for protocol state.
    pub aux: Instance,
    /// Write-only output.
    out: Instance,
}

impl NodeState {
    /// A node with the given initial shard.
    pub fn new(id: usize, shard: Instance) -> NodeState {
        NodeState {
            id,
            local: shard,
            aux: Instance::new(),
            out: Instance::new(),
        }
    }

    /// Emit a fact to the write-only output. Returns whether it is new.
    pub fn output(&mut self, f: Fact) -> bool {
        self.out.insert(f)
    }

    /// Emit every fact of an instance.
    pub fn output_all(&mut self, facts: &Instance) -> usize {
        let mut n = 0;
        for f in facts.iter() {
            if self.output(f.clone()) {
                n += 1;
            }
        }
        n
    }

    /// Read-only view of the output.
    pub fn output_so_far(&self) -> &Instance {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;

    #[test]
    fn output_is_write_only_and_dedups() {
        let mut n = NodeState::new(0, Instance::new());
        assert!(n.output(fact("H", &[1])));
        assert!(!n.output(fact("H", &[1])));
        assert_eq!(n.output_so_far().len(), 1);
    }

    #[test]
    fn query_function_for_cq() {
        use parlog_relal::parser::parse_query;
        let q = parse_query("H(x) <- R(x,y)").unwrap();
        let db = Instance::from_facts([fact("R", &[1, 2])]);
        assert_eq!(QueryFunction::eval(&q, &db).len(), 1);
    }

    #[test]
    fn query_function_for_closure() {
        let f = |db: &Instance| db.clone();
        let db = Instance::from_facts([fact("R", &[1, 2])]);
        assert_eq!(f.eval(&db), db);
    }

    #[test]
    fn query_function_for_datalog() {
        let p = parlog_datalog::program::parse_program(
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)",
        )
        .unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let out = QueryFunction::eval(&p, &db);
        assert!(out.contains(&fact("TC", &[1, 3])));
    }
}
