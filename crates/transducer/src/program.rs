//! The transducer-program abstraction.
//!
//! Every node runs the same program. A transition either consumes one
//! message (a fact, with its sender) or is a *heartbeat* (no message
//! read). Transitions may update the node state, write output and
//! broadcast facts to all other nodes.
//!
//! The context [`Ctx`] controls what a program may know:
//!
//! * `all` — the `All` relation: the names (here: the count, from which
//!   ids follow) of all nodes. Programs of the *oblivious* classes
//!   `A0/A1/A2` must work with `all = None`.
//! * `policy` — for **policy-aware** networks (Section 5.2.2), the node
//!   may ask whether it is responsible for a fact, *provided the fact's
//!   values occur in its current state* ("κ can not query P^H for values
//!   occurring outside of the local active domain").

use crate::network::NodeState;
use parlog_relal::fact::Fact;
use parlog_relal::policy::DistributionPolicy;
use std::sync::Arc;

/// Execution context handed to every transition.
#[derive(Clone)]
pub struct Ctx {
    /// `Some(n)` when the network provides the `All` relation (network-
    /// aware programs); `None` for oblivious programs.
    pub all: Option<usize>,
    /// The distribution policy, for policy-aware networks.
    pub policy: Option<Arc<dyn DistributionPolicy>>,
}

impl Ctx {
    /// A context with neither `All` nor a policy.
    pub fn oblivious() -> Ctx {
        Ctx {
            all: None,
            policy: None,
        }
    }

    /// A network-aware context over `n` nodes.
    pub fn aware(n: usize) -> Ctx {
        Ctx {
            all: Some(n),
            policy: None,
        }
    }

    /// Attach a policy (making nodes policy-aware).
    pub fn with_policy(mut self, p: Arc<dyn DistributionPolicy>) -> Ctx {
        self.policy = Some(p);
        self
    }

    /// Policy query: is `node` responsible for `fact`? Enforces the
    /// survey's visibility restriction — every value of the fact must
    /// occur in the node's current active domain (local ∪ aux ∪ output).
    ///
    /// # Panics
    /// Panics when the network is not policy-aware or the fact mentions a
    /// value the node has never seen.
    pub fn responsible(&self, node: &NodeState, fact: &Fact) -> bool {
        let policy = self
            .policy
            .as_ref()
            .expect("this network is not policy-aware");
        let mut adom = node.local.adom();
        adom.extend(node.aux.adom());
        adom.extend(node.output_so_far().adom());
        assert!(
            fact.args.iter().all(|v| adom.contains(v)),
            "policy queried for a value outside the local active domain: {fact}"
        );
        policy.responsible(node.id, fact)
    }
}

/// The effects of one transition: facts broadcast to all other nodes.
pub type Broadcast = Vec<Fact>;

/// A relational transducer program. Deterministic, generic, same on every
/// node.
pub trait TransducerProgram: Send + Sync {
    /// Human-readable name (for reports).
    fn name(&self) -> &str;

    /// Does the program require the `All` relation? Programs in the
    /// oblivious classes `A0/A1/A2` return `false`; the scheduler refuses
    /// to run an `All`-requiring program in an oblivious context.
    fn requires_all(&self) -> bool {
        false
    }

    /// Called once per node before any message is delivered; returns the
    /// initial broadcast.
    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast;

    /// Consume one message (a fact from `from`); returns a broadcast.
    fn on_fact(&self, node: &mut NodeState, from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast;

    /// A heartbeat transition: no message is read. Default: do nothing.
    fn heartbeat(&self, _node: &mut NodeState, _ctx: &Ctx) -> Broadcast {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::policy::ReplicateAll;

    #[test]
    fn responsible_respects_local_adom() {
        let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 2 }));
        let node = NodeState::new(0, Instance::from_facts([fact("E", &[1, 2])]));
        assert!(ctx.responsible(&node, &fact("E", &[2, 1])));
    }

    #[test]
    #[should_panic(expected = "outside the local active domain")]
    fn responsible_rejects_unseen_values() {
        let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 2 }));
        let node = NodeState::new(0, Instance::from_facts([fact("E", &[1, 2])]));
        ctx.responsible(&node, &fact("E", &[1, 99]));
    }

    #[test]
    #[should_panic(expected = "not policy-aware")]
    fn responsible_requires_policy() {
        let ctx = Ctx::oblivious();
        let node = NodeState::new(0, Instance::new());
        ctx.responsible(&node, &fact("E", &[1]));
    }
}
