//! The explicitly *coordinating* broadcast of Example 5.1(2).
//!
//! Non-monotone queries (the open-triangle query) cannot be computed
//! coordination-free in the plain model (Theorem 5.3). The correct-but-
//! coordinating strategy: every node broadcasts its data plus an
//! end-of-data marker carrying how many facts it sent; a node outputs
//! `Q(everything)` once it has received every other node's complete data.
//! This "requires that every node knows all other nodes participating in
//! the network" — the program needs the `All` relation, so it lives
//! outside the oblivious classes `A0/A1/A2`.
//!
//! ## The duplication bug, and its fix
//!
//! The fault matrix (PR 1) found the plain counting barrier **unsound
//! under message duplication**: a duplicated delivery can be the one that
//! brings a sender's count up to its end-of-data total while a distinct
//! fact is still in flight, so the barrier opens on incomplete data.
//! [`CoordinatedBroadcast::idempotent`] fixes it with *sequence-numbered
//! idempotent delivery*: each sender broadcasts every fact at most once
//! (the runtime's per-sender dedup makes fact identity a per-sender
//! sequence number), and the receiver keeps a ledger of `(sender, fact)`
//! pairs already counted — a duplicate hits the ledger and is absorbed
//! instead of advancing the count. The unfixed variant
//! ([`CoordinatedBroadcast::new`]) is kept as the regression witness the
//! matrix checks.

use crate::network::{NodeState, QueryFunction};
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_faults::mix64;
use parlog_relal::fact::{Fact, Val};
use parlog_relal::symbols::{rel, RelId};
use std::sync::Arc;

/// The reserved end-of-data marker relation `‡EOD(sender, fact_count)`.
fn eod_rel() -> RelId {
    rel("‡EOD")
}

/// Per-sender received-count bookkeeping relation `‡CNT(sender, n)` in the
/// node's aux state.
fn cnt_rel() -> RelId {
    rel("‡CNT")
}

/// Receiver-side delivery ledger `‡SEEN(sender, tag)`: which `(sender,
/// message)` pairs have already been counted. The tag is a 64-bit mix of
/// the fact's relation and arguments — per sender it identifies the
/// message, because each sender broadcasts each distinct fact once.
fn seen_rel() -> RelId {
    rel("‡SEEN")
}

/// Barrier acknowledgements `‡ACK(sender)`: node `sender` announces its
/// counting barrier has opened. The quorum-gated variant commits only
/// once a strict majority of nodes (itself included) has announced.
fn ack_rel() -> RelId {
    rel("‡ACK")
}

/// The per-sender sequence tag of a data fact.
fn fact_tag(f: &Fact) -> u64 {
    let mut h = mix64(0xc0_0bd1 ^ u64::from(f.rel.0));
    for v in &f.args {
        h = mix64(h ^ v.0);
    }
    h
}

/// Barrier-style evaluation of an arbitrary (possibly non-monotone) query.
#[derive(Clone)]
pub struct CoordinatedBroadcast {
    query: Arc<dyn QueryFunction>,
    name: String,
    /// Count each `(sender, message)` pair at most once. `false` is the
    /// historically unsound-under-duplication behavior, kept as a
    /// regression witness.
    idempotent: bool,
    /// Quorum-gate the commit: a node that reaches its barrier
    /// broadcasts an ack and outputs only once a strict majority of
    /// nodes has acked. Under a partition no side commits on split data
    /// — the minority (and a majority still missing data) *blocks*
    /// instead of diverging, and held acks flush on heal.
    quorum: bool,
}

impl CoordinatedBroadcast {
    /// Wrap any query function — the plain counting barrier, **unsound
    /// under message duplication** (the fault matrix's regression
    /// witness). Use [`CoordinatedBroadcast::idempotent`] for the fixed
    /// protocol.
    pub fn new<Q: QueryFunction + 'static>(query: Q) -> CoordinatedBroadcast {
        CoordinatedBroadcast {
            query: Arc::new(query),
            name: "coordinated-broadcast".into(),
            idempotent: false,
            quorum: false,
        }
    }

    /// The fixed barrier: sequence-numbered idempotent delivery — a
    /// duplicated message never advances a receiver's count, so the
    /// barrier opens exactly when every sender's distinct messages have
    /// all arrived.
    pub fn idempotent<Q: QueryFunction + 'static>(query: Q) -> CoordinatedBroadcast {
        CoordinatedBroadcast {
            query: Arc::new(query),
            name: "coordinated-broadcast-seq".into(),
            idempotent: true,
            quorum: false,
        }
    }

    /// The partition-safe barrier: idempotent delivery *plus* a
    /// majority-ack commit gate. A node that reaches its barrier
    /// broadcasts `‡ACK(id)` and commits its output only once a strict
    /// majority of the network (itself included) has acked — so under a
    /// partition the minority side blocks instead of diverging, and
    /// after heal the flushed acks let every side commit the same
    /// answer.
    pub fn quorum_gated<Q: QueryFunction + 'static>(query: Q) -> CoordinatedBroadcast {
        CoordinatedBroadcast {
            query: Arc::new(query),
            name: "coordinated-broadcast-quorum".into(),
            idempotent: true,
            quorum: true,
        }
    }

    /// Distinct nodes whose barrier-open ack this node has recorded.
    fn ack_count(node: &NodeState) -> usize {
        node.aux.relation(ack_rel()).count()
    }

    fn received_count(node: &NodeState, from: usize) -> u64 {
        node.aux
            .relation(cnt_rel())
            .find(|f| f.args[0] == Val(from as u64))
            .map(|f| f.args[1].0)
            .unwrap_or(0)
    }

    fn bump_count(node: &mut NodeState, from: usize) {
        let old = Self::received_count(node, from);
        node.aux
            .remove(&Fact::new(cnt_rel(), vec![Val(from as u64), Val(old)]));
        node.aux
            .insert(Fact::new(cnt_rel(), vec![Val(from as u64), Val(old + 1)]));
    }

    fn expected_count(node: &NodeState, from: usize) -> Option<u64> {
        node.aux
            .relation(eod_rel())
            .find(|f| f.args[0] == Val(from as u64))
            .map(|f| f.args[1].0)
    }

    fn barrier_reached(&self, node: &NodeState, ctx: &Ctx) -> bool {
        let n = ctx.all.expect("program requires All");
        (0..n).filter(|&j| j != node.id).all(|j| {
            Self::expected_count(node, j).is_some_and(|k| Self::received_count(node, j) == k)
        })
    }

    /// Open the barrier if complete, then commit — directly, or through
    /// the majority-ack gate. Returns control traffic to broadcast (the
    /// node's own ack, the first time its barrier opens).
    fn try_output(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        if !self.barrier_reached(node, ctx) {
            return Vec::new();
        }
        if !self.quorum {
            let result = self.query.eval(&node.local);
            node.output_all(&result);
            return Vec::new();
        }
        let n = ctx.all.expect("program requires All");
        let own = Fact::new(ack_rel(), vec![Val(node.id as u64)]);
        let fresh = node.aux.insert(own.clone());
        if 2 * Self::ack_count(node) > n {
            let result = self.query.eval(&node.local);
            node.output_all(&result);
        }
        if fresh {
            vec![own]
        } else {
            Vec::new()
        }
    }
}

impl TransducerProgram for CoordinatedBroadcast {
    fn name(&self) -> &str {
        &self.name
    }

    fn requires_all(&self) -> bool {
        true
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        let mut out: Vec<Fact> = node.local.iter().cloned().collect();
        out.push(Fact::new(
            eod_rel(),
            vec![Val(node.id as u64), Val(out.len() as u64)],
        ));
        // A single-node network is already complete (and is its own
        // majority), so the barrier may open right here.
        out.extend(self.try_output(node, ctx));
        out
    }

    fn on_fact(&self, node: &mut NodeState, from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        if fact.rel == eod_rel() || fact.rel == ack_rel() {
            // Control traffic: never advances a sender's data count.
            node.aux.insert(fact.clone());
        } else {
            let fresh = !self.idempotent
                || node.aux.insert(Fact::new(
                    seen_rel(),
                    vec![Val(from as u64), Val(fact_tag(fact))],
                ));
            if fresh {
                Self::bump_count(node, from);
            }
            node.local.insert(fact.clone());
        }
        self.try_output(node, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{hash_distribution, ideal_distribution, single_node_distribution};
    use crate::scheduler::{run_heartbeats_only, run_to_quiescence, run_with_ctx, Schedule};
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;

    fn open_triangle_query() -> parlog_relal::ConjunctiveQuery {
        parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap()
    }

    fn graph() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]), // closed triangle 1-2-3
            fact("E", &[2, 4]), // 1-2-4 is open
        ])
    }

    #[test]
    fn computes_open_triangles_on_every_distribution() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        assert!(expected.contains(&fact("H", &[1, 2, 4])));
        let p = CoordinatedBroadcast::new(q);
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
            hash_distribution(&db, 4, 8),
        ] {
            for seed in 0..4 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
    }

    #[test]
    fn robust_under_adversarial_reordering() {
        // LIFO delivery maximally reorders: EOD markers overtake data.
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let dist = hash_distribution(&db, 3, 2);
        let out = run_with_ctx(&p, &dist, Ctx::aware(3), Schedule::Lifo);
        assert_eq!(out, expected);
    }

    #[test]
    fn is_not_coordination_free_in_behavior() {
        // Even on the ideal distribution, the barrier waits for messages:
        // a heartbeat-only run outputs nothing on networks with > 1 node.
        let db = graph();
        let q = open_triangle_query();
        let p = CoordinatedBroadcast::new(q);
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 3), Ctx::aware(3));
        assert!(out.is_empty(), "barrier must block without messages");
    }

    #[test]
    fn single_node_outputs_immediately() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 1), Ctx::aware(1));
        assert_eq!(out, expected);
    }

    #[test]
    fn idempotent_barrier_absorbs_duplication() {
        // The fix for the duplication unsoundness found by the fault
        // matrix: with sequence-numbered idempotent delivery the barrier
        // is exact under the very fault that breaks the plain counter.
        use crate::scheduler::run_with_faults;
        use parlog_faults::{FaultClass, FaultPlan};
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let dist = hash_distribution(&db, 3, 2);
        let mut witness_deviated = false;
        for seed in 1..=3u64 {
            let plan = FaultPlan::for_class(FaultClass::Duplicate, seed);
            let fixed = CoordinatedBroadcast::idempotent(q.clone());
            let (out, stats) =
                run_with_faults(&fixed, &dist, Ctx::aware(3), Schedule::Random(seed), &plan);
            assert!(stats.duplicated > 0, "the plan must actually duplicate");
            assert_eq!(out, expected, "idempotent barrier, seed {seed}");
            let plain = CoordinatedBroadcast::new(q.clone());
            let (out, _) =
                run_with_faults(&plain, &dist, Ctx::aware(3), Schedule::Random(seed), &plan);
            if out != expected {
                witness_deviated = true;
            }
        }
        assert!(
            witness_deviated,
            "the unfixed barrier must remain a regression witness under duplication"
        );
    }

    #[test]
    fn idempotent_barrier_unchanged_on_benign_runs() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::idempotent(q);
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
        ] {
            for seed in 0..3 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
    }

    #[test]
    fn quorum_gated_barrier_exact_on_benign_runs() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::quorum_gated(q);
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
            hash_distribution(&db, 4, 8),
        ] {
            for seed in 0..3 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
        // Single node: its own ack is already a strict majority.
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 1), Ctx::aware(1));
        assert_eq!(
            out,
            parlog_relal::eval::eval_query(&open_triangle_query(), &db)
        );
    }

    #[test]
    fn quorum_gated_barrier_converges_after_partition_heals() {
        use crate::scheduler::run_with_faults;
        use parlog_faults::{FaultPlan, PartitionPlan};
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let dist = hash_distribution(&db, 3, 2);
        for seed in 1..=3u64 {
            let plan =
                FaultPlan::partitioned(seed, PartitionPlan::split(0, 30 + seed as usize, &[0]));
            let p = CoordinatedBroadcast::quorum_gated(q.clone());
            let (out, stats) =
                run_with_faults(&p, &dist, Ctx::aware(3), Schedule::Random(seed), &plan);
            assert!(stats.partitioned > 0, "seed {seed}: the split must bite");
            assert_eq!(out, expected, "seed {seed}: flushed acks commit exactly");
        }
    }

    #[test]
    fn quorum_gated_barrier_blocks_instead_of_diverging_under_permanent_split() {
        use crate::scheduler::run_with_faults;
        use parlog_faults::{FaultPlan, PartitionPlan};
        let db = graph();
        let q = open_triangle_query();
        let dist = hash_distribution(&db, 3, 2);
        let plan = FaultPlan::partitioned(9, PartitionPlan::permanent_split(0, &[0]));
        let p = CoordinatedBroadcast::quorum_gated(q);
        let (out, stats) = run_with_faults(&p, &dist, Ctx::aware(3), Schedule::Random(9), &plan);
        assert!(stats.partitioned > 0, "the split must bite");
        // Neither side may commit an answer computed over split data: a
        // non-monotone commit without full data would be *wrong*, so
        // blocking (empty output) is the only safe behavior.
        assert!(out.is_empty(), "no side may commit on split data");
    }

    #[test]
    fn duplicate_facts_across_nodes_are_counted_per_sender() {
        // Both nodes hold the same fact: barrier still resolves.
        let db = Instance::from_facts([fact("E", &[1, 2])]);
        let q = open_triangle_query();
        let p = CoordinatedBroadcast::new(q.clone());
        let dist = ideal_distribution(&db, 2);
        let out = run_to_quiescence(&p, &dist, 5);
        assert_eq!(out, parlog_relal::eval::eval_query(&q, &db));
    }
}
