//! The explicitly *coordinating* broadcast of Example 5.1(2).
//!
//! Non-monotone queries (the open-triangle query) cannot be computed
//! coordination-free in the plain model (Theorem 5.3). The correct-but-
//! coordinating strategy: every node broadcasts its data plus an
//! end-of-data marker carrying how many facts it sent; a node outputs
//! `Q(everything)` once it has received every other node's complete data.
//! This "requires that every node knows all other nodes participating in
//! the network" — the program needs the `All` relation, so it lives
//! outside the oblivious classes `A0/A1/A2`.
//!
//! ## The duplication bug, and its fix
//!
//! The fault matrix (PR 1) found the plain counting barrier **unsound
//! under message duplication**: a duplicated delivery can be the one that
//! brings a sender's count up to its end-of-data total while a distinct
//! fact is still in flight, so the barrier opens on incomplete data.
//! [`CoordinatedBroadcast::idempotent`] fixes it with *sequence-numbered
//! idempotent delivery*: each sender broadcasts every fact at most once
//! (the runtime's per-sender dedup makes fact identity a per-sender
//! sequence number), and the receiver keeps a ledger of `(sender, fact)`
//! pairs already counted — a duplicate hits the ledger and is absorbed
//! instead of advancing the count. The unfixed variant
//! ([`CoordinatedBroadcast::new`]) is kept as the regression witness the
//! matrix checks.

use crate::network::{NodeState, QueryFunction};
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_faults::mix64;
use parlog_relal::fact::{Fact, Val};
use parlog_relal::symbols::{rel, RelId};
use std::sync::Arc;

/// The reserved end-of-data marker relation `‡EOD(sender, fact_count)`.
fn eod_rel() -> RelId {
    rel("‡EOD")
}

/// Per-sender received-count bookkeeping relation `‡CNT(sender, n)` in the
/// node's aux state.
fn cnt_rel() -> RelId {
    rel("‡CNT")
}

/// Receiver-side delivery ledger `‡SEEN(sender, tag)`: which `(sender,
/// message)` pairs have already been counted. The tag is a 64-bit mix of
/// the fact's relation and arguments — per sender it identifies the
/// message, because each sender broadcasts each distinct fact once.
fn seen_rel() -> RelId {
    rel("‡SEEN")
}

/// The per-sender sequence tag of a data fact.
fn fact_tag(f: &Fact) -> u64 {
    let mut h = mix64(0xc0_0bd1 ^ u64::from(f.rel.0));
    for v in &f.args {
        h = mix64(h ^ v.0);
    }
    h
}

/// Barrier-style evaluation of an arbitrary (possibly non-monotone) query.
#[derive(Clone)]
pub struct CoordinatedBroadcast {
    query: Arc<dyn QueryFunction>,
    name: String,
    /// Count each `(sender, message)` pair at most once. `false` is the
    /// historically unsound-under-duplication behavior, kept as a
    /// regression witness.
    idempotent: bool,
}

impl CoordinatedBroadcast {
    /// Wrap any query function — the plain counting barrier, **unsound
    /// under message duplication** (the fault matrix's regression
    /// witness). Use [`CoordinatedBroadcast::idempotent`] for the fixed
    /// protocol.
    pub fn new<Q: QueryFunction + 'static>(query: Q) -> CoordinatedBroadcast {
        CoordinatedBroadcast {
            query: Arc::new(query),
            name: "coordinated-broadcast".into(),
            idempotent: false,
        }
    }

    /// The fixed barrier: sequence-numbered idempotent delivery — a
    /// duplicated message never advances a receiver's count, so the
    /// barrier opens exactly when every sender's distinct messages have
    /// all arrived.
    pub fn idempotent<Q: QueryFunction + 'static>(query: Q) -> CoordinatedBroadcast {
        CoordinatedBroadcast {
            query: Arc::new(query),
            name: "coordinated-broadcast-seq".into(),
            idempotent: true,
        }
    }

    fn received_count(node: &NodeState, from: usize) -> u64 {
        node.aux
            .relation(cnt_rel())
            .find(|f| f.args[0] == Val(from as u64))
            .map(|f| f.args[1].0)
            .unwrap_or(0)
    }

    fn bump_count(node: &mut NodeState, from: usize) {
        let old = Self::received_count(node, from);
        node.aux
            .remove(&Fact::new(cnt_rel(), vec![Val(from as u64), Val(old)]));
        node.aux
            .insert(Fact::new(cnt_rel(), vec![Val(from as u64), Val(old + 1)]));
    }

    fn expected_count(node: &NodeState, from: usize) -> Option<u64> {
        node.aux
            .relation(eod_rel())
            .find(|f| f.args[0] == Val(from as u64))
            .map(|f| f.args[1].0)
    }

    fn barrier_reached(&self, node: &NodeState, ctx: &Ctx) -> bool {
        let n = ctx.all.expect("program requires All");
        (0..n).filter(|&j| j != node.id).all(|j| {
            Self::expected_count(node, j).is_some_and(|k| Self::received_count(node, j) == k)
        })
    }

    fn try_output(&self, node: &mut NodeState, ctx: &Ctx) {
        if self.barrier_reached(node, ctx) {
            let result = self.query.eval(&node.local);
            node.output_all(&result);
        }
    }
}

impl TransducerProgram for CoordinatedBroadcast {
    fn name(&self) -> &str {
        &self.name
    }

    fn requires_all(&self) -> bool {
        true
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        let mut out: Vec<Fact> = node.local.iter().cloned().collect();
        out.push(Fact::new(
            eod_rel(),
            vec![Val(node.id as u64), Val(out.len() as u64)],
        ));
        // A single-node network is already complete.
        self.try_output(node, ctx);
        out
    }

    fn on_fact(&self, node: &mut NodeState, from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        if fact.rel == eod_rel() {
            node.aux.insert(fact.clone());
        } else {
            let fresh = !self.idempotent
                || node.aux.insert(Fact::new(
                    seen_rel(),
                    vec![Val(from as u64), Val(fact_tag(fact))],
                ));
            if fresh {
                Self::bump_count(node, from);
            }
            node.local.insert(fact.clone());
        }
        self.try_output(node, ctx);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{hash_distribution, ideal_distribution, single_node_distribution};
    use crate::scheduler::{run_heartbeats_only, run_to_quiescence, run_with_ctx, Schedule};
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;

    fn open_triangle_query() -> parlog_relal::ConjunctiveQuery {
        parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap()
    }

    fn graph() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]), // closed triangle 1-2-3
            fact("E", &[2, 4]), // 1-2-4 is open
        ])
    }

    #[test]
    fn computes_open_triangles_on_every_distribution() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        assert!(expected.contains(&fact("H", &[1, 2, 4])));
        let p = CoordinatedBroadcast::new(q);
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
            hash_distribution(&db, 4, 8),
        ] {
            for seed in 0..4 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
    }

    #[test]
    fn robust_under_adversarial_reordering() {
        // LIFO delivery maximally reorders: EOD markers overtake data.
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let dist = hash_distribution(&db, 3, 2);
        let out = run_with_ctx(&p, &dist, Ctx::aware(3), Schedule::Lifo);
        assert_eq!(out, expected);
    }

    #[test]
    fn is_not_coordination_free_in_behavior() {
        // Even on the ideal distribution, the barrier waits for messages:
        // a heartbeat-only run outputs nothing on networks with > 1 node.
        let db = graph();
        let q = open_triangle_query();
        let p = CoordinatedBroadcast::new(q);
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 3), Ctx::aware(3));
        assert!(out.is_empty(), "barrier must block without messages");
    }

    #[test]
    fn single_node_outputs_immediately() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::new(q);
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 1), Ctx::aware(1));
        assert_eq!(out, expected);
    }

    #[test]
    fn idempotent_barrier_absorbs_duplication() {
        // The fix for the duplication unsoundness found by the fault
        // matrix: with sequence-numbered idempotent delivery the barrier
        // is exact under the very fault that breaks the plain counter.
        use crate::scheduler::run_with_faults;
        use parlog_faults::{FaultClass, FaultPlan};
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let dist = hash_distribution(&db, 3, 2);
        let mut witness_deviated = false;
        for seed in 1..=3u64 {
            let plan = FaultPlan::for_class(FaultClass::Duplicate, seed);
            let fixed = CoordinatedBroadcast::idempotent(q.clone());
            let (out, stats) =
                run_with_faults(&fixed, &dist, Ctx::aware(3), Schedule::Random(seed), &plan);
            assert!(stats.duplicated > 0, "the plan must actually duplicate");
            assert_eq!(out, expected, "idempotent barrier, seed {seed}");
            let plain = CoordinatedBroadcast::new(q.clone());
            let (out, _) =
                run_with_faults(&plain, &dist, Ctx::aware(3), Schedule::Random(seed), &plan);
            if out != expected {
                witness_deviated = true;
            }
        }
        assert!(
            witness_deviated,
            "the unfixed barrier must remain a regression witness under duplication"
        );
    }

    #[test]
    fn idempotent_barrier_unchanged_on_benign_runs() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = CoordinatedBroadcast::idempotent(q);
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
        ] {
            for seed in 0..3 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
    }

    #[test]
    fn duplicate_facts_across_nodes_are_counted_per_sender() {
        // Both nodes hold the same fact: barrier still resolves.
        let db = Instance::from_facts([fact("E", &[1, 2])]);
        let q = open_triangle_query();
        let p = CoordinatedBroadcast::new(q.clone());
        let dist = ideal_distribution(&db, 2);
        let out = run_to_quiescence(&p, &dist, 5);
        assert_eq!(out, parlog_relal::eval::eval_query(&q, &db));
    }
}
