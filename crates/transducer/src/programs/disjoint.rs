//! The domain-guided component algorithm for domain-disjoint-monotone
//! queries — Section 5.2.2 (class F2 = A2 = Mdisjoint).
//!
//! Under a **domain-guided** policy `P^α`, every node in `α(a)` holds all
//! facts containing `a`. The algorithm exchanges data together with
//! *closure certificates*: a node responsible for value `v` announces
//! `‡CERT(v, k)` — "exactly k facts of I contain v". A value is *closed*
//! at κ when κ is itself responsible for it or the certified count is
//! reached; a connected **component** of κ's accumulated data whose values
//! are all closed is provably a full union of components of `I`
//! (Lemma 5.11), so κ may output `Q` of the union of its closed
//! components — sound by domain-disjoint-monotonicity, and eventually
//! complete because every value is certified by its responsible node.
//!
//! "While there formally is no coordination or synchronization … the just
//! presented strategy does entail waiting" — visible here as components
//! staying unreported until their certificates arrive. On the ideal
//! distribution every value is locally closed, so no message is ever
//! read: coordination-free.

use crate::network::{NodeState, QueryFunction};
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_relal::fact::{Fact, Val};
use parlog_relal::fastmap::{fxset, FxSet};
use parlog_relal::instance::Instance;
use parlog_relal::symbols::{rel, RelId};
use std::sync::Arc;

/// The reserved closure-certificate relation `‡CERT(value, count)`.
fn cert_rel() -> RelId {
    rel("‡CERT")
}

/// The reserved unary probe relation used to ask a domain-guided policy
/// "am I in α(v)?" — `P^α(‡VAL(v)) = α(v)`.
fn probe_rel() -> RelId {
    rel("‡VAL")
}

/// Domain-guided component evaluation (class F2).
#[derive(Clone)]
pub struct DisjointComponent {
    query: Arc<dyn QueryFunction>,
    name: String,
}

impl DisjointComponent {
    /// Wrap a domain-disjoint-monotone query (caller's obligation).
    pub fn new<Q: QueryFunction + 'static>(query: Q) -> DisjointComponent {
        DisjointComponent {
            query: Arc::new(query),
            name: "disjoint-component".into(),
        }
    }

    fn in_alpha(node: &NodeState, ctx: &Ctx, v: Val) -> bool {
        ctx.responsible(node, &Fact::new(probe_rel(), vec![v]))
    }

    fn certified_count(node: &NodeState, v: Val) -> Option<u64> {
        node.aux
            .relation(cert_rel())
            .find(|f| f.args[0] == v)
            .map(|f| f.args[1].0)
    }

    fn known_count(node: &NodeState, v: Val) -> u64 {
        node.local.iter().filter(|f| f.mentions(v)).count() as u64
    }

    fn closed_values(&self, node: &NodeState, ctx: &Ctx) -> FxSet<Val> {
        let mut closed = fxset();
        for v in node.local.adom() {
            let own = Self::in_alpha(node, ctx, v);
            let cert =
                Self::certified_count(node, v).is_some_and(|k| Self::known_count(node, v) >= k);
            if own || cert {
                closed.insert(v);
            }
        }
        closed
    }

    fn try_output(&self, node: &mut NodeState, ctx: &Ctx) {
        let closed = self.closed_values(node, ctx);
        let mut ready = Instance::new();
        for component in node.local.components() {
            if component.adom().iter().all(|v| closed.contains(v)) {
                ready.extend_from(&component);
            }
        }
        let result = self.query.eval(&ready);
        node.output_all(&result);
    }

    /// The certificates this node can issue: counts for every local value
    /// it is responsible for.
    fn certificates(node: &NodeState, ctx: &Ctx) -> Vec<Fact> {
        node.local
            .adom()
            .into_iter()
            .filter(|&v| Self::in_alpha(node, ctx, v))
            .map(|v| Fact::new(cert_rel(), vec![v, Val(Self::known_count(node, v))]))
            .collect()
    }
}

impl TransducerProgram for DisjointComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        self.try_output(node, ctx);
        let mut out: Vec<Fact> = node.local.iter().cloned().collect();
        out.extend(Self::certificates(node, ctx));
        out
    }

    fn on_fact(&self, node: &mut NodeState, _from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        if fact.rel == cert_rel() {
            node.aux.insert(fact.clone());
        } else {
            node.local.insert(fact.clone());
        }
        self.try_output(node, ctx);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ideal_distribution, policy_distribution};
    use crate::scheduler::{run_heartbeats_only, run_with_ctx, Schedule};
    use parlog_relal::fact::fact;
    use parlog_relal::policy::{DomainGuidedPolicy, ReplicateAll};

    /// The complement-of-TC query (Example 5.10, Q¬TC ∈ Mdisjoint),
    /// evaluated per instance by the stratified Datalog engine.
    fn ntc_query() -> impl QueryFunction {
        let p = parlog_datalog::program::parse_program(
            "TC(x,y) <- E(x,y)
             TC(x,y) <- TC(x,z), TC(z,y)
             NTC(x,y) <- ADom(x), ADom(y), not TC(x,y)",
        )
        .unwrap();
        move |db: &Instance| {
            let out = parlog_datalog::eval::eval_program(&p, db).unwrap();
            Instance::from_facts(out.relation(rel("NTC")).cloned().collect::<Vec<_>>())
        }
    }

    fn two_component_graph() -> Instance {
        Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3]), fact("E", &[10, 11])])
    }

    fn guided_policy(n: usize) -> Arc<DomainGuidedPolicy> {
        Arc::new(DomainGuidedPolicy::new(n, 13))
    }

    #[test]
    fn ntc_under_domain_guided_policy() {
        let db = two_component_graph();
        let q = ntc_query();
        let expected = q.eval(&db);
        assert!(expected.contains(&fact("NTC", &[3, 1])));
        assert!(expected.contains(&fact("NTC", &[1, 10])));
        let policy = guided_policy(3);
        let shards = policy_distribution(&db, policy.as_ref());
        let p = DisjointComponent::new(ntc_query());
        for schedule in [Schedule::Random(5), Schedule::Fifo, Schedule::Lifo] {
            let ctx = Ctx::oblivious().with_policy(policy.clone());
            let out = run_with_ctx(&p, &shards, ctx, schedule);
            assert_eq!(out, expected, "{schedule:?}");
        }
    }

    #[test]
    fn coordination_free_on_ideal_distribution() {
        let db = two_component_graph();
        let q = ntc_query();
        let expected = q.eval(&db);
        let p = DisjointComponent::new(ntc_query());
        let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 3 }));
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 3), ctx);
        assert_eq!(out, expected);
    }

    #[test]
    fn prefix_outputs_stay_sound() {
        // Q¬TC on a partial component would wrongly claim unreachability;
        // the closure certificates prevent any such premature output.
        use crate::scheduler::SimRun;
        let db = two_component_graph();
        let q = ntc_query();
        let expected = q.eval(&db);
        let policy = guided_policy(4);
        let shards = policy_distribution(&db, policy.as_ref());
        let p = DisjointComponent::new(ntc_query());
        let ctx = Ctx::oblivious().with_policy(policy);
        let mut run = SimRun::new(&p, &shards, ctx);
        let mut rng = rand::SeedableRng::seed_from_u64(21);
        let mut rr = 0;
        loop {
            assert!(
                run.outputs().is_subset_of(&expected),
                "premature output is unsound: {:?}",
                run.outputs().difference(&expected)
            );
            if !run.step(&p, Schedule::Random(21), &mut rng, &mut rr) {
                break;
            }
        }
        assert_eq!(run.outputs(), expected);
    }

    #[test]
    fn win_move_under_well_founded_semantics() {
        // Section 5.3: win–move (true facts of the well-founded model) is
        // domain-disjoint-monotone, hence computable in F2.
        let wm = parlog_datalog::wellfounded::win_move_program();
        let q = move |db: &Instance| {
            parlog_datalog::wellfounded::well_founded(&wm, db)
                .map(|m| {
                    Instance::from_facts(
                        m.true_facts
                            .relation(rel("Win"))
                            .cloned()
                            .collect::<Vec<_>>(),
                    )
                })
                .unwrap_or_default()
        };
        // Two disjoint games: a path (1→2→3) and a draw cycle (10 ↔ 11).
        let db = Instance::from_facts([
            fact("Move", &[1, 2]),
            fact("Move", &[2, 3]),
            fact("Move", &[10, 11]),
            fact("Move", &[11, 10]),
        ]);
        let expected = q.eval(&db);
        assert!(expected.contains(&fact("Win", &[2])));
        assert_eq!(expected.len(), 1);
        let policy = guided_policy(3);
        let shards = policy_distribution(&db, policy.as_ref());
        let p = DisjointComponent::new(q);
        let ctx = Ctx::oblivious().with_policy(policy);
        let out = run_with_ctx(&p, &shards, ctx, Schedule::Random(2));
        assert_eq!(out, expected);
    }
}
