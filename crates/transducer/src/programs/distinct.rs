//! The policy-aware strategy for domain-distinct-monotone CQ¬ queries —
//! Example 5.4 (class F1 = A1 = Mdistinct).
//!
//! "1. Broadcast H(κ). 2. If a new edge is received, add it to H(κ). If
//! there are edges E(a,b) and E(b,c) in H(κ), but edge E(c,a) ∉ H(κ) and
//! κ ∈ P^H(E(c,a)) then output (a,b,c)."
//!
//! Generalized: for a CQ with negated atoms whose underlying query is
//! domain-distinct-monotone, a node outputs a valuation's head once the
//! positive facts are present locally and it can *certify the absence* of
//! every instantiated negated fact — it is responsible for the fact under
//! the policy yet does not hold it. Soundness relies on the horizontal
//! distribution being the policy's distribution (`H(κ) = I ∩ rfacts(κ)`),
//! which is the survey's policy-aware setting.
//!
//! Completeness holds when, for every output, some node is responsible
//! for *all* of its absent certificates (always true for single-negated-
//! atom queries under total policies, and for domain-guided policies on
//! connected negated parts). No message is ever read on the ideal
//! (replicate-all) distribution, so the program is coordination-free.

use crate::network::NodeState;
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_relal::eval::satisfying_valuations;
use parlog_relal::fact::Fact;
use parlog_relal::query::ConjunctiveQuery;

/// Policy-aware evaluation of a CQ with negation (class F1).
#[derive(Clone)]
pub struct PolicyAwareCq {
    query: ConjunctiveQuery,
    name: String,
}

impl PolicyAwareCq {
    /// Wrap a CQ¬ whose semantics is domain-distinct-monotone (caller's
    /// obligation; `parlog::calm` provides bounded testers).
    pub fn new(query: ConjunctiveQuery) -> PolicyAwareCq {
        PolicyAwareCq {
            query,
            name: "policy-aware-cq".into(),
        }
    }

    fn try_output(&self, node: &mut NodeState, ctx: &Ctx) {
        // Evaluate the positive part (with inequalities); certify each
        // negated instantiation.
        let positive = ConjunctiveQuery {
            head: self.query.head.clone(),
            body: self.query.body.clone(),
            negated: Vec::new(),
            inequalities: self.query.inequalities.clone(),
        };
        let local = node.local.clone();
        for v in satisfying_valuations(&positive, &local) {
            let certified = self.query.negated.iter().all(|a| {
                let g = v.apply(a).expect("safe query");
                // Held locally ⇒ present in I ⇒ valuation fails.
                // Absent locally: certified absent iff κ is responsible
                // (it would hold the fact if the fact were in I).
                !local.contains(&g) && ctx.responsible(node, &g)
            });
            if certified {
                node.output(v.derived_fact(&self.query));
            }
        }
    }
}

impl TransducerProgram for PolicyAwareCq {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        self.try_output(node, ctx);
        node.local.iter().cloned().collect()
    }

    fn on_fact(&self, node: &mut NodeState, _from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        if node.local.insert(fact.clone()) {
            self.try_output(node, ctx);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ideal_distribution, policy_distribution};
    use crate::scheduler::{run_heartbeats_only, run_with_ctx, Schedule};
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;
    use parlog_relal::policy::{DomainGuidedPolicy, HashPolicy, ReplicateAll};
    use std::sync::Arc;

    fn open_triangle_query() -> ConjunctiveQuery {
        parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap()
    }

    fn graph() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
            fact("E", &[4, 6]),
        ])
    }

    #[test]
    fn open_triangles_under_hash_policy() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        assert!(!expected.is_empty());
        let policy = Arc::new(HashPolicy::new(3, 11));
        let shards = policy_distribution(&db, policy.as_ref());
        let p = PolicyAwareCq::new(q);
        for schedule in [Schedule::Random(3), Schedule::Fifo, Schedule::Lifo] {
            let ctx = Ctx::oblivious().with_policy(policy.clone());
            let out = run_with_ctx(&p, &shards, ctx, schedule);
            assert_eq!(out, expected, "{schedule:?}");
        }
    }

    #[test]
    fn open_triangles_under_domain_guided_policy() {
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let policy = Arc::new(DomainGuidedPolicy::new(3, 5));
        let shards = policy_distribution(&db, policy.as_ref());
        let p = PolicyAwareCq::new(q);
        let ctx = Ctx::oblivious().with_policy(policy.clone());
        let out = run_with_ctx(&p, &shards, ctx, Schedule::Random(1));
        assert_eq!(out, expected);
    }

    #[test]
    fn coordination_free_on_ideal_distribution() {
        // With the replicate-all policy, every node certifies every
        // absence locally — init alone produces Q(I); no message is read.
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let policy = Arc::new(ReplicateAll { num_nodes: 3 });
        let p = PolicyAwareCq::new(q);
        let ctx = Ctx::oblivious().with_policy(policy);
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 3), ctx);
        assert_eq!(out, expected);
    }

    #[test]
    fn outputs_are_sound_at_every_prefix() {
        // No fact outside Q(I) is ever output, at any point of any run.
        use crate::scheduler::SimRun;
        let db = graph();
        let q = open_triangle_query();
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let policy = Arc::new(HashPolicy::new(4, 2));
        let shards = policy_distribution(&db, policy.as_ref());
        let p = PolicyAwareCq::new(q);
        let ctx = Ctx::oblivious().with_policy(policy);
        let mut run = SimRun::new(&p, &shards, ctx);
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        let mut rr = 0;
        loop {
            assert!(
                run.outputs().is_subset_of(&expected),
                "unsound prefix output"
            );
            if !run.step(&p, Schedule::Random(7), &mut rng, &mut rr) {
                break;
            }
        }
        assert_eq!(run.outputs(), expected);
    }

    #[test]
    fn pure_positive_query_degenerates_to_broadcast() {
        let q = parse_query("H(x,y) <- E(x,y), E(y,x)").unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 1])]);
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let policy = Arc::new(HashPolicy::new(2, 3));
        let shards = policy_distribution(&db, policy.as_ref());
        let p = PolicyAwareCq::new(q);
        let ctx = Ctx::oblivious().with_policy(policy);
        let out = run_with_ctx(&p, &shards, ctx, Schedule::Fifo);
        assert_eq!(out, expected);
    }
}
