//! The *set-based* distinct-complete algorithm — the literal strategy of
//! Section 5.2.2 for arbitrary queries in `Mdistinct`:
//!
//! "1. Broadcast H(κ). 2. If a new fact is received, add it to H(κ). If
//! H(κ) contains a set C that is distinct-complete for κ, output
//! Q(H(κ)|C)."
//!
//! A set `C ⊆ dom` is **distinct-complete** for κ when every candidate
//! fact over `C` (on the query's schema) was either received/held or is
//! κ's responsibility under the policy — then κ knows `I|C` *exactly*
//! (presences and absences), and Lemma 5.7 makes `Q(H(κ)|C) ⊆ Q(I)`
//! sound for every `Q ∈ Mdistinct`.
//!
//! The algorithm is always **sound**; it is **complete** on policies
//! where, for every relevant value set, *some* node is responsible for
//! all its candidate facts (replicate-all — the coordination-freeness
//! witness — or any policy with a full-coverage node). On policies
//! without that property the survey's finer F1 construction is needed;
//! see [`crate::programs::distinct::PolicyAwareCq`] for the
//! valuation-wise variant that covers the `CQ¬` examples.

use crate::network::{NodeState, QueryFunction};
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_relal::fact::{Fact, Val};
use parlog_relal::fastmap::fxset;
use parlog_relal::instance::Instance;
use parlog_relal::symbols::RelId;
use std::sync::Arc;

/// Set-based distinct-complete evaluation (class F1, generic queries).
#[derive(Clone)]
pub struct DistinctCompleteSets {
    query: Arc<dyn QueryFunction>,
    /// The relation schema of candidate facts.
    schema: Vec<(RelId, usize)>,
    /// Maximum |C| searched (output facts of bounded-width queries need
    /// only bounded witness sets).
    c_max: usize,
    name: String,
}

impl DistinctCompleteSets {
    /// Wrap a domain-distinct-monotone query over the given schema.
    pub fn new<Q: QueryFunction + 'static>(
        query: Q,
        schema: Vec<(RelId, usize)>,
        c_max: usize,
    ) -> DistinctCompleteSets {
        assert!(c_max >= 1);
        DistinctCompleteSets {
            query: Arc::new(query),
            schema,
            c_max,
            name: "distinct-complete-sets".into(),
        }
    }

    /// All candidate facts over `c` on the schema.
    fn candidates(&self, c: &[Val]) -> Vec<Fact> {
        let mut out = Vec::new();
        for &(rel, arity) in &self.schema {
            if arity == 0 {
                out.push(Fact::new(rel, Vec::new()));
                continue;
            }
            let mut idx = vec![0usize; arity];
            loop {
                out.push(Fact::new(rel, idx.iter().map(|&i| c[i]).collect()));
                let mut k = 0;
                while k < arity {
                    idx[k] += 1;
                    if idx[k] < c.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == arity {
                    break;
                }
            }
        }
        out
    }

    fn is_distinct_complete(&self, node: &NodeState, ctx: &Ctx, c: &[Val]) -> bool {
        self.candidates(c)
            .iter()
            .all(|f| node.local.contains(f) || ctx.responsible(node, f))
    }

    fn try_output(&self, node: &mut NodeState, ctx: &Ctx) {
        // Enumerate C ⊆ adom(known) with |C| ≤ c_max; output Q(known|C)
        // for each distinct-complete C.
        let adom = node.local.adom_sorted();
        let n = adom.len();
        let mut results = Instance::new();
        // Subset enumeration by increasing size, bounded.
        let mut stack: Vec<(usize, Vec<Val>)> = vec![(0, Vec::new())];
        while let Some((start, c)) = stack.pop() {
            if !c.is_empty() && self.is_distinct_complete(node, ctx, &c) {
                let mut dom = fxset();
                dom.extend(c.iter().copied());
                results.extend_from(&self.query.eval(&node.local.restrict_to(&dom)));
            }
            if c.len() < self.c_max {
                for (i, &v) in adom.iter().enumerate().take(n).skip(start) {
                    let mut c2 = c.clone();
                    c2.push(v);
                    stack.push((i + 1, c2));
                }
            }
        }
        node.output_all(&results);
    }
}

impl TransducerProgram for DistinctCompleteSets {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        self.try_output(node, ctx);
        node.local.iter().cloned().collect()
    }

    fn on_fact(&self, node: &mut NodeState, _from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        if node.local.insert(fact.clone()) {
            self.try_output(node, ctx);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ideal_distribution, policy_distribution};
    use crate::scheduler::{run_heartbeats_only, run_with_ctx, Schedule, SimRun};
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;
    use parlog_relal::policy::{DistributionPolicy, ReplicateAll};
    use parlog_relal::symbols::rel;

    fn open_q() -> impl QueryFunction + Clone {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        move |db: &Instance| parlog_relal::eval::eval_query(&q, db)
    }

    fn graph() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[2, 4]),
        ])
    }

    fn program() -> DistinctCompleteSets {
        DistinctCompleteSets::new(open_q(), vec![(rel("E"), 2)], 3)
    }

    /// A policy with one full-coverage node (node 0 responsible for
    /// everything) plus hash-spread responsibility — the family on which
    /// the set-based algorithm is complete.
    #[derive(Clone)]
    struct AnchoredPolicy {
        n: usize,
    }
    impl DistributionPolicy for AnchoredPolicy {
        fn num_nodes(&self) -> usize {
            self.n
        }
        fn responsible(&self, node: usize, f: &Fact) -> bool {
            node == 0
                || (parlog_relal::fastmap::hash_u64(3, f.args[0].0) % self.n as u64) as usize
                    == node
        }
    }

    #[test]
    fn coordination_free_on_ideal_distribution() {
        let db = graph();
        let expected = open_q().eval(&db);
        let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 3 }));
        let out = run_heartbeats_only(&program(), &ideal_distribution(&db, 3), ctx);
        assert_eq!(out, expected);
    }

    #[test]
    fn complete_under_anchored_policy() {
        let db = graph();
        let expected = open_q().eval(&db);
        let policy = Arc::new(AnchoredPolicy { n: 3 });
        let shards = policy_distribution(&db, policy.as_ref());
        for schedule in [Schedule::Random(2), Schedule::Fifo, Schedule::Lifo] {
            let ctx = Ctx::oblivious().with_policy(policy.clone());
            let out = run_with_ctx(&program(), &shards, ctx, schedule);
            assert_eq!(out, expected, "{schedule:?}");
        }
    }

    #[test]
    fn prefix_outputs_always_sound() {
        let db = graph();
        let expected = open_q().eval(&db);
        let policy = Arc::new(AnchoredPolicy { n: 4 });
        let shards = policy_distribution(&db, policy.as_ref());
        let ctx = Ctx::oblivious().with_policy(policy);
        let p = program();
        let mut run = SimRun::new(&p, &shards, ctx);
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let mut rr = 0;
        loop {
            assert!(run.outputs().is_subset_of(&expected));
            if !run.step(&p, Schedule::Random(5), &mut rng, &mut rr) {
                break;
            }
        }
        assert_eq!(run.outputs(), expected);
    }

    #[test]
    fn candidate_enumeration_counts() {
        let p = program();
        assert_eq!(p.candidates(&[Val(1)]).len(), 1); // E(1,1)
        assert_eq!(p.candidates(&[Val(1), Val(2)]).len(), 4);
        assert_eq!(p.candidates(&[Val(1), Val(2), Val(3)]).len(), 9);
    }
}
