//! The survey's coordination-free (and deliberately coordinating)
//! transducer programs.
//!
//! | Program | Class | Survey source | Queries |
//! |---|---|---|---|
//! | [`monotone::MonotoneBroadcast`] | F0 = A0 = M | Ex. 5.1(1) | monotone |
//! | [`coordinated::CoordinatedBroadcast`] | not coordination-free | Ex. 5.1(2) | any generic query |
//! | [`distinct::PolicyAwareCq`] | F1 = A1 ⊇ (CQ¬ ∩ Mdistinct) | Ex. 5.4 | domain-distinct-monotone CQ¬ |
//! | [`disjoint::DisjointComponent`] | F2 = A2 = Mdisjoint | §5.2.2 | domain-disjoint-monotone |
//! | [`reliable::ReliableBroadcast`] | explicit coordination | failure model (ours) | any wrapped program, under loss |

pub mod coordinated;
pub mod disjoint;
pub mod distinct;
pub mod distinct_sets;
pub mod monotone;
pub mod reliable;
