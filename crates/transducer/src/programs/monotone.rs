//! The naive broadcast program for monotone queries — Example 5.1(1).
//!
//! "1. Output all triangles in H(κ). 2. Broadcast H(κ). 3. If a new edge
//! is received, add it to H(κ) and output any new triangles."
//!
//! Works for every monotone query because "adding more edges to the graph
//! can never invalidate previously output triangles". Coordination-free:
//! the ideal distribution assigns the whole database to every node, on
//! which init alone produces `Q(I)`. Oblivious: never consults `All`.

use crate::network::{NodeState, QueryFunction};
use crate::program::{Broadcast, Ctx, TransducerProgram};
use parlog_relal::fact::Fact;
use std::sync::Arc;

/// Broadcast-everything evaluation of a monotone query (class F0/A0).
#[derive(Clone)]
pub struct MonotoneBroadcast {
    query: Arc<dyn QueryFunction>,
    name: String,
}

impl MonotoneBroadcast {
    /// Wrap a monotone query. (Monotonicity is the caller's obligation —
    /// Theorem 5.3 says exactly the monotone queries are computed
    /// correctly by this strategy; `parlog::calm` provides testers.)
    pub fn new<Q: QueryFunction + 'static>(query: Q) -> MonotoneBroadcast {
        MonotoneBroadcast {
            query: Arc::new(query),
            name: "monotone-broadcast".into(),
        }
    }

    fn emit(&self, node: &mut NodeState) {
        let result = self.query.eval(&node.local);
        node.output_all(&result);
    }
}

impl TransducerProgram for MonotoneBroadcast {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, node: &mut NodeState, _ctx: &Ctx) -> Broadcast {
        self.emit(node);
        node.local.iter().cloned().collect()
    }

    fn on_fact(&self, node: &mut NodeState, _from: usize, fact: &Fact, _ctx: &Ctx) -> Broadcast {
        if node.local.insert(fact.clone()) {
            self.emit(node);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{hash_distribution, ideal_distribution, single_node_distribution};
    use crate::scheduler::{run_heartbeats_only, run_to_quiescence};
    use parlog_relal::fact::fact;
    use parlog_relal::instance::Instance;
    use parlog_relal::parser::parse_query;

    fn triangle_graph() -> Instance {
        Instance::from_facts([
            fact("E", &[1, 2]),
            fact("E", &[2, 3]),
            fact("E", &[3, 1]),
            fact("E", &[3, 4]),
            fact("E", &[4, 5]),
        ])
    }

    fn q() -> parlog_relal::ConjunctiveQuery {
        parse_query("H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x").unwrap()
    }

    #[test]
    fn computes_triangles_on_all_distributions() {
        let db = triangle_graph();
        let expected = parlog_relal::eval::eval_query(&q(), &db);
        assert!(!expected.is_empty());
        let p = MonotoneBroadcast::new(q());
        for dist in [
            ideal_distribution(&db, 3),
            single_node_distribution(&db, 3),
            hash_distribution(&db, 3, 7),
        ] {
            for seed in 0..5 {
                assert_eq!(run_to_quiescence(&p, &dist, seed), expected);
            }
        }
    }

    #[test]
    fn coordination_free_on_ideal_distribution() {
        let db = triangle_graph();
        let expected = parlog_relal::eval::eval_query(&q(), &db);
        let p = MonotoneBroadcast::new(q());
        let out = run_heartbeats_only(&p, &ideal_distribution(&db, 3), Ctx::oblivious());
        assert_eq!(out, expected);
    }

    #[test]
    fn not_complete_without_reading_on_split_data() {
        // On a non-ideal distribution, the heartbeat-only run under-
        // approximates (messages are sent but never read) — outputs are
        // sound but incomplete. This is why coordination-freeness
        // existentially quantifies the distribution.
        let db = triangle_graph();
        let expected = parlog_relal::eval::eval_query(&q(), &db);
        let p = MonotoneBroadcast::new(q());
        let dist = hash_distribution(&db, 3, 1);
        let out = run_heartbeats_only(&p, &dist, Ctx::oblivious());
        assert!(out.is_subset_of(&expected));
        assert_ne!(out, expected, "the hash split separates the triangle");
    }

    #[test]
    fn works_with_datalog_query() {
        let p_dl = parlog_datalog::program::parse_program(
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)",
        )
        .unwrap();
        let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
        let expected = parlog_datalog::eval::eval_program(&p_dl, &db).unwrap();
        let prog = MonotoneBroadcast::new(p_dl);
        let out = run_to_quiescence(&prog, &hash_distribution(&db, 2, 3), 9);
        assert_eq!(out, expected);
    }

    #[test]
    fn outputs_are_never_retracted() {
        // Eventual consistency: outputs only grow along a run.
        use crate::scheduler::{Schedule, SimRun};
        let db = triangle_graph();
        let p = MonotoneBroadcast::new(q());
        let dist = hash_distribution(&db, 3, 5);
        let mut run = SimRun::new(&p, &dist, Ctx::oblivious());
        let mut rng = rand::SeedableRng::seed_from_u64(11);
        let mut rr = 0;
        let mut prev = run.outputs();
        while run.step(&p, Schedule::Random(11), &mut rng, &mut rr) {
            let now = run.outputs();
            assert!(prev.is_subset_of(&now), "output was retracted");
            prev = now;
        }
    }
}
