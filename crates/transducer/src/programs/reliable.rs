//! Ack/retransmit-with-backoff — reliability as *explicit coordination*.
//!
//! The survey's model assumes messages are never lost; drop that
//! assumption and eventual consistency fails even for monotone programs
//! (the transport eats derivations). Reliability can be bought back, but
//! only by coordinating: every delivery is acknowledged, and unacked
//! copies are retransmitted with exponential backoff until the retry
//! budget runs out. [`ReliableBroadcast`] wraps any transducer program
//! with that protocol — the wrapped program is unchanged; the acks and
//! retransmissions are runtime traffic, tallied in
//! [`FaultStats::coordination_messages`](crate::faulty::FaultStats::coordination_messages)
//! so the price of reliability is a number, not a slogan.
//!
//! This mirrors the CALM trade-off: a monotone program is free of
//! *semantic* coordination (waiting to know it has heard everything) but
//! still needs *transport* coordination the moment the channel may lose
//! messages. The two costs are separable, and this module measures the
//! second one.

use crate::faulty::FaultStats;
use crate::network::NodeState;
use crate::program::{Broadcast, Ctx, TransducerProgram};
use crate::scheduler::{Schedule, SimRun};
use parlog_faults::{FaultPlan, RetransmitPolicy};
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;

/// A transducer program wrapped in the ack/retransmit protocol.
///
/// Program semantics (init / on-fact / heartbeat) delegate verbatim to
/// the inner program; the coordination lives in the runtime and is
/// switched on by [`ReliableBroadcast::run`], which forces the fault
/// plan's retransmit policy.
pub struct ReliableBroadcast<P> {
    inner: P,
    policy: RetransmitPolicy,
    name: String,
}

impl<P: TransducerProgram> ReliableBroadcast<P> {
    /// Wrap `inner` with the default retransmit policy.
    pub fn new(inner: P) -> ReliableBroadcast<P> {
        ReliableBroadcast::with_policy(inner, RetransmitPolicy::default())
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: P, policy: RetransmitPolicy) -> ReliableBroadcast<P> {
        let name = format!("reliable({})", inner.name());
        ReliableBroadcast {
            inner,
            policy,
            name,
        }
    }

    /// The retransmit policy in force.
    pub fn policy(&self) -> RetransmitPolicy {
        self.policy
    }

    /// Run to quiescence under `plan` with the ack/retransmit protocol
    /// active (the plan's own retransmit setting is overridden by this
    /// wrapper's policy). Returns the outputs and the fault statistics —
    /// `stats.coordination_messages()` is what reliability cost.
    pub fn run(
        &self,
        shards: &[Instance],
        ctx: Ctx,
        schedule: Schedule,
        plan: &FaultPlan,
    ) -> (Instance, FaultStats) {
        let plan = plan.clone().with_retransmit(self.policy);
        let mut run = SimRun::new(self, shards, ctx);
        run.run_faulty(self, schedule, Some(&plan));
        (run.outputs(), run.fault_stats())
    }
}

impl<P: TransducerProgram> TransducerProgram for ReliableBroadcast<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn requires_all(&self) -> bool {
        self.inner.requires_all()
    }

    fn init(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        self.inner.init(node, ctx)
    }

    fn on_fact(&self, node: &mut NodeState, from: usize, fact: &Fact, ctx: &Ctx) -> Broadcast {
        self.inner.on_fact(node, from, fact, ctx)
    }

    fn heartbeat(&self, node: &mut NodeState, ctx: &Ctx) -> Broadcast {
        self.inner.heartbeat(node, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::hash_distribution;
    use crate::programs::monotone::MonotoneBroadcast;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;

    fn setup() -> (MonotoneBroadcast, Vec<Instance>, Instance) {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..24u64).map(|i| fact("E", &[i, i + 1])));
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let shards = hash_distribution(&db, 4, 3);
        (MonotoneBroadcast::new(q), shards, expected)
    }

    #[test]
    fn retransmit_restores_completeness_under_loss() {
        let (p, shards, expected) = setup();
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan::lossy(seed, 0.4);
            // Without coordination: incomplete (sound but lossy).
            let (bare, bare_stats) = crate::scheduler::run_with_faults(
                &p,
                &shards,
                Ctx::oblivious(),
                Schedule::Random(seed),
                &plan,
            );
            assert!(bare.is_subset_of(&expected));
            assert!(bare_stats.dropped > 0, "the plan must actually drop");
            assert_eq!(bare_stats.coordination_messages(), 0);
            // With ack/retransmit: exact, at a measurable message cost.
            let reliable = ReliableBroadcast::new(MonotoneBroadcast::new(
                parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap(),
            ));
            let (out, stats) =
                reliable.run(&shards, Ctx::oblivious(), Schedule::Random(seed), &plan);
            assert_eq!(out, expected, "seed {seed}");
            assert!(
                stats.coordination_messages() > 0,
                "reliability is not free: acks/retransmissions must be counted"
            );
            assert!(stats.retransmissions > 0);
        }
    }

    #[test]
    fn zero_loss_reliable_run_pays_only_acks() {
        let (p, shards, expected) = setup();
        let reliable = ReliableBroadcast::new(p);
        let plan = FaultPlan::none(9);
        let (out, stats) = reliable.run(&shards, Ctx::oblivious(), Schedule::Random(9), &plan);
        assert_eq!(out, expected);
        assert_eq!(stats.retransmissions, 0, "nothing was lost");
        assert!(stats.acks > 0, "every delivery is still acknowledged");
    }

    #[test]
    fn jittered_backoff_keeps_coordination_cost_measured() {
        // Satellite check: switching retransmission from fixed-interval
        // to capped-exponential-with-jitter must not lose any accounting
        // — every retransmission and ack is still counted, completeness
        // is still restored, and the whole schedule stays deterministic.
        let (_, shards, expected) = setup();
        let policy = RetransmitPolicy {
            max_retries: 10,
            backoff_base: 1,
            backoff_cap: 8,
            jitter_pct: 50,
        };
        let run_once = |seed: u64| {
            let reliable = ReliableBroadcast::with_policy(
                MonotoneBroadcast::new(parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap()),
                policy,
            );
            reliable.run(
                &shards,
                Ctx::oblivious(),
                Schedule::Random(seed),
                &FaultPlan::lossy(seed, 0.4),
            )
        };
        let (out_a, stats_a) = run_once(2);
        let (out_b, stats_b) = run_once(2);
        assert_eq!(out_a, expected, "jittered retransmit restores completeness");
        assert_eq!(out_a, out_b, "jitter is seeded: identical outputs");
        assert_eq!(stats_a, stats_b, "jitter is seeded: identical reruns");
        assert!(stats_a.retransmissions > 0);
        assert_eq!(
            stats_a.coordination_messages(),
            stats_a.acks + stats_a.retransmissions,
            "coordination cost is exactly acks + retransmissions"
        );
    }

    #[test]
    fn backoff_respects_retry_budget() {
        // A crash-stopped destination can never ack: the sender must give
        // up after max_retries, so retransmissions stay bounded.
        let (p, shards, _expected) = setup();
        let policy = RetransmitPolicy::fixed(3, 1);
        let reliable = ReliableBroadcast::with_policy(p, policy);
        let plan = FaultPlan::crash_stop(4, 1, 2);
        let (_, stats) = reliable.run(&shards, Ctx::oblivious(), Schedule::Random(4), &plan);
        // Each undeliverable copy retries at most max_retries times.
        assert!(stats.retransmissions <= (stats.lost_in_crash + 1) * 3);
    }
}
