//! Fair asynchronous execution of transducer networks.
//!
//! "Computation is modeled as a transition system. At every point in time,
//! one node is active and can perform a transition … The input message is
//! chosen nondeterministically to model arbitrary delay of messages." We
//! realize the nondeterminism with pluggable [`Schedule`]s — seeded-random
//! (sampling fair runs), FIFO, LIFO (maximal reordering) and round-robin —
//! and run until **quiescence**: all buffers drained and heartbeats
//! produce no further change. For set-driven programs quiescence is the
//! run's fixpoint, realizing eventual consistency on finite inputs.
//!
//! The runtime deduplicates a node's repeated broadcasts of the same fact
//! (receivers are idempotent — their states are sets), which keeps runs
//! finite without changing any program's semantics.

use crate::faulty::{FaultState, FaultStats, Health};
use crate::network::NodeState;
use crate::program::{Ctx, TransducerProgram};
use parlog_faults::{FaultPlan, MessageFate};
use parlog_relal::fact::Fact;
use parlog_relal::fastmap::{fxset, FxSet};
use parlog_relal::instance::Instance;
use parlog_trace::{CommCounters, FaultEvent, FaultEventKind, TraceEvent, TraceHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Estimated wire size of one fact: 8 bytes per value plus an 8-byte
/// relation tag (the trace layer's bytes metric, matching the MPC
/// side's accounting).
fn fact_bytes(f: &Fact) -> u64 {
    8 * (f.args.len() as u64 + 1)
}

/// Message-delivery strategies. All are fair (no message is deferred
/// forever) because delivery continues until the buffers drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Uniformly random node and message choice, seeded.
    Random(u64),
    /// Deliver oldest messages first, nodes round-robin.
    Fifo,
    /// Deliver newest messages first (maximal reordering), nodes
    /// round-robin.
    Lifo,
    /// One delivery per node in turn, oldest first.
    RoundRobin,
}

/// A simulated run of a transducer network.
pub struct SimRun {
    /// Node states.
    pub nodes: Vec<NodeState>,
    /// In-flight messages per destination: `(from, fact)`.
    buffers: Vec<Vec<(usize, Fact)>>,
    /// Per-node set of facts already broadcast (runtime-level dedup).
    sent: Vec<FxSet<Fact>>,
    /// Durable snapshots: the initial shard of every node, from which a
    /// crash-recover node restarts.
    shards: Vec<Instance>,
    /// Fault-injection state; inert (a pure pass-through) unless a
    /// [`FaultPlan`] is installed.
    faults: FaultState<Fact>,
    /// Which partition epochs were open at the last pump — transition
    /// edges emit `PartitionStart` / `PartitionHeal` trace events.
    partition_open: Vec<bool>,
    /// Observability handle; off (free) by default.
    trace: TraceHandle,
    ctx: Ctx,
    /// Total messages delivered so far.
    pub delivered: usize,
    /// Total facts broadcast (before fan-out to n−1 receivers).
    pub facts_broadcast: usize,
}

impl SimRun {
    /// Set up a network: one node per shard, run `init` everywhere, queue
    /// the initial broadcasts.
    pub fn new<P: TransducerProgram + ?Sized>(
        program: &P,
        shards: &[Instance],
        ctx: Ctx,
    ) -> SimRun {
        assert!(!shards.is_empty(), "a network needs at least one node");
        if program.requires_all() {
            assert!(
                ctx.all.is_some(),
                "program `{}` requires the All relation but the context is oblivious",
                program.name()
            );
        }
        let n = shards.len();
        let mut run = SimRun {
            nodes: shards
                .iter()
                .enumerate()
                .map(|(i, s)| NodeState::new(i, s.clone()))
                .collect(),
            buffers: vec![Vec::new(); n],
            sent: vec![fxset(); n],
            shards: shards.to_vec(),
            faults: FaultState::inert(n),
            partition_open: Vec::new(),
            trace: TraceHandle::off(),
            ctx,
            delivered: 0,
            facts_broadcast: 0,
        };
        for i in 0..n {
            let out = program.init(&mut run.nodes[i], &run.ctx.clone());
            run.broadcast(i, out);
        }
        run
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// What the injector did so far (all zeros for fault-free runs).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// Attach a trace handle: message-level comm counters and the
    /// crash / recovery / heal timeline are delivered to its sink. The
    /// default is `TraceHandle::off()` — a single branch per site, no
    /// allocation, when tracing is off.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Liveness of node `i`.
    pub fn health(&self, i: usize) -> Health {
        self.faults.health[i]
    }

    /// The run's virtual clock: delivered messages plus fast-forward
    /// jumps at drain boundaries. Supervisors time failure detection and
    /// recovery against this clock.
    pub fn clock(&self) -> usize {
        self.faults.clock
    }

    /// The installed partition schedule, if any.
    pub fn partition(&self) -> Option<&parlog_faults::PartitionPlan> {
        self.faults.partition()
    }

    /// Is the directed link `from → to` severed by an open partition
    /// epoch at the current clock?
    pub fn link_severed(&self, from: usize, to: usize) -> bool {
        self.faults.severed(from, to).is_some()
    }

    /// Copies currently held at sources because their link is severed
    /// by an open partition epoch (parked until heal; parked forever
    /// under a permanent split).
    pub fn held_by_partition(&self) -> usize {
        self.faults
            .delayed
            .iter()
            .filter(|m| m.release == usize::MAX || self.faults.severed(m.from, m.dest).is_some())
            .count()
    }

    /// Node ids currently able to take transitions.
    pub fn live_nodes(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| self.faults.health[i].is_up())
            .collect()
    }

    /// The durable snapshot (initial shard) of node `i` — what survives
    /// a crash, and what a supervisor re-replicates when the node won't.
    pub fn shard(&self, i: usize) -> &Instance {
        &self.shards[i]
    }

    /// Undelivered copies currently buffered at node `i`.
    pub fn buffered(&self, i: usize) -> usize {
        self.buffers[i].len()
    }

    /// **Shard re-replication** — the supervisor's heal action for a
    /// crash-stopped node: survivor `to` adopts the durable shard of
    /// `dead`, replays it through its own transition function (as a
    /// self-delivery) and rebroadcasts it, so the network re-derives
    /// everything the dead node's data contributed. The shard is also
    /// merged into `to`'s durable snapshot, making the adoption itself
    /// crash-proof. Returns the number of facts adopted (the extra load
    /// the heal places on `to` before fan-out).
    ///
    /// # Panics
    /// Panics if `to` is not up.
    pub fn adopt_shard<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        dead: usize,
        to: usize,
    ) -> usize {
        assert!(
            self.faults.health[to].is_up(),
            "cannot re-replicate onto a down node"
        );
        let shard = self.shards[dead].clone();
        let ctx = self.ctx.clone();
        let mut adopted = Vec::with_capacity(shard.len());
        for f in shard.iter() {
            let out = program.on_fact(&mut self.nodes[to], to, f, &ctx);
            self.broadcast(to, out);
            adopted.push(f.clone());
        }
        self.broadcast(to, adopted);
        self.shards[to].extend_from(&shard);
        self.trace.emit(|| {
            TraceEvent::Fault(FaultEvent {
                vclock: self.faults.clock as f64,
                kind: FaultEventKind::Heal,
                node: dead,
                info: shard.len() as u64,
            })
        });
        shard.len()
    }

    /// Install a fault plan mid-setup: all *future* routing goes through
    /// the injector, and the already-buffered init broadcasts are
    /// re-routed through it too, so init messages are as faulty as any
    /// others. With a benign plan this is the identity.
    pub fn install_plan(&mut self, plan: &FaultPlan) {
        self.faults.install(plan);
        self.partition_open = vec![false; plan.partition.as_ref().map_or(0, |p| p.epochs.len())];
        self.pump_partition_events();
        for dest in 0..self.n() {
            let copies = std::mem::take(&mut self.buffers[dest]);
            for (from, fact) in copies {
                self.send_copy(from, dest, fact, 0);
            }
        }
    }

    fn broadcast(&mut self, from: usize, facts: Vec<Fact>) {
        for f in facts {
            if !self.sent[from].insert(f.clone()) {
                continue; // runtime-level dedup per sender
            }
            self.facts_broadcast += 1;
            for dest in 0..self.buffers.len() {
                if dest != from {
                    self.send_copy(from, dest, f.clone(), 0);
                }
            }
        }
    }

    /// The single routing function: every copy of every message — normal,
    /// lossy, duplicated, delayed, retransmitted — passes through here.
    /// `attempts` is 0 for first sends and counts retransmissions.
    fn send_copy(&mut self, from: usize, dest: usize, fact: Fact, attempts: u32) {
        if let Some(until) = self.faults.severed(from, dest) {
            // An open partition epoch severs this link: the copy is held
            // *at the source* — never lost — and flushed back through
            // this router when the epoch heals (where the destination's
            // health and any later epoch are re-checked). Distinct from
            // `Drop`: the model's no-loss assumption is preserved.
            self.trace.emit(|| {
                TraceEvent::Comm(CommCounters {
                    sent: 1,
                    delayed: 1,
                    bytes: fact_bytes(&fact),
                    ..CommCounters::default()
                })
            });
            self.faults.hold_partitioned(from, dest, fact, until);
            return;
        }
        if !self.faults.health[dest].is_up() {
            // The destination is down; the copy is lost in transit. In
            // reliable mode the sender's ack timeout will fire and it
            // retries — which is exactly how a crash-recover node gets
            // its mail back.
            self.faults.stats.lost_in_crash += 1;
            self.trace.emit(|| {
                TraceEvent::Comm(CommCounters {
                    sent: 1,
                    wasted: 1,
                    bytes: fact_bytes(&fact),
                    ..CommCounters::default()
                })
            });
            self.faults.schedule_retrans(from, dest, fact, attempts);
            return;
        }
        let fate = self.faults.fate();
        self.trace.emit(|| {
            let bytes = fact_bytes(&fact);
            TraceEvent::Comm(match fate {
                MessageFate::Deliver => CommCounters {
                    sent: 1,
                    bytes,
                    ..CommCounters::default()
                },
                MessageFate::Drop => CommCounters {
                    sent: 1,
                    dropped: 1,
                    bytes,
                    ..CommCounters::default()
                },
                MessageFate::Duplicate => CommCounters {
                    sent: 2,
                    duplicated: 1,
                    bytes: 2 * bytes,
                    ..CommCounters::default()
                },
                MessageFate::Delay(_) => CommCounters {
                    sent: 1,
                    delayed: 1,
                    bytes,
                    ..CommCounters::default()
                },
                // A corrupted copy still travels the wire once; the
                // tampering itself is reported on the fault timeline, not
                // in the comm counters.
                MessageFate::Corrupt(_) => CommCounters {
                    sent: 1,
                    bytes,
                    ..CommCounters::default()
                },
                // Unreachable from the injector's dice (partitions are
                // decided by the topology-aware severed check above),
                // but a hold is a delay on the wire.
                MessageFate::Partitioned { .. } => CommCounters {
                    sent: 1,
                    delayed: 1,
                    bytes,
                    ..CommCounters::default()
                },
            })
        });
        match fate {
            MessageFate::Deliver => self.enqueue(dest, from, fact),
            MessageFate::Drop => {
                self.faults.stats.dropped += 1;
                self.faults.schedule_retrans(from, dest, fact, attempts);
            }
            MessageFate::Duplicate => {
                self.faults.stats.duplicated += 1;
                self.enqueue(dest, from, fact.clone());
                self.enqueue(dest, from, fact);
            }
            MessageFate::Delay(d) => {
                self.faults.stats.delayed += 1;
                let release = self.faults.clock + d as usize;
                self.faults.delayed.push(crate::faulty::ParkedMsg {
                    release,
                    dest,
                    from,
                    msg: fact,
                    attempts,
                });
            }
            MessageFate::Corrupt(e) => {
                // Byzantine tampering in transit: one argument is flipped
                // by an entropy-derived nonzero delta, so the destination
                // receives a well-formed but *wrong* fact. A zero-arity
                // fact has nothing to flip and passes unchanged.
                self.faults.stats.corrupted += 1;
                let mut tampered = fact;
                if !tampered.args.is_empty() {
                    let idx = e as usize % tampered.args.len();
                    tampered.args[idx].0 ^= (e | 1) & 0xFFFF;
                }
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: self.faults.clock as f64,
                        kind: FaultEventKind::Corrupt,
                        node: dest,
                        info: e,
                    })
                });
                self.enqueue(dest, from, tampered);
            }
            MessageFate::Partitioned { until } => {
                self.faults.hold_partitioned(from, dest, fact, until);
            }
        }
    }

    /// Place one copy in a destination buffer, possibly at a reordered
    /// position.
    fn enqueue(&mut self, dest: usize, from: usize, fact: Fact) {
        let len = self.buffers[dest].len();
        match self.faults.enqueue_position(len) {
            None => self.buffers[dest].push((from, fact)),
            Some(pos) => {
                self.faults.stats.reordered += 1;
                self.trace.emit(|| {
                    TraceEvent::Comm(CommCounters {
                        reordered: 1,
                        ..CommCounters::default()
                    })
                });
                self.buffers[dest].insert(pos, (from, fact));
            }
        }
    }

    /// Emit `PartitionStart` / `PartitionHeal` on epoch open/close
    /// edges observed at the current clock. `node` carries the epoch
    /// index; a start's `info` is the scheduled heal clock
    /// (`u64::MAX` = permanent), a heal's `info` is the number of held
    /// copies released by that heal.
    fn pump_partition_events(&mut self) {
        if self.partition_open.is_empty() {
            return;
        }
        let clock = self.faults.clock;
        for e in 0..self.partition_open.len() {
            let (open, heal) = match self.faults.partition() {
                Some(p) => (p.epochs[e].open_at(clock), p.epochs[e].heal),
                None => return,
            };
            if open && !self.partition_open[e] {
                self.partition_open[e] = true;
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: clock as f64,
                        kind: FaultEventKind::PartitionStart,
                        node: e,
                        info: if heal == usize::MAX {
                            u64::MAX
                        } else {
                            heal as u64
                        },
                    })
                });
            } else if !open && self.partition_open[e] {
                self.partition_open[e] = false;
                let released = self
                    .faults
                    .delayed
                    .iter()
                    .filter(|m| m.release == heal)
                    .count();
                self.trace.emit(|| {
                    TraceEvent::Fault(FaultEvent {
                        vclock: clock as f64,
                        kind: FaultEventKind::PartitionHeal,
                        node: e,
                        info: released as u64,
                    })
                });
            }
        }
    }

    /// Fire due crash events, restart due recoveries, release due parked
    /// copies. Called before every delivery choice and at drain
    /// boundaries.
    fn pump<P: TransducerProgram + ?Sized>(&mut self, program: &P) {
        self.pump_partition_events();
        let clock = self.faults.clock as f64;
        for (idx, event) in self.faults.due_crashes() {
            self.faults.apply_crash(idx, event);
            // In-flight copies touching the crashed node are lost: its
            // incoming buffer, and its own undelivered broadcasts.
            let node = event.node;
            let mut lost = std::mem::take(&mut self.buffers[node]).len();
            for buf in &mut self.buffers {
                let before = buf.len();
                buf.retain(|(from, _)| *from != node);
                lost += before - buf.len();
            }
            self.faults.stats.lost_in_crash += lost;
            if lost > 0 {
                // In-flight copies destroyed by the crash never reach
                // `send_copy` again — book their waste here so the sink
                // agrees with the injector's `lost_in_crash` tally.
                self.trace.emit(|| {
                    TraceEvent::Comm(CommCounters {
                        wasted: lost as u64,
                        ..CommCounters::default()
                    })
                });
            }
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: clock,
                    kind: FaultEventKind::Crash,
                    node,
                    info: lost as u64,
                })
            });
        }
        let recoveries = self.faults.due_recoveries();
        for node in recoveries {
            // Restart from the durable snapshot: volatile state (received
            // facts, aux, output, send-dedup) is gone; init re-runs and
            // rebroadcasts the node's own data.
            self.faults.health[node] = Health::Up;
            self.faults.stats.recoveries += 1;
            self.trace.emit(|| {
                TraceEvent::Fault(FaultEvent {
                    vclock: clock,
                    kind: FaultEventKind::Recovery,
                    node,
                    info: 0,
                })
            });
            self.nodes[node] = NodeState::new(node, self.shards[node].clone());
            self.sent[node].clear();
            let ctx = self.ctx.clone();
            let out = program.init(&mut self.nodes[node], &ctx);
            self.broadcast(node, out);
        }
        let retrans_before = self.faults.stats.retransmissions;
        let due = self.faults.take_due();
        let retrans = self.faults.stats.retransmissions - retrans_before;
        if retrans > 0 {
            self.trace.emit(|| {
                TraceEvent::Comm(CommCounters {
                    retransmitted: retrans as u64,
                    ..CommCounters::default()
                })
            });
        }
        for parked in due {
            self.send_copy(parked.from, parked.dest, parked.msg, parked.attempts);
        }
    }

    /// Is any fault-side work (parked releases, retransmissions) still
    /// pending? Part of the quiescence condition for external drivers.
    pub fn fault_work_pending(&self) -> bool {
        !self.faults.idle()
    }

    /// At a drain boundary (nothing deliverable now), jump the clock to
    /// the next fault event — a parked release, a recovery, an unfired
    /// crash — and process it. Returns whether anything was ahead.
    /// Public so external drivers (the supervisor) can reproduce the
    /// [`SimRun::run_faulty`] loop with their own logic interleaved.
    pub fn advance_clock<P: TransducerProgram + ?Sized>(&mut self, program: &P) -> bool {
        match self.faults.next_event() {
            None => false,
            Some(t) => {
                self.faults.clock = t.max(self.faults.clock);
                self.pump(program);
                true
            }
        }
    }

    /// Are all message buffers empty?
    pub fn quiet(&self) -> bool {
        self.buffers.iter().all(|b| b.is_empty())
    }

    /// Deliver one message according to `schedule`. Returns `false` when
    /// nothing is in flight.
    pub fn step<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        schedule: Schedule,
        rng: &mut StdRng,
        rr_cursor: &mut usize,
    ) -> bool {
        self.pump(program);
        let nonempty: Vec<usize> = (0..self.n())
            .filter(|&i| self.faults.health[i].is_up() && !self.buffers[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            return false;
        }
        let (node, msg_idx) = match schedule {
            Schedule::Random(_) => {
                let node = nonempty[rng.gen_range(0..nonempty.len())];
                let idx = rng.gen_range(0..self.buffers[node].len());
                (node, idx)
            }
            Schedule::Fifo => {
                let node = nonempty[0];
                (node, 0)
            }
            Schedule::Lifo => {
                let node = nonempty[0];
                (node, self.buffers[node].len() - 1)
            }
            Schedule::RoundRobin => {
                let node = *nonempty
                    .iter()
                    .find(|&&i| i >= *rr_cursor)
                    .unwrap_or(&nonempty[0]);
                *rr_cursor = (node + 1) % self.n();
                (node, 0)
            }
        };
        let (from, fact) = self.buffers[node].remove(msg_idx);
        self.delivered += 1;
        self.faults.clock += 1;
        let acked = self.faults.reliable().is_some();
        if acked {
            self.faults.stats.acks += 1; // receiver acknowledges
        }
        self.trace.emit(|| {
            TraceEvent::Comm(CommCounters {
                delivered: 1,
                acks: acked as u64,
                ..CommCounters::default()
            })
        });
        let ctx = self.ctx.clone();
        let out = program.on_fact(&mut self.nodes[node], from, &fact, &ctx);
        self.broadcast(node, out);
        true
    }

    /// One heartbeat per node; returns whether any state or broadcast
    /// changed.
    pub fn heartbeat_round<P: TransducerProgram + ?Sized>(&mut self, program: &P) -> bool {
        let mut changed = false;
        for i in 0..self.n() {
            if !self.faults.health[i].is_up() {
                continue; // crashed nodes take no transitions
            }
            let before = self.nodes[i].output_so_far().len();
            let ctx = self.ctx.clone();
            let out = program.heartbeat(&mut self.nodes[i], &ctx);
            if !out.is_empty() {
                changed = true;
            }
            self.broadcast(i, out);
            if self.nodes[i].output_so_far().len() != before {
                changed = true;
            }
        }
        changed
    }

    /// Run deliveries and heartbeats until quiescence. Panics after an
    /// absurd number of steps (divergence guard). Equivalent to
    /// [`SimRun::run_faulty`] with no plan — both drive the same loop.
    pub fn run<P: TransducerProgram + ?Sized>(&mut self, program: &P, schedule: Schedule) {
        self.run_faulty(program, schedule, None);
    }

    /// **Failure injection**: run under a [`FaultPlan`] — or, with
    /// `plan = None`, the plain fault-free run: the fault-free case is
    /// this exact code path with an inert injector, not a separate
    /// implementation (regression-tested by
    /// `zero_loss_rate_equals_normal_run`).
    ///
    /// Faults outside the survey's model (loss, crashes) break eventual
    /// consistency — the no-loss assumption is load-bearing — but never
    /// soundness; see the tests and the fault-tolerance matrix in
    /// `parlog`.
    pub fn run_faulty<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        schedule: Schedule,
        plan: Option<&FaultPlan>,
    ) {
        if let Some(plan) = plan {
            self.install_plan(plan);
        }
        let seed = match schedule {
            Schedule::Random(s) => s,
            _ => 0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rr = 0usize;
        let budget = 10_000_000usize;
        let mut steps = 0usize;
        loop {
            while self.step(program, schedule, &mut rng, &mut rr) {
                steps += 1;
                assert!(steps < budget, "transducer run diverged (no quiescence)");
            }
            // Nothing deliverable now; fast-forward to parked releases,
            // pending recoveries or unfired crashes before concluding.
            if self.advance_clock(program) {
                continue;
            }
            // Buffers drained: heartbeats may trigger more work.
            let mut hb_changed = false;
            for _ in 0..self.n() + 1 {
                if self.heartbeat_round(program) {
                    hb_changed = true;
                } else {
                    break;
                }
            }
            if !hb_changed && self.quiet() && self.faults.idle() {
                return;
            }
        }
    }

    /// Lossy network: drop each message copy independently with
    /// probability `drop_prob`. A thin wrapper over [`SimRun::run_faulty`]
    /// with [`FaultPlan::lossy`].
    pub fn run_lossy<P: TransducerProgram + ?Sized>(
        &mut self,
        program: &P,
        drop_prob: f64,
        seed: u64,
    ) {
        self.run_faulty(
            program,
            Schedule::Random(seed),
            Some(&FaultPlan::lossy(seed, drop_prob)),
        );
    }

    /// The union of all outputs — the result of the run.
    pub fn outputs(&self) -> Instance {
        let mut out = Instance::new();
        for n in &self.nodes {
            out.extend_from(n.output_so_far());
        }
        out
    }
}

/// Run a program on the given shards to quiescence under a seeded-random
/// fair schedule; the context is network-aware iff the program requires
/// `All`. Returns the union of the outputs.
pub fn run_to_quiescence<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    seed: u64,
) -> Instance {
    let ctx = if program.requires_all() {
        Ctx::aware(shards.len())
    } else {
        Ctx::oblivious()
    };
    run_with_ctx(program, shards, ctx, Schedule::Random(seed))
}

/// Run with an explicit context and schedule.
pub fn run_with_ctx<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
) -> Instance {
    let mut run = SimRun::new(program, shards, ctx);
    run.run(program, schedule);
    run.outputs()
}

/// Run under a fault plan to quiescence; returns the union of outputs
/// and what the injector did. The one-call entry point for fault
/// experiments (the fault-tolerance matrix, the proptests, E18).
pub fn run_with_faults<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
    schedule: Schedule,
    plan: &FaultPlan,
) -> (Instance, FaultStats) {
    let mut run = SimRun::new(program, shards, ctx);
    run.run_faulty(program, schedule, Some(plan));
    (run.outputs(), run.fault_stats())
}

/// Heartbeat-only execution: messages may be *sent* but are never read —
/// the mode the coordination-freeness definition quantifies over. Runs
/// init plus heartbeat rounds until the outputs stabilize.
pub fn run_heartbeats_only<P: TransducerProgram + ?Sized>(
    program: &P,
    shards: &[Instance],
    ctx: Ctx,
) -> Instance {
    let mut run = SimRun::new(program, shards, ctx);
    for _ in 0..shards.len() + 2 {
        if !run.heartbeat_round(program) {
            break;
        }
    }
    run.outputs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Broadcast;
    use parlog_relal::fact::fact;

    /// A toy program: output every received fact, broadcast local facts.
    struct Echo;

    impl TransducerProgram for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn init(&self, node: &mut NodeState, _ctx: &Ctx) -> Broadcast {
            let local: Vec<Fact> = node.local.iter().cloned().collect();
            node.output_all(&node.local.clone());
            local
        }

        fn on_fact(
            &self,
            node: &mut NodeState,
            _from: usize,
            fact: &Fact,
            _ctx: &Ctx,
        ) -> Broadcast {
            node.local.insert(fact.clone());
            node.output(fact.clone());
            Vec::new()
        }
    }

    #[test]
    fn echo_reaches_everyone() {
        let shards = vec![
            Instance::from_facts([fact("R", &[1])]),
            Instance::from_facts([fact("R", &[2])]),
            Instance::new(),
        ];
        for schedule in [
            Schedule::Random(1),
            Schedule::Fifo,
            Schedule::Lifo,
            Schedule::RoundRobin,
        ] {
            let mut run = SimRun::new(&Echo, &shards, Ctx::oblivious());
            run.run(&Echo, schedule);
            assert_eq!(run.outputs().len(), 2, "{schedule:?}");
            // Every node saw both facts.
            for n in &run.nodes {
                assert_eq!(n.local.len(), 2);
            }
        }
    }

    #[test]
    fn broadcast_dedup_counts_once() {
        let shards = vec![
            Instance::from_facts([fact("R", &[1])]),
            Instance::from_facts([fact("R", &[1])]),
        ];
        let mut run = SimRun::new(&Echo, &shards, Ctx::oblivious());
        run.run(&Echo, Schedule::Fifo);
        // Each node broadcast the same fact once: 2 broadcasts total.
        assert_eq!(run.facts_broadcast, 2);
    }

    #[test]
    fn heartbeats_only_reads_no_messages() {
        let shards = vec![
            Instance::from_facts([fact("R", &[1])]),
            Instance::from_facts([fact("R", &[2])]),
        ];
        let out = run_heartbeats_only(&Echo, &shards, Ctx::oblivious());
        // Init outputs local data; messages are never read, so outputs
        // are exactly the union of the initial shards' outputs.
        assert_eq!(out.len(), 2);
        // But the nodes never learned each other's facts — check via a
        // full run that *does* deliver: deliveries counted.
        let mut run = SimRun::new(&Echo, &shards, Ctx::oblivious());
        run.run(&Echo, Schedule::Fifo);
        assert!(run.delivered > 0);
    }

    #[test]
    #[should_panic(expected = "requires the All relation")]
    fn all_requiring_program_needs_aware_ctx() {
        struct NeedsAll;
        impl TransducerProgram for NeedsAll {
            fn name(&self) -> &str {
                "needs-all"
            }
            fn requires_all(&self) -> bool {
                true
            }
            fn init(&self, _n: &mut NodeState, _c: &Ctx) -> Broadcast {
                Vec::new()
            }
            fn on_fact(&self, _n: &mut NodeState, _f: usize, _x: &Fact, _c: &Ctx) -> Broadcast {
                Vec::new()
            }
        }
        SimRun::new(&NeedsAll, &[Instance::new()], Ctx::oblivious());
    }

    #[test]
    fn message_loss_breaks_eventual_consistency() {
        // The survey's model forbids message loss; injecting it makes the
        // monotone broadcast incomplete — the assumption is load-bearing.
        use crate::programs::monotone::MonotoneBroadcast;
        let q = parlog_relal::parser::parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])));
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = crate::distribution::hash_distribution(&db, 4, 3);
        // Lossless: complete.
        let mut ok = SimRun::new(&p, &shards, Ctx::oblivious());
        ok.run(&p, Schedule::Random(5));
        assert_eq!(ok.outputs(), expected);
        // Heavy loss: strictly incomplete (but still sound — outputs are
        // never wrong, only missing).
        let mut lossy = SimRun::new(&p, &shards, Ctx::oblivious());
        lossy.run_lossy(&p, 0.9, 5);
        let out = lossy.outputs();
        assert!(out.is_subset_of(&expected));
        assert_ne!(out, expected, "90% loss must lose derivations");
    }

    #[test]
    fn zero_loss_rate_equals_normal_run() {
        let shards = vec![
            Instance::from_facts([fact("R", &[1])]),
            Instance::from_facts([fact("R", &[2])]),
        ];
        let mut a = SimRun::new(&Echo, &shards, Ctx::oblivious());
        a.run_lossy(&Echo, 0.0, 7);
        let mut b = SimRun::new(&Echo, &shards, Ctx::oblivious());
        b.run(&Echo, Schedule::Random(7));
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn single_node_network() {
        let shards = vec![Instance::from_facts([fact("R", &[5])])];
        let out = run_to_quiescence(&Echo, &shards, 3);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn healing_partition_converges_to_fault_free_output() {
        // Hold-and-flush preserves the no-loss assumption: a monotone
        // broadcast under any healing split ends byte-identical to the
        // fault-free run — a partition is just an adversarial delay.
        use crate::programs::monotone::MonotoneBroadcast;
        let q = parlog_relal::parser::parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])));
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = crate::distribution::hash_distribution(&db, 4, 3);
        for seed in [1u64, 2, 3] {
            let plan =
                FaultPlan::partitioned(seed, parlog_faults::PartitionPlan::split(0, 40, &[0, 1]));
            let mut run = SimRun::new(&p, &shards, Ctx::oblivious());
            run.run_faulty(&p, Schedule::Random(seed), Some(&plan));
            assert_eq!(run.outputs(), expected, "seed {seed}");
            assert!(run.fault_stats().partitioned > 0, "the split must bite");
            assert_eq!(run.held_by_partition(), 0, "everything flushed on heal");
        }
    }

    #[test]
    fn permanent_split_quiesces_with_held_messages_and_sound_sides() {
        // A split that never heals: the run still quiesces (held copies
        // are not pending work), each side's output is a sound subset,
        // and the held copies are parked — not lost.
        use crate::programs::monotone::MonotoneBroadcast;
        let q = parlog_relal::parser::parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..20u64).map(|i| fact("E", &[i, i + 1])));
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = crate::distribution::hash_distribution(&db, 4, 3);
        let plan =
            FaultPlan::partitioned(7, parlog_faults::PartitionPlan::permanent_split(0, &[0]));
        let mut run = SimRun::new(&p, &shards, Ctx::oblivious());
        run.run_faulty(&p, Schedule::Random(7), Some(&plan));
        let out = run.outputs();
        assert!(out.is_subset_of(&expected), "sound on every side");
        assert_ne!(out, expected, "a permanent split must lose derivations");
        assert!(run.held_by_partition() > 0, "copies are held, not dropped");
        assert_eq!(run.fault_stats().dropped, 0, "partition is not loss");
        assert!(run.link_severed(0, 1) && run.link_severed(1, 0));
        assert!(!run.link_severed(1, 2));
    }

    #[test]
    fn adopt_shard_heals_a_crash_stop() {
        // Node 0 crash-stops before delivering anything; a survivor
        // adopting its durable shard restores the fault-free answer.
        use crate::programs::monotone::MonotoneBroadcast;
        let q = parlog_relal::parser::parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let db = Instance::from_facts((0..16u64).map(|i| fact("E", &[i, i + 1])));
        let expected = parlog_relal::eval::eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = crate::distribution::hash_distribution(&db, 4, 3);
        let plan = FaultPlan::crash_stop(2, 0, 0);
        // Unhealed: the dead node's shard is missing from the answer.
        let mut broken = SimRun::new(&p, &shards, Ctx::oblivious());
        broken.run_faulty(&p, Schedule::Random(2), Some(&plan));
        let partial = broken.outputs();
        assert!(partial.is_subset_of(&expected));
        assert_ne!(partial, expected, "losing node 0 must lose derivations");
        // Healed: survivor 1 adopts shard 0 and the run converges.
        let mut healed = SimRun::new(&p, &shards, Ctx::oblivious());
        healed.run_faulty(&p, Schedule::Random(2), Some(&plan));
        let adopted = healed.adopt_shard(&p, 0, 1);
        assert_eq!(adopted, shards[0].len());
        healed.run(&p, Schedule::Random(2));
        assert_eq!(healed.outputs(), expected);
        assert!(healed.clock() > 0);
    }
}
