//! A true-multithreaded runtime for transducer programs, built on
//! crossbeam channels — one OS thread per node, unbounded channels as the
//! message buffers, OS scheduling as the source of asynchrony.
//!
//! The simulator in [`crate::scheduler`] samples schedules reproducibly;
//! this runtime cross-validates it against real concurrency: for programs
//! computing a query, both must produce the same output (and they do —
//! see the tests and the `transducer` bench).
//!
//! Termination uses a global in-flight counter: a sender increments it
//! before sending; a receiver decrements after processing. When the
//! counter is zero and a node's channel is empty, no further message can
//! ever arrive for it (nodes only send while processing), so it may stop.

use crate::network::NodeState;
use crate::program::{Ctx, TransducerProgram};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run a program on the given shards with one thread per node; returns
/// the union of outputs after global quiescence.
///
/// **Limitation:** quiescence detection assumes heartbeats do not
/// broadcast once a node's queue is idle — a node exits when the global
/// in-flight counter is zero, its channel is empty and its own heartbeat
/// is silent, so a *message-producing* heartbeat on another node could
/// still address it afterwards. All programs in this crate have
/// message-free heartbeats; for heartbeat-broadcasting programs use the
/// simulator ([`crate::scheduler`]), whose quiescence check is global.
pub fn run_threaded<P>(program: Arc<P>, shards: &[Instance], ctx: Ctx) -> Instance
where
    P: TransducerProgram + 'static + ?Sized,
{
    run_threaded_faulty(program, shards, ctx, None).0
}

/// [`run_threaded`] with message-level fault injection: each copy rolls
/// its fate (drop / duplicate / deliver) on a shared seeded injector at
/// send time. Reordering and delay need no injector here — OS scheduling
/// already supplies both — and node crashes are a simulator-only feature
/// (the simulator owns a global clock to time them against; real threads
/// do not). Straggler entries *are* honored: a slowed node sleeps
/// proportionally to `slowdown − 1` for every message it processes
/// (tallied in `straggler_stalls`), stretching real tail latency without
/// changing what is computed — the scenario the supervisor's speculative
/// re-execution targets. Returns the union of outputs plus the
/// injector's tally.
pub fn run_threaded_faulty<P>(
    program: Arc<P>,
    shards: &[Instance],
    ctx: Ctx,
    plan: Option<&parlog_faults::FaultPlan>,
) -> (Instance, crate::faulty::FaultStats)
where
    P: TransducerProgram + 'static + ?Sized,
{
    assert!(!shards.is_empty());
    if program.requires_all() {
        assert!(ctx.all.is_some(), "program requires the All relation");
    }
    if let Some(p) = plan {
        assert!(
            p.crashes.is_empty() && p.retransmit.is_none() && p.partition.is_none(),
            "the threaded runtime injects message faults only; crash, \
             retransmit and partition plans need the simulator (partition \
             epochs are timed against its virtual clock)"
        );
    }
    let injector = Arc::new(Mutex::new(plan.map(|p| p.injector())));
    let stats = Arc::new(Mutex::new(crate::faulty::FaultStats::default()));
    let slowdowns: Vec<f64> = (0..shards.len())
        .map(|i| plan.map_or(1.0, |p| p.slowdown(i)))
        .collect();
    let n = shards.len();
    let mut senders: Vec<Sender<(usize, Fact)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<(usize, Fact)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let in_flight = Arc::new(AtomicUsize::new(0));
    let outputs: Arc<Mutex<Vec<Instance>>> = Arc::new(Mutex::new(vec![Instance::new(); n]));

    let mut handles = Vec::with_capacity(n);
    for (id, shard) in shards.iter().enumerate() {
        let program = Arc::clone(&program);
        let ctx = ctx.clone();
        let receiver = receivers[id].clone();
        let senders = senders.clone();
        let in_flight = Arc::clone(&in_flight);
        let outputs = Arc::clone(&outputs);
        let shard = shard.clone();
        let injector = Arc::clone(&injector);
        let stats = Arc::clone(&stats);
        let slowdown = slowdowns[id];
        handles.push(std::thread::spawn(move || {
            let mut node = NodeState::new(id, shard);
            let mut sent: parlog_relal::fastmap::FxSet<Fact> = parlog_relal::fastmap::fxset();
            let broadcast = |facts: Vec<Fact>, sent: &mut parlog_relal::fastmap::FxSet<Fact>| {
                for f in facts {
                    if !sent.insert(f.clone()) {
                        continue;
                    }
                    for (dest, s) in senders.iter().enumerate() {
                        if dest != id {
                            // Per-copy fate roll on the shared injector
                            // (1 copy normally; 0 on drop, 2 on dup; a
                            // "delayed" copy is just sent — the OS already
                            // delays arbitrarily).
                            let copies = match injector.lock().as_mut() {
                                None => 1,
                                Some(inj) => match inj.fate() {
                                    parlog_faults::MessageFate::Deliver => 1,
                                    parlog_faults::MessageFate::Drop => {
                                        stats.lock().dropped += 1;
                                        0
                                    }
                                    parlog_faults::MessageFate::Duplicate => {
                                        stats.lock().duplicated += 1;
                                        2
                                    }
                                    parlog_faults::MessageFate::Delay(_) => {
                                        stats.lock().delayed += 1;
                                        1
                                    }
                                    parlog_faults::MessageFate::Corrupt(e) => {
                                        // Byzantine tampering: deliver one
                                        // copy with an entropy-flipped
                                        // argument instead of the original.
                                        stats.lock().corrupted += 1;
                                        let mut t = f.clone();
                                        if !t.args.is_empty() {
                                            let idx = e as usize % t.args.len();
                                            t.args[idx].0 ^= (e | 1) & 0xFFFF;
                                        }
                                        in_flight.fetch_add(1, Ordering::SeqCst);
                                        s.send((id, t)).expect("receiver alive");
                                        0
                                    }
                                    // Unreachable: partition fates come
                                    // from the simulator's topology check,
                                    // never from the injector's dice (and
                                    // partition plans are rejected above).
                                    parlog_faults::MessageFate::Partitioned { .. } => 1,
                                },
                            };
                            for _ in 0..copies {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                s.send((id, f.clone())).expect("receiver alive");
                            }
                        }
                    }
                }
            };
            let init_out = program.init(&mut node, &ctx);
            broadcast(init_out, &mut sent);
            loop {
                match receiver.recv_timeout(Duration::from_millis(2)) {
                    Ok((from, fact)) => {
                        if slowdown > 1.0 {
                            // A straggler stalls per message: real wall-
                            // clock tail latency, same computed answer.
                            std::thread::sleep(Duration::from_micros(
                                ((slowdown - 1.0) * 50.0) as u64,
                            ));
                            stats.lock().straggler_stalls += 1;
                        }
                        let out = program.on_fact(&mut node, from, &fact, &ctx);
                        broadcast(out, &mut sent);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Quiescent? No in-flight messages can appear once
                        // the counter is zero and all channels are idle.
                        if in_flight.load(Ordering::SeqCst) == 0 && receiver.is_empty() {
                            let hb = program.heartbeat(&mut node, &ctx);
                            if hb.is_empty() {
                                break;
                            }
                            broadcast(hb, &mut sent);
                        }
                    }
                }
            }
            outputs.lock()[id] = node.output_so_far().clone();
        }));
    }
    drop(senders);
    for h in handles {
        h.join().expect("node thread panicked");
    }
    let mut union = Instance::new();
    for o in outputs.lock().iter() {
        union.extend_from(o);
    }
    let tally = *stats.lock();
    (union, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::hash_distribution;
    use crate::programs::coordinated::CoordinatedBroadcast;
    use crate::programs::monotone::MonotoneBroadcast;
    use crate::scheduler::run_to_quiescence;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;

    fn db() -> Instance {
        Instance::from_facts(
            (0..30u64).flat_map(|i| [fact("E", &[i, (i + 1) % 30]), fact("E", &[(i * 7) % 30, i])]),
        )
    }

    #[test]
    fn threaded_matches_simulator_for_monotone() {
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(MonotoneBroadcast::new(q));
        let dist = hash_distribution(&db(), 4, 9);
        let threaded = run_threaded(p.clone(), &dist, Ctx::oblivious());
        let simulated = run_to_quiescence(p.as_ref(), &dist, 4);
        assert_eq!(threaded, expected);
        assert_eq!(simulated, expected);
    }

    #[test]
    fn threaded_matches_simulator_for_coordinated() {
        let q = parse_query("H(x,y,z) <- E(x,y), E(y,z), not E(z,x)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(CoordinatedBroadcast::new(q));
        let dist = hash_distribution(&db(), 3, 2);
        let threaded = run_threaded(p.clone(), &dist, Ctx::aware(3));
        assert_eq!(threaded, expected);
    }

    #[test]
    fn threaded_duplication_is_absorbed() {
        // Duplicate copies under real concurrency: receivers are sets, so
        // the monotone program's output is unchanged — the within-model
        // faults are harmless even off the simulator.
        use parlog_faults::FaultPlan;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(MonotoneBroadcast::new(q));
        let dist = hash_distribution(&db(), 4, 9);
        let plan = FaultPlan::duplicating(13, 0.5);
        let (out, stats) = run_threaded_faulty(p, &dist, Ctx::oblivious(), Some(&plan));
        assert_eq!(out, expected);
        assert!(stats.duplicated > 0, "the plan must actually duplicate");
    }

    #[test]
    fn threaded_loss_stays_sound() {
        use parlog_faults::FaultPlan;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(MonotoneBroadcast::new(q));
        let dist = hash_distribution(&db(), 4, 9);
        let plan = FaultPlan::lossy(13, 0.6);
        let (out, stats) = run_threaded_faulty(p, &dist, Ctx::oblivious(), Some(&plan));
        assert!(out.is_subset_of(&expected), "loss must never create facts");
        assert!(stats.dropped > 0);
    }

    #[test]
    #[should_panic(expected = "message faults only")]
    fn threaded_rejects_crash_plans() {
        use parlog_faults::FaultPlan;
        let q = parse_query("H(x) <- E(x,y)").unwrap();
        let p = Arc::new(MonotoneBroadcast::new(q));
        let plan = FaultPlan::crash_stop(1, 0, 3);
        run_threaded_faulty(p, &[db()], Ctx::oblivious(), Some(&plan));
    }

    #[test]
    fn threaded_straggler_stalls_but_computes_the_same() {
        use parlog_faults::FaultPlan;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(MonotoneBroadcast::new(q));
        let dist = hash_distribution(&db(), 4, 9);
        let plan = FaultPlan::none(1).with_straggler(2, 3.0);
        let (out, stats) = run_threaded_faulty(p, &dist, Ctx::oblivious(), Some(&plan));
        assert_eq!(out, expected, "a slow node changes latency, not answers");
        assert!(
            stats.straggler_stalls > 0,
            "the straggler must actually stall"
        );
    }

    #[test]
    fn single_node_threaded() {
        let q = parse_query("H(x) <- E(x,y)").unwrap();
        let expected = parlog_relal::eval::eval_query(&q, &db());
        let p = Arc::new(MonotoneBroadcast::new(q));
        let out = run_threaded(p, &[db()], Ctx::oblivious());
        assert_eq!(out, expected);
    }
}
