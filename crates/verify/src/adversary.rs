//! The seeded Byzantine adversary the fault-injection experiments use to
//! tamper with a server's local output *after* the honest prover ran.
//!
//! This is deliberately a **diligent** adversary: after corrupting the
//! answer it recomputes `answer_root` and re-sorts the witness list, so
//! the certificate is internally consistent and the checker cannot get
//! away with only comparing roots — it must actually validate witnesses
//! and re-enumerate. (The lazy adversary, who leaves a stale root behind,
//! is strictly easier to catch and is covered by unit tests in
//! `checker`.)
//!
//! All choices (which tuple, which argument, which delta) derive from the
//! caller-provided entropy word, so a corruption plan replays
//! byte-identically — the e23 bench and the fault matrix depend on that.

use crate::certificate::{ServerCertificate, Witness};
use crate::snapshot::snapshot;
use parlog_faults::{mix64, CorruptKind};
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::query::UnionQuery;
use parlog_relal::valuation::Valuation;

/// Pick the `k`-th fact (entropy-indexed) of `inst` in sorted order.
fn pick_fact(inst: &Instance, entropy: u64) -> Option<Fact> {
    let mut facts: Vec<Fact> = inst.iter().cloned().collect();
    if facts.is_empty() {
        return None;
    }
    facts.sort_unstable();
    Some(facts[entropy as usize % facts.len()].clone())
}

/// Mutate one argument of `f` by a nonzero entropy-derived delta.
fn mutate_fact(f: &Fact, entropy: u64) -> Fact {
    let mut t = f.clone();
    if !t.args.is_empty() {
        let idx = entropy as usize % t.args.len();
        t.args[idx].0 ^= (entropy | 1) & 0xFFFF;
    } else {
        // Zero-arity facts carry no arguments to flip; corrupt by
        // "deriving" a sibling relation instead — still a wrong answer.
        t.args
            .push(parlog_relal::fact::Val(mix64(entropy) & 0xFFFF));
    }
    t
}

/// A fresh tuple in the injection namespace (values ≥ 900000 never occur
/// in generated workloads), shaped like the head of disjunct 0 of `u`.
fn inject_fact(u: &UnionQuery, entropy: u64) -> (Fact, Valuation) {
    let head = &u.disjuncts[0].head;
    let mut val = Valuation::new();
    let mut args = Vec::with_capacity(head.terms.len());
    for (i, t) in head.terms.iter().enumerate() {
        let v = parlog_relal::fact::Val(900_000 + (mix64(entropy ^ i as u64) % 1000));
        match t {
            parlog_relal::atom::Term::Var(x) => {
                let bound = val.get(x).unwrap_or(v);
                val.bind(x.clone(), bound);
                args.push(bound);
            }
            parlog_relal::atom::Term::Const(c) => args.push(*c),
        }
    }
    (Fact::new(head.rel, args), val)
}

/// Tamper with one server's `(answer, certificate)` pair in place,
/// according to `kind`, with all choices derived from `entropy`. Falls
/// back to injection when the answer is empty (there is nothing to
/// mutate or drop). Returns the fact the adversary touched.
pub fn corrupt_answer(
    answer: &mut Instance,
    cert: &mut ServerCertificate,
    u: &UnionQuery,
    kind: CorruptKind,
    entropy: u64,
) -> Fact {
    let touched = match kind {
        CorruptKind::Mutate => pick_fact(answer, entropy).map(|victim| {
            let forged = mutate_fact(&victim, entropy);
            answer.remove(&victim);
            answer.insert(forged.clone());
            // Relabel the victim's witness so the certificate still has
            // exactly one witness per claimed tuple.
            for w in &mut cert.witnesses {
                if w.fact == victim {
                    w.fact = forged.clone();
                }
            }
            forged
        }),
        CorruptKind::Drop => pick_fact(answer, entropy).map(|victim| {
            answer.remove(&victim);
            cert.witnesses.retain(|w| w.fact != victim);
            victim
        }),
        CorruptKind::Inject => None,
    };
    let touched = touched.unwrap_or_else(|| {
        let (forged, val) = inject_fact(u, entropy);
        answer.insert(forged.clone());
        cert.witnesses.push(Witness {
            fact: forged.clone(),
            disjunct: 0,
            valuation: val,
        });
        forged
    });
    cert.witnesses.sort_unstable();
    cert.answer_root = snapshot(answer);
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::prove_ucq;
    use crate::checker::check_answer;
    use parlog_relal::eval::EvalStrategy;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_union;

    fn setup() -> (UnionQuery, Instance) {
        let u = parse_union("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let db = Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[4, 5]),
            fact("S", &[2, 3]),
            fact("S", &[5, 6]),
        ]);
        (u, db)
    }

    #[test]
    fn every_kind_is_caught_by_the_checker() {
        let (u, db) = setup();
        for (i, kind) in CorruptKind::ALL.iter().enumerate() {
            let (mut answer, mut cert) = prove_ucq(0, &u, &db, EvalStrategy::Indexed);
            assert!(check_answer(&u, &db, &answer, &cert).is_ok());
            corrupt_answer(&mut answer, &mut cert, &u, *kind, 0x9e37 + i as u64);
            let verdict = check_answer(&u, &db, &answer, &cert);
            assert!(verdict.is_err(), "{kind:?} corruption slipped through");
        }
    }

    #[test]
    fn corruption_is_deterministic_in_the_entropy() {
        let (u, db) = setup();
        for kind in CorruptKind::ALL {
            let (mut a1, mut c1) = prove_ucq(0, &u, &db, EvalStrategy::Indexed);
            let (mut a2, mut c2) = prove_ucq(0, &u, &db, EvalStrategy::Wcoj);
            let f1 = corrupt_answer(&mut a1, &mut c1, &u, kind, 42);
            let f2 = corrupt_answer(&mut a2, &mut c2, &u, kind, 42);
            assert_eq!(f1, f2);
            assert_eq!(a1, a2);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn empty_answer_falls_back_to_injection() {
        let u = parse_union("H(x) <- R(x,x)").unwrap();
        let db = Instance::from_facts([fact("R", &[1, 2])]);
        let (mut answer, mut cert) = prove_ucq(0, &u, &db, EvalStrategy::Indexed);
        assert!(answer.is_empty());
        corrupt_answer(&mut answer, &mut cert, &u, CorruptKind::Drop, 7);
        assert_eq!(answer.len(), 1, "drop on empty answer injects instead");
        assert!(check_answer(&u, &db, &answer, &cert).is_err());
    }
}
