//! Provenance certificates: the evidence an untrusted engine attaches to
//! an answer so the trusted checker can validate it without re-running
//! the engine.
//!
//! * For CQs/UCQs the evidence is one **witnessing valuation** per output
//!   tuple ([`Witness`]): the valuation whose required body facts lie in
//!   the snapshot-bound shard and whose head instantiation is the tuple.
//!   Witnesses are extracted *uniformly* from all three local evaluators
//!   (Naive / Indexed / Wcoj) — they all enumerate satisfying valuations,
//!   so [`prove_cq`]/[`prove_ucq`] only canonicalize what the engine
//!   already produced.
//! * For stratified Datalog the evidence is a **derivation sequence**
//!   ([`DerivationStep`]): a well-founded list of rule applications, each
//!   supported by the facts established before it. Together with a single
//!   closure pass this pins the claimed model to the least fixpoint
//!   without the checker iterating the fixpoint itself.
//!
//! Certificates are canonical: per derived tuple the lexicographically
//! least `(disjunct, valuation)` pair is kept and witnesses are sorted,
//! so the *bytes* of a certificate are identical across evaluation
//! strategies and thread counts — the property suite pins this.

use crate::snapshot::{snapshot, SnapshotId};
use parlog_datalog::eval::eval_program_with;
use parlog_datalog::program::{Program, ProgramError, ADOM};
use parlog_relal::eval::{satisfying_valuations, EvalStrategy};
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::query::{ConjunctiveQuery, UnionQuery};
use parlog_relal::symbols::{rel, val_name};
use parlog_relal::trie::satisfying_valuations_wcoj;
use parlog_relal::valuation::Valuation;
use std::collections::BTreeMap;

/// Serialize any certificate component to its canonical JSON bytes.
pub fn to_json<T: serde::Serialize + ?Sized>(v: &T) -> String {
    let mut s = String::new();
    v.json(&mut s);
    s
}

/// Serialize a valuation as a sorted `[[var, value], …]` binding list
/// (values rendered through the interner's name table, like snapshot
/// leaves, so the bytes are process-independent).
fn bindings_json(v: &Valuation, out: &mut String) {
    out.push('[');
    for (i, (var, val)) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        serde::write_json_str(out, &var.0);
        out.push(',');
        serde::write_json_str(out, &val_name(val.0));
        out.push(']');
    }
    out.push(']');
}

/// One witnessing valuation: `fact = V(head)` where `V` satisfies
/// disjunct `disjunct` of the query on the bound shard.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    /// The derived output tuple.
    pub fact: Fact,
    /// Which disjunct of the UCQ the valuation satisfies (0 for a CQ).
    pub disjunct: usize,
    /// The witnessing valuation, total on the disjunct's variables.
    pub valuation: Valuation,
}

impl serde::Serialize for Witness {
    fn json(&self, out: &mut String) {
        out.push_str("{\"fact\":");
        self.fact.json(out);
        out.push_str(",\"disjunct\":");
        out.push_str(&self.disjunct.to_string());
        out.push_str(",\"valuation\":");
        bindings_json(&self.valuation, out);
        out.push('}');
    }
}

/// The certificate one server attaches to its local answer: the snapshot
/// id of the shard it claims to have read, the root of the answer it
/// claims to have produced, and one canonical witness per output tuple.
///
/// Soundness is checkable from the witnesses alone; completeness is the
/// checker's own single enumeration pass over the bound shard (see
/// `checker` for exactly what is and is not trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerCertificate {
    /// Which server produced this answer.
    pub server: usize,
    /// Content address of the input shard the answer is bound to.
    pub shard_root: SnapshotId,
    /// Content address of the claimed answer.
    pub answer_root: SnapshotId,
    /// One canonical witness per answer tuple, sorted.
    pub witnesses: Vec<Witness>,
}

impl serde::Serialize for ServerCertificate {
    fn json(&self, out: &mut String) {
        out.push_str("{\"server\":");
        out.push_str(&self.server.to_string());
        out.push_str(",\"shard_root\":");
        self.shard_root.json(out);
        out.push_str(",\"answer_root\":");
        self.answer_root.json(out);
        out.push_str(",\"witnesses\":");
        self.witnesses.json(out);
        out.push('}');
    }
}

impl ServerCertificate {
    /// Size of the serialized certificate in bytes — the quantity the
    /// e23 bench reports against answer size.
    pub fn size_bytes(&self) -> usize {
        to_json(self).len()
    }
}

/// The satisfying valuations of `q` under an explicit strategy. `Naive`
/// shares the backtracker entry point (it has no separate
/// valuation-level API; the differential tests pin the evaluators to one
/// semantics), `Wcoj` uses the trie enumerator.
fn valuations_with(
    q: &ConjunctiveQuery,
    shard: &Instance,
    strategy: EvalStrategy,
) -> Vec<Valuation> {
    match strategy.resolve(q) {
        EvalStrategy::Wcoj => satisfying_valuations_wcoj(q, shard),
        _ => satisfying_valuations(q, shard),
    }
}

/// Prove a UCQ answer: evaluate every disjunct on `shard` with
/// `strategy`, keep the lexicographically least `(disjunct, valuation)`
/// per derived tuple, and bind everything to the shard's snapshot.
/// Returns the answer and its certificate.
pub fn prove_ucq(
    server: usize,
    u: &UnionQuery,
    shard: &Instance,
    strategy: EvalStrategy,
) -> (Instance, ServerCertificate) {
    let mut best: BTreeMap<Fact, (usize, Valuation)> = BTreeMap::new();
    for (d, q) in u.disjuncts.iter().enumerate() {
        for v in valuations_with(q, shard, strategy) {
            let f = v.derived_fact(q);
            match best.get(&f) {
                Some(prev) if *prev <= (d, v.clone()) => {}
                _ => {
                    best.insert(f, (d, v));
                }
            }
        }
    }
    let answer = Instance::from_facts(best.keys().cloned());
    let witnesses: Vec<Witness> = best
        .into_iter()
        .map(|(fact, (disjunct, valuation))| Witness {
            fact,
            disjunct,
            valuation,
        })
        .collect();
    let cert = ServerCertificate {
        server,
        shard_root: snapshot(shard),
        answer_root: snapshot(&answer),
        witnesses,
    };
    (answer, cert)
}

/// [`prove_ucq`] for a single conjunctive query (one-disjunct union).
pub fn prove_cq(
    server: usize,
    q: &ConjunctiveQuery,
    shard: &Instance,
    strategy: EvalStrategy,
) -> (Instance, ServerCertificate) {
    prove_ucq(server, &UnionQuery::new(vec![q.clone()]), shard, strategy)
}

/// One step of a Datalog derivation: rule `rule` fired under `valuation`
/// and derived `fact`. Steps are listed in a well-founded order — every
/// positive body fact of a step is EDB, `ADom`, or derived by an earlier
/// step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationStep {
    /// Index of the rule in `Program::rules`.
    pub rule: usize,
    /// The derived IDB fact.
    pub fact: Fact,
    /// The valuation under which the rule fired.
    pub valuation: Valuation,
}

impl serde::Serialize for DerivationStep {
    fn json(&self, out: &mut String) {
        out.push_str("{\"rule\":");
        out.push_str(&self.rule.to_string());
        out.push_str(",\"fact\":");
        self.fact.json(out);
        out.push_str(",\"valuation\":");
        bindings_json(&self.valuation, out);
        out.push('}');
    }
}

/// The certificate for a stratified Datalog model: EDB snapshot, model
/// root, and a well-founded derivation sequence covering every IDB fact
/// of the claimed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramCertificate {
    /// Content address of the extensional database.
    pub edb_root: SnapshotId,
    /// Content address of the claimed model (EDB ∪ IDB).
    pub model_root: SnapshotId,
    /// Derivation steps in a well-founded order.
    pub steps: Vec<DerivationStep>,
}

impl serde::Serialize for ProgramCertificate {
    fn json(&self, out: &mut String) {
        out.push_str("{\"edb_root\":");
        self.edb_root.json(out);
        out.push_str(",\"model_root\":");
        self.model_root.json(out);
        out.push_str(",\"steps\":");
        self.steps.json(out);
        out.push('}');
    }
}

impl ProgramCertificate {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        to_json(self).len()
    }
}

/// The `ADom` facts the engine adds before evaluation: active-domain
/// values of the EDB plus every rule constant. Mirrored here (and in the
/// checker) because derivations may consume them.
pub fn adom_facts(p: &Program, edb: &Instance) -> Vec<Fact> {
    let adom_rel = rel(ADOM);
    let mut values = edb.adom_sorted();
    for r in &p.rules {
        values.extend(r.constants());
    }
    values.sort_unstable();
    values.dedup();
    values
        .into_iter()
        .map(|v| Fact::new(adom_rel, vec![v]))
        .collect()
}

/// Prove a stratified Datalog model: evaluate with the untrusted engine,
/// then replay stratum by stratum to extract a well-founded derivation
/// sequence with the valuation of every rule firing. The replay is
/// prover-side work (it may use engine code freely); only the *checker*
/// is trusted.
pub fn prove_program(
    p: &Program,
    edb: &Instance,
    strategy: EvalStrategy,
) -> Result<(Instance, ProgramCertificate), ProgramError> {
    let model = eval_program_with(p, edb, strategy)?;
    let strat = p.stratify()?;
    let mut db = edb.clone();
    for f in adom_facts(p, edb) {
        db.insert(f);
    }
    let mut steps: Vec<DerivationStep> = Vec::new();
    for stratum in &strat.rule_strata {
        loop {
            let mut fresh: Vec<DerivationStep> = Vec::new();
            for &i in stratum {
                let rule = &p.rules[i];
                for v in satisfying_valuations(rule, &db) {
                    let f = v.derived_fact(rule);
                    if !db.contains(&f) && !fresh.iter().any(|s| s.fact == f) {
                        fresh.push(DerivationStep {
                            rule: i,
                            fact: f,
                            valuation: v,
                        });
                    }
                }
            }
            if fresh.is_empty() {
                break;
            }
            for s in &fresh {
                db.insert(s.fact.clone());
            }
            steps.extend(fresh);
        }
    }
    // Canonical order within the well-founded sequence: steps were pushed
    // round by round; sort each round's block deterministically already
    // via the BTree-backed valuation ordering when ties occur. The
    // sequence as produced is deterministic for a fixed strategy; the
    // checker only needs well-foundedness, not a specific order.
    let cert = ProgramCertificate {
        edb_root: snapshot(edb),
        model_root: snapshot(&model),
        steps,
    };
    Ok((model, cert))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_datalog::program::parse_program;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::{parse_query, parse_union};

    fn triangle_db() -> Instance {
        Instance::from_facts([
            fact("R", &[1, 2]),
            fact("S", &[2, 3]),
            fact("T", &[3, 1]),
            fact("R", &[4, 5]),
        ])
    }

    #[test]
    fn witnesses_cover_the_answer_exactly() {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
        let db = triangle_db();
        let (answer, cert) = prove_cq(3, &q, &db, EvalStrategy::Indexed);
        assert_eq!(answer.len(), 1);
        assert_eq!(cert.witnesses.len(), 1);
        assert_eq!(cert.server, 3);
        assert_eq!(cert.witnesses[0].fact, fact("H", &[1, 2, 3]));
        assert!(cert.witnesses[0].valuation.satisfies(&q, &db));
    }

    #[test]
    fn certificates_identical_across_strategies() {
        let q = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let db = Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[1, 7]),
            fact("S", &[2, 3]),
            fact("S", &[7, 3]),
        ]);
        let reference = prove_cq(0, &q, &db, EvalStrategy::Naive);
        for s in [
            EvalStrategy::Indexed,
            EvalStrategy::Wcoj,
            EvalStrategy::Auto,
        ] {
            let got = prove_cq(0, &q, &db, s);
            assert_eq!(got, reference, "{s:?}");
            assert_eq!(
                to_json(&got.1),
                to_json(&reference.1),
                "bytes differ under {s:?}"
            );
        }
    }

    #[test]
    fn ucq_witness_records_the_least_disjunct() {
        let u = parse_union("H(x) <- R(x); H(x) <- S(x)").unwrap();
        let db = Instance::from_facts([fact("R", &[1]), fact("S", &[1]), fact("S", &[2])]);
        let (answer, cert) = prove_ucq(0, &u, &db, EvalStrategy::Indexed);
        assert_eq!(answer.len(), 2);
        let w1 = cert.witnesses.iter().find(|w| w.fact == fact("H", &[1]));
        assert_eq!(w1.unwrap().disjunct, 0); // R-witness beats S-witness
        let w2 = cert.witnesses.iter().find(|w| w.fact == fact("H", &[2]));
        assert_eq!(w2.unwrap().disjunct, 1);
    }

    #[test]
    fn program_certificate_derives_every_idb_fact() {
        let p = parse_program("TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)").unwrap();
        let edb = Instance::from_facts((0..4u64).map(|i| fact("E", &[i, i + 1])));
        let (model, cert) = prove_program(&p, &edb, EvalStrategy::Indexed).unwrap();
        let idb: Vec<&Fact> = model.iter().filter(|f| !edb.contains(f)).collect();
        assert_eq!(cert.steps.len(), idb.len());
        for f in idb {
            assert!(cert.steps.iter().any(|s| s.fact == *f), "no step for {f}");
        }
        assert_eq!(cert.edb_root, snapshot(&edb));
        assert_eq!(cert.model_root, snapshot(&model));
    }

    #[test]
    fn certificate_serializes_deterministically() {
        let q = parse_query("H(x) <- R(x,y)").unwrap();
        let db = Instance::from_facts([fact("R", &[1, 2]), fact("R", &[1, 3])]);
        let (_, c1) = prove_cq(0, &q, &db, EvalStrategy::Indexed);
        let (_, c2) = prove_cq(0, &q, &db, EvalStrategy::Wcoj);
        assert_eq!(to_json(&c1), to_json(&c2));
        assert!(c1.size_bytes() > 0);
    }
}
