//! The trusted checker: validates an answer against its snapshot-bound
//! certificate *without re-running the engine*.
//!
//! ## Threat model
//!
//! The engines (Naive/Indexed/Wcoj backtrackers, the semi-naive Datalog
//! fixpoint, the MPC distribution machinery) are **untrusted**: a
//! Byzantine server may return any answer whatsoever. The checker trusts
//! only:
//!
//! * the definitional data model of `parlog-relal` — `Fact`, `Instance`
//!   set membership, and [`Valuation::satisfies`], which is the
//!   *semantics* of a CQ (Section 2 of the survey), not an evaluator;
//! * the in-crate SHA-256 and Merkle construction;
//! * its own ~200 lines in this module, including an independent
//!   reference enumerator (a deliberately naive nested-loop backtracker
//!   sharing no code with the engines' join machinery).
//!
//! ## What is checked
//!
//! * **Binding** — the shard and answer hash to the certificate's roots;
//!   an answer cannot be replayed against a different snapshot.
//! * **Soundness** — every answer tuple carries a witnessing valuation
//!   that actually satisfies its disjunct on the shard and derives
//!   exactly that tuple. Cost `O(|answer| · |body|)` membership tests,
//!   independent of the join's search space.
//! * **Completeness** — the checker's own enumerator derives no tuple
//!   missing from the answer. This is the one place the checker pays an
//!   evaluation-shaped cost; it is a *different*, simpler algorithm than
//!   the engines, so a bug cannot cancel out (and the e23 bench reports
//!   its cost honestly).
//!
//! For stratified Datalog, soundness is a well-founded replay of the
//! derivation sequence and completeness is a single **closure** pass:
//! a model that contains the EDB, is supported step by step, and is
//! closed under every rule *is* the stratum-wise least fixpoint — no
//! fixpoint iteration in the checker.

use crate::certificate::{adom_facts, ProgramCertificate, ServerCertificate};
use crate::snapshot::{cluster_root, snapshot, SnapshotId};
use parlog_datalog::program::Program;
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::query::{ConjunctiveQuery, UnionQuery};
use parlog_relal::valuation::Valuation;
use std::fmt;

/// Why the checker rejected an answer. Every variant names the offending
/// object so the supervisor can attribute the failure to a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The shard the checker was handed does not hash to the root the
    /// certificate claims to be bound to.
    ShardRootMismatch {
        /// Root claimed by the certificate.
        claimed: SnapshotId,
        /// Root of the shard actually presented.
        actual: SnapshotId,
    },
    /// The answer does not hash to the certificate's answer root.
    AnswerRootMismatch {
        /// Root claimed by the certificate.
        claimed: SnapshotId,
        /// Root of the answer actually presented.
        actual: SnapshotId,
    },
    /// An answer tuple has no witness in the certificate.
    UnwitnessedAnswer(Fact),
    /// A witness references a disjunct index the query does not have.
    BadDisjunct(Fact),
    /// A witness's valuation does not satisfy its disjunct on the shard,
    /// or does not derive the fact it claims to witness.
    BogusWitness(Fact),
    /// A witness vouches for a tuple that is not in the answer.
    StrayWitness(Fact),
    /// The checker's own enumeration derived a tuple the answer lacks.
    MissingAnswer(Fact),
    /// The claimed Datalog model does not contain the EDB.
    MissingEdb(Fact),
    /// A derivation step is not supported by the facts established
    /// before it (or derives a different fact than it claims).
    UnsupportedStep {
        /// Index of the offending step in the certificate.
        step: usize,
        /// The fact that step claimed to derive.
        fact: Fact,
    },
    /// A model fact is neither EDB nor derived by any step.
    UnderivedModelFact(Fact),
    /// The claimed model is not closed under a rule: the valuation
    /// satisfies the rule but the head fact is missing.
    NotClosed {
        /// Index of the rule in `Program::rules`.
        rule: usize,
        /// The missing head fact.
        fact: Fact,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::ShardRootMismatch { claimed, actual } => {
                write!(f, "shard root mismatch: cert {claimed:?}, got {actual:?}")
            }
            Rejection::AnswerRootMismatch { claimed, actual } => {
                write!(f, "answer root mismatch: cert {claimed:?}, got {actual:?}")
            }
            Rejection::UnwitnessedAnswer(t) => write!(f, "answer tuple {t} has no witness"),
            Rejection::BadDisjunct(t) => write!(f, "witness for {t} cites a bad disjunct"),
            Rejection::BogusWitness(t) => write!(f, "witness for {t} does not hold on the shard"),
            Rejection::StrayWitness(t) => write!(f, "witness for {t} which is not in the answer"),
            Rejection::MissingAnswer(t) => write!(f, "derivable tuple {t} missing from answer"),
            Rejection::MissingEdb(t) => write!(f, "EDB fact {t} missing from claimed model"),
            Rejection::UnsupportedStep { step, fact } => {
                write!(f, "derivation step {step} ({fact}) is unsupported")
            }
            Rejection::UnderivedModelFact(t) => write!(f, "model fact {t} has no derivation"),
            Rejection::NotClosed { rule, fact } => {
                write!(f, "model not closed under rule {rule}: missing {fact}")
            }
        }
    }
}

/// The checker's independent reference enumerator: a plain backtracking
/// product over the body atoms in source order, scanning each relation
/// in full. No indices, no atom reordering, no tries — deliberately
/// sharing nothing with the engines beyond the data model, so an engine
/// bug cannot be mirrored here. Exponential in principle; shards are
/// simulator-scale and the e23 bench reports the real cost.
fn reference_valuations(q: &ConjunctiveQuery, db: &Instance) -> Vec<Valuation> {
    fn go(
        q: &ConjunctiveQuery,
        db: &Instance,
        depth: usize,
        val: &mut Valuation,
        out: &mut Vec<Valuation>,
    ) {
        if depth == q.body.len() {
            // Positive atoms matched along the way; `satisfies` re-checks
            // them and decides negation and inequalities.
            if val.satisfies(q, db) {
                out.push(val.clone());
            }
            return;
        }
        let atom = &q.body[depth];
        let facts: Vec<Fact> = db.relation(atom.rel).cloned().collect();
        for f in facts {
            if f.args.len() != atom.terms.len() {
                continue;
            }
            // Try to extend `val` so that `atom` maps onto `f`.
            let mut newly: Vec<parlog_relal::atom::Var> = Vec::new();
            let mut ok = true;
            for (t, &a) in atom.terms.iter().zip(f.args.iter()) {
                match t {
                    parlog_relal::atom::Term::Const(c) => {
                        if *c != a {
                            ok = false;
                            break;
                        }
                    }
                    parlog_relal::atom::Term::Var(v) => match val.get(v) {
                        Some(prev) if prev != a => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            val.bind(v.clone(), a);
                            newly.push(v.clone());
                        }
                    },
                }
            }
            if ok {
                go(q, db, depth + 1, val, out);
            }
            for v in newly {
                val.unbind(&v);
            }
        }
    }
    let mut out = Vec::new();
    go(q, db, 0, &mut Valuation::new(), &mut out);
    out
}

/// Soundness check only: binding + per-tuple witnesses. Does not detect
/// dropped tuples; pair with [`check_complete`] (or use [`check_answer`])
/// for the full verdict.
pub fn check_sound(
    u: &UnionQuery,
    shard: &Instance,
    answer: &Instance,
    cert: &ServerCertificate,
) -> Result<(), Rejection> {
    let shard_actual = snapshot(shard);
    if shard_actual != cert.shard_root {
        return Err(Rejection::ShardRootMismatch {
            claimed: cert.shard_root,
            actual: shard_actual,
        });
    }
    let answer_actual = snapshot(answer);
    if answer_actual != cert.answer_root {
        return Err(Rejection::AnswerRootMismatch {
            claimed: cert.answer_root,
            actual: answer_actual,
        });
    }
    for w in &cert.witnesses {
        let q = u
            .disjuncts
            .get(w.disjunct)
            .ok_or_else(|| Rejection::BadDisjunct(w.fact.clone()))?;
        if !w.valuation.is_total_for(q)
            || !w.valuation.satisfies(q, shard)
            || w.valuation.derived_fact(q) != w.fact
        {
            return Err(Rejection::BogusWitness(w.fact.clone()));
        }
        if !answer.contains(&w.fact) {
            return Err(Rejection::StrayWitness(w.fact.clone()));
        }
    }
    for t in answer.sorted_facts() {
        if !cert.witnesses.iter().any(|w| w.fact == t) {
            return Err(Rejection::UnwitnessedAnswer(t));
        }
    }
    Ok(())
}

/// Completeness check: the checker's own enumerator derives nothing the
/// answer lacks. This is the per-server completeness sub-certificate
/// obligation — on the server's bound shard, the answer is all of
/// `Q(shard)`.
pub fn check_complete(
    u: &UnionQuery,
    shard: &Instance,
    answer: &Instance,
) -> Result<(), Rejection> {
    for q in &u.disjuncts {
        for v in reference_valuations(q, shard) {
            let f = v.derived_fact(q);
            if !answer.contains(&f) {
                return Err(Rejection::MissingAnswer(f));
            }
        }
    }
    Ok(())
}

/// Full verdict for one server's answer: binding + soundness +
/// completeness.
pub fn check_answer(
    u: &UnionQuery,
    shard: &Instance,
    answer: &Instance,
    cert: &ServerCertificate,
) -> Result<(), Rejection> {
    check_sound(u, shard, answer, cert)?;
    check_complete(u, shard, answer)
}

/// Check every server of a cluster round. Returns the cluster-level
/// snapshot id on success, or `(server, rejection)` for the *first*
/// failing server — exactly what the verify-then-commit round mode needs
/// to quarantine.
pub fn check_cluster(
    u: &UnionQuery,
    shards: &[Instance],
    answers: &[Instance],
    certs: &[ServerCertificate],
) -> Result<SnapshotId, (usize, Rejection)> {
    assert_eq!(shards.len(), answers.len());
    assert_eq!(shards.len(), certs.len());
    for (s, ((shard, answer), cert)) in shards.iter().zip(answers).zip(certs).enumerate() {
        check_answer(u, shard, answer, cert).map_err(|r| (s, r))?;
    }
    Ok(cluster_root(
        &shards.iter().map(snapshot).collect::<Vec<_>>(),
    ))
}

/// Check a stratified Datalog model against its derivation certificate.
///
/// Accepts iff the model (1) hashes to the bound roots, (2) contains the
/// EDB, (3) every IDB fact is derived by a well-founded supported step,
/// and (4) the model is closed under every rule. For stratified programs
/// (negation only on lower strata, which the supported steps respect by
/// construction of the well-founded order) this characterizes the least
/// fixpoint, so a single pass replaces the engine's iteration.
pub fn check_program(
    p: &Program,
    edb: &Instance,
    model: &Instance,
    cert: &ProgramCertificate,
) -> Result<(), Rejection> {
    let edb_actual = snapshot(edb);
    if edb_actual != cert.edb_root {
        return Err(Rejection::ShardRootMismatch {
            claimed: cert.edb_root,
            actual: edb_actual,
        });
    }
    let model_actual = snapshot(model);
    if model_actual != cert.model_root {
        return Err(Rejection::AnswerRootMismatch {
            claimed: cert.model_root,
            actual: model_actual,
        });
    }
    for f in edb.iter() {
        if !model.contains(f) {
            return Err(Rejection::MissingEdb(f.clone()));
        }
    }
    // The negation context: negated atoms are checked against the full
    // claimed model (sound for stratified programs — lower strata are
    // complete in the claimed model once the closure check passes).
    let mut model_ctx = model.clone();
    for f in adom_facts(p, edb) {
        model_ctx.insert(f);
    }
    // Supported, well-founded replay for the positive part.
    let mut established = edb.clone();
    for f in adom_facts(p, edb) {
        established.insert(f);
    }
    for (i, step) in cert.steps.iter().enumerate() {
        let rule = p.rules.get(step.rule).ok_or(Rejection::UnsupportedStep {
            step: i,
            fact: step.fact.clone(),
        })?;
        let supported = step.valuation.is_total_for(rule)
            && step.valuation.satisfies_inequalities(rule)
            && step
                .valuation
                .body_facts(rule)
                .iter()
                .all(|f| established.contains(f))
            && rule.negated.iter().all(|a| {
                step.valuation
                    .apply(a)
                    .is_some_and(|f| !model_ctx.contains(&f))
            })
            && step.valuation.derived_fact(rule) == step.fact;
        if !supported {
            return Err(Rejection::UnsupportedStep {
                step: i,
                fact: step.fact.clone(),
            });
        }
        if !model.contains(&step.fact) {
            return Err(Rejection::StrayWitness(step.fact.clone()));
        }
        established.insert(step.fact.clone());
    }
    // Every model fact is EDB or derived.
    for f in model.iter() {
        if !established.contains(f) {
            return Err(Rejection::UnderivedModelFact(f.clone()));
        }
    }
    // Closure: no rule can fire into a missing head fact. One pass with
    // the checker's own enumerator over the claimed model.
    for (i, rule) in p.rules.iter().enumerate() {
        for v in reference_valuations(rule, &model_ctx) {
            let f = v.derived_fact(rule);
            if !model.contains(&f) {
                return Err(Rejection::NotClosed { rule: i, fact: f });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{prove_cq, prove_program, prove_ucq};
    use parlog_datalog::program::parse_program;
    use parlog_relal::eval::EvalStrategy;
    use parlog_relal::fact::fact;
    use parlog_relal::parser::parse_query;

    fn db() -> Instance {
        Instance::from_facts([
            fact("R", &[1, 2]),
            fact("R", &[2, 3]),
            fact("S", &[2, 3]),
            fact("S", &[3, 4]),
            fact("T", &[3, 1]),
        ])
    }

    fn tri() -> UnionQuery {
        UnionQuery::new(vec![
            parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap()
        ])
    }

    #[test]
    fn honest_answer_accepted() {
        let u = tri();
        let shard = db();
        let (answer, cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        assert_eq!(check_answer(&u, &shard, &answer, &cert), Ok(()));
    }

    #[test]
    fn empty_answer_accepted_when_query_empty_on_shard() {
        let u = UnionQuery::new(vec![parse_query("H(x) <- Z(x,x)").unwrap()]);
        let shard = db();
        let (answer, cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        assert!(answer.is_empty());
        assert_eq!(check_answer(&u, &shard, &answer, &cert), Ok(()));
    }

    #[test]
    fn injected_tuple_rejected() {
        let u = tri();
        let shard = db();
        let (mut answer, mut cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        answer.insert(fact("H", &[9, 9, 9]));
        // Lazy adversary: stale answer root.
        assert!(matches!(
            check_answer(&u, &shard, &answer, &cert),
            Err(Rejection::AnswerRootMismatch { .. })
        ));
        // Diligent adversary: recomputes the root but cannot forge a
        // witness that satisfies on the shard.
        cert.answer_root = snapshot(&answer);
        assert!(matches!(
            check_answer(&u, &shard, &answer, &cert),
            Err(Rejection::UnwitnessedAnswer(_))
        ));
    }

    #[test]
    fn dropped_tuple_rejected_by_completeness() {
        let u = tri();
        let shard = db();
        let (mut answer, mut cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        let victim = answer.sorted_facts()[0].clone();
        answer.remove(&victim);
        cert.witnesses.retain(|w| w.fact != victim);
        cert.answer_root = snapshot(&answer);
        assert_eq!(
            check_answer(&u, &shard, &answer, &cert),
            Err(Rejection::MissingAnswer(victim))
        );
    }

    #[test]
    fn mutated_tuple_rejected() {
        let u = tri();
        let shard = db();
        let (mut answer, mut cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        let victim = answer.sorted_facts()[0].clone();
        let mut evil = victim.clone();
        evil.args[0] = parlog_relal::fact::Val(evil.args[0].0 ^ 1);
        answer.remove(&victim);
        answer.insert(evil.clone());
        // Forge the witness by relabeling.
        for w in &mut cert.witnesses {
            if w.fact == victim {
                w.fact = evil.clone();
            }
        }
        cert.answer_root = snapshot(&answer);
        let verdict = check_answer(&u, &shard, &answer, &cert);
        assert!(
            matches!(
                verdict,
                Err(Rejection::BogusWitness(_)) | Err(Rejection::MissingAnswer(_))
            ),
            "got {verdict:?}"
        );
    }

    #[test]
    fn replayed_against_wrong_shard_rejected() {
        let u = tri();
        let shard = db();
        let (answer, cert) = prove_ucq(0, &u, &shard, EvalStrategy::Indexed);
        let mut other = shard.clone();
        other.insert(fact("R", &[7, 8]));
        assert!(matches!(
            check_answer(&u, &other, &answer, &cert),
            Err(Rejection::ShardRootMismatch { .. })
        ));
    }

    #[test]
    fn witness_for_absent_fact_rejected() {
        let q = parse_query("H(x) <- R(x,y)").unwrap();
        let shard = db();
        let (mut answer, mut cert) = prove_cq(0, &q, &shard, EvalStrategy::Indexed);
        // Remove a tuple from the answer but keep its witness.
        let victim = answer.sorted_facts()[0].clone();
        answer.remove(&victim);
        cert.answer_root = snapshot(&answer);
        let u = UnionQuery::new(vec![q]);
        assert_eq!(
            check_sound(&u, &shard, &answer, &cert),
            Err(Rejection::StrayWitness(victim))
        );
    }

    #[test]
    fn cluster_check_points_at_the_corrupt_server() {
        let u = tri();
        let shards = vec![
            db(),
            Instance::from_facts([fact("R", &[5, 6]), fact("S", &[6, 7]), fact("T", &[7, 5])]),
            Instance::new(),
        ];
        let mut answers = Vec::new();
        let mut certs = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            let (a, c) = prove_ucq(s, &u, shard, EvalStrategy::Auto);
            answers.push(a);
            certs.push(c);
        }
        assert!(check_cluster(&u, &shards, &answers, &certs).is_ok());
        // Corrupt server 1's output.
        answers[1].insert(fact("H", &[6, 6, 6]));
        certs[1].answer_root = snapshot(&answers[1]);
        let (bad, _) = check_cluster(&u, &shards, &answers, &certs).unwrap_err();
        assert_eq!(bad, 1);
    }

    #[test]
    fn honest_datalog_model_accepted() {
        let p = parse_program(
            "TC(x,y) <- E(x,y)
             TC(x,y) <- TC(x,z), TC(z,y)
             OUT(x,y) <- ADom(x), ADom(y), not TC(x,y)",
        )
        .unwrap();
        let edb = Instance::from_facts((0..3u64).map(|i| fact("E", &[i, i + 1])));
        let (model, cert) = prove_program(&p, &edb, EvalStrategy::Indexed).unwrap();
        assert_eq!(check_program(&p, &edb, &model, &cert), Ok(()));
    }

    #[test]
    fn datalog_injected_fact_rejected() {
        let p = parse_program("TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)").unwrap();
        let edb = Instance::from_facts((0..3u64).map(|i| fact("E", &[i, i + 1])));
        let (mut model, mut cert) = prove_program(&p, &edb, EvalStrategy::Indexed).unwrap();
        model.insert(fact("TC", &[2, 0])); // not derivable on a chain
        cert.model_root = snapshot(&model);
        assert!(matches!(
            check_program(&p, &edb, &model, &cert),
            Err(Rejection::UnderivedModelFact(_))
        ));
    }

    #[test]
    fn datalog_dropped_fact_rejected_by_closure() {
        let p = parse_program("TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)").unwrap();
        let edb = Instance::from_facts((0..3u64).map(|i| fact("E", &[i, i + 1])));
        let (mut model, mut cert) = prove_program(&p, &edb, EvalStrategy::Indexed).unwrap();
        let victim = fact("TC", &[0, 3]);
        assert!(model.remove(&victim));
        cert.steps.retain(|s| s.fact != victim);
        cert.model_root = snapshot(&model);
        assert!(matches!(
            check_program(&p, &edb, &model, &cert),
            Err(Rejection::NotClosed { .. })
        ));
    }

    #[test]
    fn datalog_unsupported_negation_step_rejected() {
        // A step whose negated atom actually holds in the model must be
        // rejected even if the fact ended up in the claimed model.
        let p = parse_program("B(x) <- V(x), not A(x)\nA(x) <- V(x), E(x,x)").unwrap();
        let edb = Instance::from_facts([fact("V", &[1]), fact("E", &[1, 1])]);
        let (mut model, mut cert) = prove_program(&p, &edb, EvalStrategy::Indexed).unwrap();
        // Forge: claim B(1) although A(1) holds.
        model.insert(fact("B", &[1]));
        cert.steps.push(crate::certificate::DerivationStep {
            rule: 0,
            fact: fact("B", &[1]),
            valuation: Valuation::of(&[("x", 1)]),
        });
        cert.model_root = snapshot(&model);
        assert!(matches!(
            check_program(&p, &edb, &model, &cert),
            Err(Rejection::UnsupportedStep { .. })
        ));
    }
}
