//! # `parlog-verify` — proof-carrying answers for untrusted engines
//!
//! The cluster model of the paper distributes a query over `p` servers
//! and unions their local answers. Every robustness result so far in
//! this repo assumed *omission* faults: a server may crash, lose
//! messages, or stall — but never lie. This crate drops that assumption.
//! A Byzantine server may return an answer that is simply **wrong**:
//! extra tuples, missing tuples, mutated tuples. No amount of
//! retransmission or replay detects a wrong answer that arrives on time.
//!
//! The defense is proof-carrying answers:
//!
//! * [`snapshot`] — content-addressed snapshots. A deterministic Merkle
//!   root binds every answer to the exact shard it claims to have read;
//!   process-, order- and strategy-independent by construction.
//! * [`certificate`] — the evidence. One witnessing valuation per output
//!   tuple for CQs/UCQs; a well-founded derivation sequence for
//!   stratified Datalog. Canonical: byte-identical across evaluation
//!   strategies and thread counts.
//! * [`checker`] — the small trusted core. It validates an answer
//!   against the snapshot root *without re-running the engine*: witness
//!   replay gives soundness, its own independent enumeration pass gives
//!   completeness. Everything outside the checker (all three evaluators,
//!   the cluster, the schedulers) stays untrusted.
//! * [`adversary`] — the seeded, deterministic corruptor the fault
//!   matrix and the e23 experiment use to prove the checker earns its
//!   keep: every single-server corruption it can express is detected.
//!
//! The dependency rule: this crate sits beside the engines (it may call
//! them on the *prover* side) but the checker module's trusted base is
//! only the `relal` data model, `Valuation::satisfies`, and the in-crate
//! SHA-256/Merkle code.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod adversary;
pub mod certificate;
pub mod checker;
pub mod sha256;
pub mod snapshot;

pub use adversary::corrupt_answer;
pub use certificate::{
    adom_facts, prove_cq, prove_program, prove_ucq, to_json, DerivationStep, ProgramCertificate,
    ServerCertificate, Witness,
};
pub use checker::{
    check_answer, check_cluster, check_complete, check_program, check_sound, Rejection,
};
pub use snapshot::{cluster_root, shard_roots, snapshot_id, SnapshotId};
