//! Content-addressed snapshots: a deterministic Merkle root over the
//! facts of an [`Instance`].
//!
//! Every answer the verification layer handles is *bound to a snapshot
//! id*: the checker never trusts "the database the engine says it used",
//! it recomputes the root of the instance it was handed and compares.
//! Two design rules make the id meaningful:
//!
//! * **Process-independence.** Interned ids ([`RelId`](parlog_relal::symbols::RelId),
//!   `Sym`) depend on the order names were interned in this process, so
//!   leaf hashes are computed over the *names* (via
//!   [`rel_name`]/[`val_name`]), never the numeric ids. The same logical
//!   instance hashes identically in any process, any interning order.
//! * **Order-independence.** Leaves are sorted by their hash bytes
//!   before the tree is built, so insertion order, shard iteration
//!   order and evaluation strategy cannot perturb the root. (This is
//!   regression-tested across `EvalStrategy` choices, thread counts and
//!   serde round-trips in the property suite.)
//!
//! Domain separation: leaf hashes start with `0x00`, interior nodes with
//! `0x01`, the empty instance is `H(0x02)`, and the cluster root binding
//! per-server shard roots in server order starts with `0x03` — no input
//! of one kind can collide with another.

use crate::sha256::{digest, hex, Sha256};
use parlog_relal::fact::Fact;
use parlog_relal::instance::Instance;
use parlog_relal::symbols::{rel_name, val_name};
use std::fmt;

/// A 256-bit content address of an instance (or answer, or shard).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub [u8; 32]);

impl SnapshotId {
    /// Full lower-case hex rendering.
    pub fn hex(&self) -> String {
        hex(&self.0)
    }

    /// The first 8 bytes as a `u64` — the compact form carried in trace
    /// event `info` fields.
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Debug for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SnapshotId({}…)", &self.hex()[..12])
    }
}

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

impl serde::Serialize for SnapshotId {
    fn json(&self, out: &mut String) {
        serde::write_json_str(out, &self.hex());
    }
}

/// Hash one fact into its leaf. Length-prefixed, name-based encoding:
/// `0x00 ‖ len(rel) ‖ rel ‖ arity ‖ (len(arg) ‖ arg)*` where every
/// component is rendered through the interner's *name* tables.
pub fn leaf_hash(f: &Fact) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    let rel = rel_name(f.rel);
    h.update(&(rel.len() as u32).to_le_bytes());
    h.update(rel.as_bytes());
    h.update(&(f.args.len() as u32).to_le_bytes());
    for a in &f.args {
        let name = val_name(a.0);
        h.update(&(name.len() as u32).to_le_bytes());
        h.update(name.as_bytes());
    }
    h.finalize()
}

/// Merkle root over a set of leaves. Leaves are sorted by hash bytes
/// (set semantics: duplicates collapse, order is irrelevant); an odd
/// node at any level is promoted unchanged.
fn merkle_root(mut leaves: Vec<[u8; 32]>) -> [u8; 32] {
    leaves.sort_unstable();
    leaves.dedup();
    if leaves.is_empty() {
        return digest(&[0x02]);
    }
    while leaves.len() > 1 {
        let mut next = Vec::with_capacity(leaves.len().div_ceil(2));
        let mut it = leaves.chunks_exact(2);
        for pair in &mut it {
            let mut h = Sha256::new();
            h.update(&[0x01]);
            h.update(&pair[0]);
            h.update(&pair[1]);
            next.push(h.finalize());
        }
        if let [odd] = it.remainder() {
            next.push(*odd);
        }
        leaves = next;
    }
    leaves[0]
}

/// The content address of an instance: the Merkle root over its facts'
/// leaf hashes.
pub fn snapshot(inst: &Instance) -> SnapshotId {
    SnapshotId(merkle_root(inst.iter().map(leaf_hash).collect()))
}

/// The content address of a pinned MVCC snapshot — the serving layer's
/// snapshot id. Process- and publication-order independent: two
/// replicas that converge to the same fact set publish the same id,
/// whatever their epoch histories, so the id doubles as a cross-replica
/// consistency check (and as the cache tag proof-carrying answers bind
/// their certificates to).
pub fn snapshot_id(s: &parlog_relal::snapshot::Snapshot) -> SnapshotId {
    snapshot(s.instance())
}

/// Per-server shard roots, in server order.
pub fn shard_roots(shards: &[Instance]) -> Vec<SnapshotId> {
    shards.iter().map(snapshot).collect()
}

/// The cluster-level snapshot id: binds every server's shard root *and*
/// its position, so swapping two shards (or dropping one) changes the id.
pub fn cluster_root(roots: &[SnapshotId]) -> SnapshotId {
    let mut h = Sha256::new();
    h.update(&[0x03]);
    h.update(&(roots.len() as u32).to_le_bytes());
    for r in roots {
        h.update(&r.0);
    }
    SnapshotId(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlog_relal::fact::fact;

    #[test]
    fn root_is_insertion_order_independent() {
        let a = Instance::from_facts([fact("R", &[1, 2]), fact("S", &[3, 4]), fact("R", &[5, 6])]);
        let b = Instance::from_facts([fact("R", &[5, 6]), fact("R", &[1, 2]), fact("S", &[3, 4])]);
        assert_eq!(snapshot(&a), snapshot(&b));
    }

    #[test]
    fn root_separates_instances() {
        let a = Instance::from_facts([fact("R", &[1, 2])]);
        let b = Instance::from_facts([fact("R", &[1, 3])]);
        let c = Instance::from_facts([fact("S", &[1, 2])]);
        assert_ne!(snapshot(&a), snapshot(&b));
        assert_ne!(snapshot(&a), snapshot(&c));
        assert_ne!(snapshot(&a), snapshot(&Instance::new()));
    }

    /// The MVCC snapshot id is the content root of the pinned instance:
    /// stable across re-publication of the same facts, distinct per
    /// generation content, equal across independently caught-up stores.
    #[test]
    fn mvcc_snapshot_id_is_content_addressed() {
        use parlog_relal::snapshot::SnapshotStore;
        let store = SnapshotStore::new(Instance::from_facts([fact("R", &[1, 2])]));
        let s0 = store.pin();
        let id0 = snapshot_id(&s0);
        // Publishing identical content yields the identical id...
        let s1 = store.publish();
        assert_eq!(snapshot_id(&s1), id0);
        assert_ne!(s1.generation(), s0.generation());
        // ...and different content a different id.
        store.mutate(|w| {
            w.insert(fact("R", &[3, 4]));
        });
        let s2 = store.publish();
        assert_ne!(snapshot_id(&s2), id0);
        // An independent store converging to the same facts agrees.
        let other = SnapshotStore::new(Instance::from_facts([
            fact("R", &[3, 4]),
            fact("R", &[1, 2]),
        ]));
        assert_eq!(snapshot_id(&other.pin()), snapshot_id(&s2));
    }

    #[test]
    fn empty_instance_has_a_stable_root() {
        assert_eq!(snapshot(&Instance::new()), snapshot(&Instance::new()));
        assert_eq!(snapshot(&Instance::new()).0, digest(&[0x02]));
    }

    #[test]
    fn symbols_hash_by_name_not_interned_id() {
        use parlog_relal::fact::fact_syms;
        // Two facts over named constants: the leaf depends on the names,
        // which are interning-order stable, unlike the numeric Sym ids.
        let f = fact_syms("Likes", &["alice", "bob"]);
        let g = fact_syms("Likes", &["alice", "bob"]);
        assert_eq!(leaf_hash(&f), leaf_hash(&g));
        assert_ne!(
            leaf_hash(&f),
            leaf_hash(&fact_syms("Likes", &["bob", "alice"]))
        );
    }

    #[test]
    fn leaf_encoding_is_prefix_free() {
        // "ab"(c) vs "a"(bc): same concatenated text, different leaves —
        // the length prefixes disambiguate.
        use parlog_relal::fact::fact_syms;
        assert_ne!(
            leaf_hash(&fact_syms("ab", &["c"])),
            leaf_hash(&fact_syms("a", &["bc"]))
        );
    }

    #[test]
    fn cluster_root_binds_order_and_width() {
        let a = snapshot(&Instance::from_facts([fact("R", &[1, 2])]));
        let b = snapshot(&Instance::from_facts([fact("R", &[3, 4])]));
        assert_ne!(cluster_root(&[a, b]), cluster_root(&[b, a]));
        assert_ne!(cluster_root(&[a, b]), cluster_root(&[a, b, b]));
        assert_eq!(cluster_root(&[a, b]), cluster_root(&[a, b]));
    }

    #[test]
    fn snapshot_serializes_as_hex() {
        let id = snapshot(&Instance::from_facts([fact("R", &[1, 2])]));
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, format!("\"{}\"", id.hex()));
        assert_eq!(id.hex().len(), 64);
    }
}
