//! Adversarial property tests for the trusted checker (PR 6):
//! *any* single-tuple tampering — of the answer, of a witness, or of
//! the bound shard — flips the checker's verdict from accept to reject.
//!
//! The adversary here is diligent: after every tampering the
//! certificate's `answer_root` is recomputed, so the checker can never
//! pass by comparing roots alone.

use proptest::prelude::*;

use parlog_faults::CorruptKind;
use parlog_relal::eval::EvalStrategy;
use parlog_relal::fact::{fact, Fact, Val};
use parlog_relal::instance::Instance;
use parlog_relal::parser::{parse_query, parse_union};
use parlog_relal::query::UnionQuery;
use parlog_verify::checker::check_answer;
use parlog_verify::snapshot::snapshot;
use parlog_verify::{corrupt_answer, prove_ucq};

fn db_strategy(max_facts: usize, domain: u64) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..domain, 0..domain, 0..2u64), 2..max_facts).prop_map(|triples| {
        Instance::from_facts(triples.into_iter().map(|(a, b, r)| {
            if r == 0 {
                fact("R", &[a, b])
            } else {
                fact("S", &[a, b])
            }
        }))
    })
}

fn queries() -> Vec<UnionQuery> {
    vec![
        UnionQuery::new(vec![parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap()]),
        parse_union("H(x) <- R(x,y); H(x) <- S(x,y)").unwrap(),
        UnionQuery::new(vec![parse_query("H(x,y) <- R(x,y), not S(x,y)").unwrap()]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The seeded adversary (mutate / inject / drop, diligent root
    /// recomputation) never slips a corruption past the checker,
    /// whichever query shape and entropy it draws.
    #[test]
    fn seeded_adversary_always_flips_the_verdict(
        db in db_strategy(20, 8),
        entropy in 0u64..10_000,
        kind_idx in 0usize..3,
        query_idx in 0usize..3,
    ) {
        let u = &queries()[query_idx];
        let (mut answer, mut cert) = prove_ucq(0, u, &db, EvalStrategy::Indexed);
        prop_assert!(check_answer(u, &db, &answer, &cert).is_ok());
        corrupt_answer(&mut answer, &mut cert, u, CorruptKind::ALL[kind_idx], entropy);
        prop_assert!(
            check_answer(u, &db, &answer, &cert).is_err(),
            "corruption survived the checker"
        );
    }

    /// Hand-rolled single-tuple tampering of the *answer*: adding any
    /// fresh tuple or removing any present tuple is rejected, even with
    /// the answer root recomputed.
    #[test]
    fn any_answer_tuple_flip_is_rejected(
        db in db_strategy(20, 8),
        pick in 0usize..64,
        fresh_a in 100u64..200,
        fresh_b in 100u64..200,
    ) {
        let u = &queries()[0];
        let (answer, cert) = prove_ucq(0, u, &db, EvalStrategy::Indexed);

        // Remove one tuple (when the answer has any).
        if !answer.is_empty() {
            let victim = answer.sorted_facts()[pick % answer.len()].clone();
            let mut tampered = answer.clone();
            tampered.remove(&victim);
            let mut cert2 = cert.clone();
            cert2.witnesses.retain(|w| w.fact != victim);
            cert2.answer_root = snapshot(&tampered);
            prop_assert!(check_answer(u, &db, &tampered, &cert2).is_err());
        }

        // Add one tuple the engine never derived (values ≥ 100 are
        // outside the generated domain, so it cannot be a real answer).
        let forged = Fact::new(answer.sorted_facts().first().map_or_else(
            || parlog_relal::symbols::rel("H"),
            |f| f.rel,
        ), vec![Val(fresh_a), Val(fresh_b)]);
        let mut tampered = answer.clone();
        tampered.insert(forged);
        let mut cert2 = cert.clone();
        cert2.answer_root = snapshot(&tampered);
        prop_assert!(check_answer(u, &db, &tampered, &cert2).is_err());
    }

    /// Tampering with a *witness* (rebinding one variable to a value
    /// outside the data's domain, so the binding cannot accidentally be
    /// another valid witness) is rejected: the valuation no longer
    /// derives its fact or no longer satisfies the query on the shard.
    #[test]
    fn any_witness_tamper_is_rejected(
        db in db_strategy(20, 8),
        pick in 0usize..64,
        fresh in 100u64..150,
    ) {
        let u = &queries()[0];
        let (answer, mut cert) = prove_ucq(0, u, &db, EvalStrategy::Indexed);
        if cert.witnesses.is_empty() {
            return;
        }
        let i = pick % cert.witnesses.len();
        let w = &mut cert.witnesses[i];
        let var = w.valuation.iter().next().map(|(v, _)| v.clone()).unwrap();
        w.valuation.bind(var, Val(fresh));
        prop_assert!(check_answer(u, &db, &answer, &cert).is_err());
    }

    /// Presenting the answer against a *different shard* than the one
    /// the certificate binds (one fact added or removed) is rejected by
    /// the snapshot binding before any witness is even examined.
    #[test]
    fn any_shard_tamper_is_rejected(
        db in db_strategy(20, 8),
        pick in 0usize..64,
    ) {
        let u = &queries()[0];
        let (answer, cert) = prove_ucq(0, u, &db, EvalStrategy::Indexed);

        let mut grown = db.clone();
        grown.insert(fact("R", &[77, 88]));
        prop_assert!(check_answer(u, &grown, &answer, &cert).is_err());

        let victim = db.sorted_facts()[pick % db.len()].clone();
        let mut shrunk = db.clone();
        shrunk.remove(&victim);
        prop_assert!(check_answer(u, &shrunk, &answer, &cert).is_err());
    }
}
