//! A tour of the supporting formalisms around the survey's core:
//! relational algebra in MPC, the MapReduce abstraction, SharesSkew,
//! coordination analysis and scale independence (Sections 3 and 6).
//!
//! ```sh
//! cargo run --example algebra_tour
//! ```

use parlog::mpc::datagen;
use parlog::mpc::mapreduce;
use parlog::mpc::ra_distributed::DistributedRa;
use parlog::mpc::shares_skew::SharesSkewAlgorithm;
use parlog::prelude::*;
use parlog::relal::algebra::{eval_ra, RaExpr};
use parlog::scale::{bounded_plan, eval_bounded, AccessConstraint, AccessSchema};

fn main() {
    // ── Relational algebra, centralized and distributed ────────────────
    println!("== Relational algebra in the MPC model ==");
    let mut db = datagen::uniform_relation("R", 400, 80, 1);
    db.extend_from(&datagen::uniform_relation("S", 400, 80, 2));
    // (R ⋉ S) ⋈ S — a semijoin reduction before the join.
    let expr = RaExpr::rel("R", 2)
        .semijoin(RaExpr::rel("S", 2), vec![(1, 0)])
        .join(RaExpr::rel("S", 2), vec![(1, 0)]);
    let central = eval_ra(&expr, &db).unwrap();
    let report = DistributedRa::new(16, 7).run(&expr, &db, "Out").unwrap();
    println!("  expression: (R ⋉ S) ⋈ S");
    println!("  centralized tuples : {}", central.len());
    println!(
        "  distributed tuples : {} (equal: {})",
        report.output.len(),
        report.output.len() == central.len()
    );
    println!(
        "  rounds = {}, max load = {}, total comm = {}",
        report.stats.rounds, report.stats.max_load, report.stats.total_comm
    );

    // ── MapReduce as an MPC specification language ─────────────────────
    println!("\n== MapReduce (Section 3's formalism) ==");
    let tri_db = datagen::triangle_db(1000, 150, 5);
    let mr = mapreduce::triangle_cascade_program();
    let r = mr.run(&tri_db, 16, 1);
    let q = parlog::queries::triangle_join();
    println!("  triangle cascade as 2 MapReduce jobs:");
    println!(
        "  output = {} facts (matches CQ evaluation: {})",
        r.output.len(),
        r.output == eval_query(&q, &tri_db)
    );
    println!(
        "  per-job loads: {:?}",
        r.rounds.iter().map(|s| s.max_load).collect::<Vec<_>>()
    );

    // ── SharesSkew ─────────────────────────────────────────────────────
    println!("\n== SharesSkew (heavy-hitter-aware shares) ==");
    let join = parlog::queries::binary_join();
    let mut skew = datagen::heavy_hitter_relation("R", 2000, 0.4, 7, 1, 0);
    skew.extend_from(&datagen::heavy_hitter_relation(
        "S", 2000, 0.4, 7, 0, 50_000,
    ));
    let plain = parlog::mpc::HypercubeAlgorithm::new(&join, 64)
        .unwrap()
        .run(&skew, 0);
    let aware = SharesSkewAlgorithm::from_stats(&join, &skew, 64, 100, 4, 3);
    let ra = aware.run(&skew);
    println!("  heavy patterns detected: {}", aware.pattern_count());
    println!("  plain HyperCube max load : {}", plain.stats.max_load);
    println!(
        "  SharesSkew max load      : {} (outputs equal: {})",
        ra.stats.max_load,
        ra.output == plain.output
    );

    // ── Coordination analysis ──────────────────────────────────────────
    println!("\n== Coordination analysis (Blazes direction, §6) ==");
    for (name, src) in [
        ("TC", "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)"),
        ("open-triangle", "Open(x,y,z) <- E(x,y), E(y,z), not E(z,x)"),
        (
            "¬TC",
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)\nOUT(x,y) <- ADom(x), ADom(y), not TC(x,y)",
        ),
    ] {
        let p = parlog::datalog::program::parse_program(src).unwrap();
        let a = parlog::datalog::coordination::analyze(&p).unwrap();
        println!(
            "  {name}: {} coordination point(s), {} required barrier(s), coordination-free: {}",
            a.points.len(),
            a.required_barriers,
            a.coordination_free()
        );
    }

    // ── Scale independence ─────────────────────────────────────────────
    println!("\n== Scale independence (Fan–Geerts–Libkin, §6) ==");
    let q2 = parse_query("H(z,c) <- Follows(3, y), Follows(y, z), Profile(z, c)").unwrap();
    let schema = AccessSchema::new(vec![
        AccessConstraint::new("Follows", vec![0], 4),
        AccessConstraint::new("Profile", vec![0], 1),
    ]);
    let plan = bounded_plan(&q2, &schema).expect("scale-independent");
    println!("  query: {q2}");
    println!(
        "  bounded plan found, valuation bound = {}",
        plan.valuation_bound
    );
    for users in [1_000u64, 100_000] {
        let mut big = Instance::new();
        for u in 0..users {
            for k in 1..=4 {
                big.insert(parlog::relal::fact::fact("Follows", &[u, (u + k) % users]));
            }
            big.insert(parlog::relal::fact::fact("Profile", &[u, u % 9]));
        }
        let r = eval_bounded(&q2, &big, &plan);
        println!(
            "  |I| = {:>7} facts → fetched {} facts, {} answers",
            big.len(),
            r.facts_fetched,
            r.output.len()
        );
    }
    println!("  (the fetch count is independent of |I| — that is scale independence)");
}
