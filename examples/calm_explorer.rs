//! Section 5 walkthrough: coordination-free computation, the CALM
//! hierarchy, and the recomputation of Figure 2.
//!
//! ```sh
//! cargo run --example calm_explorer
//! ```

use parlog::calm::Schema;
use parlog::figure2::datalog_query;
use parlog::prelude::*;
use parlog::relal::fact::fact;
use parlog::relal::policy::DomainGuidedPolicy;
use parlog::transducer::distribution::policy_distribution;
use parlog::transducer::prelude::*;
use std::sync::Arc;

fn main() {
    let graph = Instance::from_facts([
        fact("E", &[1, 2]),
        fact("E", &[2, 3]),
        fact("E", &[3, 1]),
        fact("E", &[2, 4]),
        fact("E", &[10, 11]),
        fact("E", &[11, 10]),
    ]);

    // ── Example 5.1(1): monotone queries are coordination-free ─────────
    let tri = parlog::queries::graph_triangles();
    let expected = eval_query(&tri, &graph);
    let program = MonotoneBroadcast::new(tri.clone());
    println!("Example 5.1(1) — triangles, monotone broadcast:");
    let report =
        check_eventual_consistency(&program, &graph, &expected, &[1, 2, 4], &[0, 1, 2], |_| {
            Ctx::oblivious()
        });
    println!(
        "  eventually consistent over {} runs: {}",
        report.runs,
        report.consistent()
    );
    println!(
        "  coordination-free: {}\n",
        check_coordination_free(&program, &graph, &expected, 3, Ctx::oblivious())
    );

    // ── Example 5.1(2): open triangles need coordination in F0 ─────────
    let open = parlog::queries::open_triangles();
    let open_expected = eval_query(&open, &graph);
    let coord = CoordinatedBroadcast::new(open.clone());
    println!("Example 5.1(2) — open triangles, coordinating broadcast:");
    let report =
        check_eventual_consistency(&coord, &graph, &open_expected, &[2, 3], &[0, 1], Ctx::aware);
    println!(
        "  eventually consistent over {} runs: {}",
        report.runs,
        report.consistent()
    );
    println!(
        "  coordination-free: {}\n",
        check_coordination_free(&coord, &graph, &open_expected, 3, Ctx::aware(3))
    );

    // ── Example 5.4: policy-awareness restores coordination-freeness ───
    let policy = Arc::new(DomainGuidedPolicy::new(3, 5));
    let shards = policy_distribution(&graph, policy.as_ref());
    let f1 = PolicyAwareCq::new(open);
    let ctx = Ctx::oblivious().with_policy(policy);
    let out = parlog::transducer::scheduler::run_with_ctx(&f1, &shards, ctx, Schedule::Random(1));
    println!("Example 5.4 — open triangles, policy-aware (F1):");
    println!("  output matches Q(I): {}\n", out == open_expected);

    // ── §5.2.2: ¬TC with the domain-guided component algorithm (F2) ────
    let ntc = datalog_query(parlog::queries::ntc_program(), "NTC");
    let ntc_expected = ntc.eval(&graph);
    let policy = Arc::new(DomainGuidedPolicy::new(3, 13));
    let shards = policy_distribution(&graph, policy.as_ref());
    let f2 = DisjointComponent::new(datalog_query(parlog::queries::ntc_program(), "NTC"));
    let ctx = Ctx::oblivious().with_policy(policy);
    let out = parlog::transducer::scheduler::run_with_ctx(&f2, &shards, ctx, Schedule::Random(2));
    println!("§5.2.2 — ¬TC, domain-guided components (F2):");
    println!(
        "  output matches Q(I): {} ({} facts)\n",
        out == ntc_expected,
        out.len()
    );

    // ── The monotonicity hierarchy, semantically tested ────────────────
    let schema = Schema::binary(&["E"]);
    println!("Monotonicity classes (bounded semantic testers):");
    println!(
        "  triangles      → {:?}",
        parlog::calm::classify(&tri, &schema)
    );
    println!(
        "  open triangles → {:?}",
        parlog::calm::classify(&parlog::queries::open_triangles(), &schema)
    );
    println!(
        "  ¬TC            → {:?}\n",
        parlog::calm::classify(&ntc, &schema)
    );

    // ── Figure 2, recomputed ───────────────────────────────────────────
    println!("{}", parlog::figure2::figure2());
}
