//! Section 3 walkthrough: the MPC model's one- and multi-round join
//! algorithms, their loads, and how skew changes the picture.
//!
//! ```sh
//! cargo run --example mpc_joins
//! ```

use parlog::mpc::algorithms::two_round_triangle::triangle_query;
use parlog::mpc::datagen;
use parlog::mpc::prelude::*;
use parlog::prelude::*;
use parlog::relal::packing;

fn print_report(label: &str, r: &RunReport) {
    println!(
        "  {:<22} rounds={} max_load={:<6} total_comm={:<7} exponent={:.3}",
        label, r.stats.rounds, r.stats.max_load, r.stats.total_comm, r.stats.load_exponent
    );
}

fn main() {
    let p = 64;

    // ── Example 3.1: binary join, skew-free vs skewed ──────────────────
    println!("Example 3.1 — R(x,y) ⋈ S(y,z) on p = {p} servers");
    let q = parlog::queries::binary_join();
    let mut skew_free = datagen::matching_relation("R", 2000, 0);
    skew_free.extend_from(&{
        let mut s = parlog::relal::Instance::new();
        for i in 0..2000u64 {
            s.insert(parlog::relal::fact::fact("S", &[2000 + i, 100_000 + i]));
        }
        s
    });
    let mut skewed = datagen::heavy_hitter_relation("R", 2000, 0.5, 7, 1, 0);
    skewed.extend_from(&datagen::heavy_hitter_relation(
        "S", 2000, 0.5, 7, 0, 50_000,
    ));

    println!(" skew-free ({} facts):", skew_free.len());
    print_report(
        "repartition (1a)",
        &RepartitionJoin::new(&q, p, 1).run(&skew_free),
    );
    print_report("grouped (1b)", &GroupedJoin::new(&q, p, 1).run(&skew_free));
    println!(" skewed ({} facts, heavy hitter on y):", skewed.len());
    print_report(
        "repartition (1a)",
        &RepartitionJoin::new(&q, p, 1).run(&skewed),
    );
    print_report("grouped (1b)", &GroupedJoin::new(&q, p, 1).run(&skewed));

    // ── Example 3.2 / §3.1: HyperCube and the load exponent 1/τ* ──────
    println!("\nExample 3.2 — triangle query, HyperCube");
    let tri = triangle_query();
    let tau = packing::fractional_edge_packing(&tri).unwrap().value;
    println!(
        "  τ* = {tau} ⇒ theoretical load m/p^(1/τ*) = m/p^{:.3}",
        1.0 / tau
    );
    let db = datagen::triangle_db(3000, 300, 5);
    print_report(
        "hypercube",
        &HypercubeAlgorithm::new(&tri, p).unwrap().run(&db, 0),
    );
    print_report(
        "cascade (Ex 3.1(2))",
        &CascadeJoin::new(&tri, p, 5).run(&db),
    );

    // ── §3.2: skew and multiple rounds ─────────────────────────────────
    println!("\n§3.2 — skewed triangle: one round vs two rounds");
    let heavy = datagen::triangle_heavy_db(3000, 500, 9);
    print_report(
        "hypercube (1 round)",
        &HypercubeAlgorithm::new(&tri, p).unwrap().run(&heavy, 0),
    );
    let mut cas = CascadeJoin::new(&tri, p, 9);
    cas.order = vec![0, 1, 2];
    print_report("cascade on y (skewed)", &cas.run(&heavy));
    print_report(
        "two-round skew-aware",
        &TwoRoundTriangle::new(p, 9).run(&heavy),
    );

    // ── §3.2: Yannakakis and GYM ───────────────────────────────────────
    println!("\n§3.2 — multi-round tree algorithms");
    let path = parse_query("H(x,w) <- R(x,y), S(y,z), T(z,w)").unwrap();
    let mut pdb = datagen::uniform_relation("R", 1500, 400, 1);
    pdb.extend_from(&datagen::uniform_relation("S", 1500, 400, 2));
    pdb.extend_from(&datagen::uniform_relation("T", 1500, 400, 3));
    print_report(
        "yannakakis (path)",
        &DistributedYannakakis::new(&path, p, 3).run(&pdb),
    );
    print_report("gym (triangle)", &Gym::new(&tri, p, 3).run(&db));
    println!("\nAll algorithm outputs equal the centralized evaluation (asserted in tests).");
}
