//! Section 4 walkthrough: parallel-correctness and transfer, including
//! the recomputation of Figure 1.
//!
//! ```sh
//! cargo run --example parallel_correctness
//! ```

use parlog::prelude::*;
use parlog::relal::fact::{fact, fact_syms};
use parlog::relal::policy::ExplicitPolicy;

fn main() {
    // ── Example 4.1: a correct and an incorrect policy ─────────────────
    let q = parse_query("H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)").unwrap();
    let ie = Instance::from_facts([
        fact_syms("R", &["a", "b"]),
        fact_syms("R", &["b", "a"]),
        fact_syms("R", &["b", "c"]),
        fact_syms("S", &["a", "a"]),
        fact_syms("S", &["c", "a"]),
    ]);
    println!("Example 4.1 — Qe: {q}");
    println!("  Ie = {ie}");
    let mut p1 = ExplicitPolicy::new(2);
    let mut p2 = ExplicitPolicy::new(2);
    for f in ie.iter() {
        if f.rel == parlog::relal::symbols::rel("R") {
            p1.assign(0, f.clone());
            p1.assign(1, f.clone());
            p2.assign(0, f.clone());
        } else {
            p1.assign(usize::from(f.args[0] != f.args[1]), f.clone());
            p2.assign(1, f.clone());
        }
    }
    println!(
        "  [Qe,P1](Ie) = {}",
        parlog::pc::parallel_result(&q, &p1, &ie)
    );
    println!(
        "  [Qe,P2](Ie) = {}",
        parlog::pc::parallel_result(&q, &p2, &ie)
    );
    println!("  Qe(Ie)      = {}\n", eval_query(&q, &ie));

    // ── Examples 4.3/4.5: minimal valuations, PC0 vs PC1 ──────────────
    let q43 = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
    let policy = parlog::pc::example_4_3_policy();
    let universe = [Val(1), Val(2)];
    println!("Example 4.3 — {q43}");
    println!(
        "  PC0 (strongly saturates): {}",
        strongly_saturates(&q43, &policy, &universe)
    );
    println!(
        "  PC1 (saturates):          {}",
        saturates(&q43, &policy, &universe)
    );
    println!(
        "  parallel-correct:         {}",
        parallel_correct(&q43, &policy, &universe)
    );
    let v1 = Valuation::of(&[("x", 1), ("y", 2), ("z", 1)]);
    let v2 = Valuation::of(&[("x", 1), ("y", 1), ("z", 1)]);
    println!(
        "  V1 = {v1} minimal? {}   V2 = {v2} minimal? {}\n",
        parlog::relal::minimal::is_minimal(&q43, &v1),
        parlog::relal::minimal::is_minimal(&q43, &v2),
    );

    // ── CQ¬: soundness vs completeness ────────────────────────────────
    let qn = parse_query("H(x) <- R(x), not S(x)").unwrap();
    let mut split = ExplicitPolicy::new(2);
    split.assign(0, fact("R", &[1]));
    split.assign(1, fact("S", &[1]));
    let verdict = parlog::pc::parallel_correct_neg(&qn, &split, &[Val(1)]);
    println!("CQ¬ — {qn} with R and S on different nodes:");
    println!(
        "  sound = {}, complete = {}, counterexample = {:?}\n",
        verdict.sound, verdict.complete, verdict.counterexample
    );

    // ── Figure 1, recomputed ───────────────────────────────────────────
    println!("{}", parlog::figure1::figure1());
}
