//! Quickstart: the three pillars of the survey in one run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! 1. Evaluate the triangle query with the one-round HyperCube algorithm
//!    on a simulated MPC cluster and inspect its load.
//! 2. Decide parallel-correctness of a query under a distribution policy
//!    via minimal valuations (condition PC1).
//! 3. Compute a monotone query coordination-free on an asynchronous
//!    transducer network and check eventual consistency.

use parlog::mpc::datagen;
use parlog::mpc::prelude::*;
use parlog::prelude::*;
use parlog::transducer::prelude::*;

fn main() {
    // ── 1. One-round HyperCube on the MPC simulator ────────────────────
    let triangle = parse_query("H(x,y,z) <- R(x,y), S(y,z), T(z,x)").unwrap();
    let db = datagen::triangle_db(3000, 200, 42);
    let m = db.len();
    let hc = HypercubeAlgorithm::new(&triangle, 64).unwrap();
    let report = hc.run(&db, 0);
    assert_eq!(report.output, eval_query(&triangle, &db));
    println!("HyperCube, p = {}:", report.stats.p);
    println!("  shares            = {:?}", hc.shares().shares);
    println!("  max load          = {} (m = {m})", report.stats.max_load);
    println!(
        "  load exponent     = {:.3} (theory: 2/3 = 0.667)",
        report.stats.load_exponent
    );
    println!(
        "  replication rate  = {:.2} (theory: p^(1/3) = 4)",
        report.stats.replication
    );
    println!("  triangles found   = {}\n", report.output.len());

    // ── 2. Parallel-correctness via minimal valuations ─────────────────
    // Example 4.3: PC0 fails, PC1 holds — correct nonetheless.
    let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
    let policy = parlog::pc::example_4_3_policy();
    let universe = [Val(1), Val(2)];
    println!("Example 4.3 query: {q}");
    println!(
        "  strongly saturates (PC0)? {}",
        parlog::pc::strongly_saturates(&q, &policy, &universe)
    );
    println!(
        "  saturates (PC1)?          {}",
        parlog::pc::saturates(&q, &policy, &universe)
    );
    println!(
        "  parallel-correct?         {}\n",
        parlog::pc::parallel_correct(&q, &policy, &universe)
    );

    // ── 3. Coordination-free asynchronous evaluation ───────────────────
    let graph = datagen::random_graph("E", 30, 120, 7);
    let tri = parlog::queries::graph_triangles();
    let expected = eval_query(&tri, &graph);
    let program = MonotoneBroadcast::new(tri);
    let shards = hash_distribution(&graph, 4, 3);
    let out = run_to_quiescence(&program, &shards, 9);
    assert_eq!(out, expected);
    println!("Transducer network (4 nodes, monotone broadcast):");
    println!("  triangles found   = {}", out.len());
    println!(
        "  coordination-free = {}",
        check_coordination_free(&program, &graph, &expected, 4, Ctx::oblivious())
    );
}
