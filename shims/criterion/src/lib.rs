//! Offline stand-in for `criterion`.
//!
//! Supports the bench-file surface this workspace uses —
//! `benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — with a simple
//! median-of-samples timer and plain-text output. No statistical
//! analysis, HTML reports or comparison against saved baselines.

#![forbid(unsafe_code)]
#![deny(warnings)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `function_name/parameter` for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// The benchmark driver handed to registered bench functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (printing nothing extra in the shim).
    pub fn finish(self) {}
}

/// Timer handle: call [`Bencher::iter`] with the closure to measure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording `sample_size` samples after one warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup (and monomorphization priming)
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    println!(
        "  {label}: median {median:?} over {} samples (total {total:?})",
        b.samples.len()
    );
}

/// Bundle benchmark functions under one registry function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given registries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timer_run() {
        benches();
    }
}
