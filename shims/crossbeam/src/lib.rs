//! Offline stand-in for `crossbeam` — just the `channel` module, just the
//! operations the threaded transducer runtime uses: `unbounded()`,
//! cloneable `Sender`/`Receiver`, `send`, `recv_timeout`, `is_empty`.
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` MPMC queue. Throughput
//! is far below real crossbeam's lock-free channels, which is acceptable:
//! the runtime moves a few thousand small messages per test.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when no receiver can ever take
    /// the message. The unbounded queue never rejects while receivers
    /// exist, so in this shim `send` always succeeds (receivers hold the
    /// same `Arc`).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable (any clone may consume any message).
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders += 1;
            drop(q);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            if q.senders == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(ChanState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.items.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert!(rx.is_empty());
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            while got < 100 {
                if rx.recv_timeout(Duration::from_millis(100)).is_ok() {
                    got += 1;
                }
            }
            h.join().unwrap();
        }
    }
}
