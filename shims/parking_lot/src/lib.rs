//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes `Mutex` and `RwLock` with parking_lot's signature style:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is absorbed by taking the inner value — the
//! workspace never relies on poison propagation (a panic while holding a
//! lock aborts the test that caused it anyway).

#![forbid(unsafe_code)]
#![deny(warnings)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
