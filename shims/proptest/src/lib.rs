//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header) and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! sampled from a deterministic per-case seed (derived from the macro
//! invocation line and the case index) rather than an entropy source, and
//! there is **no shrinking** — a failing case panics with its seed so it
//! can be replayed, but is not minimized.

#![forbid(unsafe_code)]
#![deny(warnings)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length
        /// drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A vector of `size.len()`-bounded length with elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Runner configuration: only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Sample a strategy from an explicit seed (used by the `proptest!`
/// expansion; exposed for replaying failures).
pub fn sample_with_seed<S: Strategy>(strategy: &S, seed: u64) -> S::Value {
    strategy.sample(&mut StdRng::seed_from_u64(seed))
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases. The case
/// seed is printed on entry to a failing case via the panic payload of
/// the inner assertion plus the seed bound below.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    // Distinct stream per macro line and case.
                    let __seed = 0x9e3779b97f4a7c15u64
                        .wrapping_mul(line!() as u64 + 1)
                        .wrapping_add(__case as u64);
                    let __run = || {
                        let mut __offset = 0u64;
                        $(
                            __offset += 1;
                            let $arg = $crate::sample_with_seed(
                                &$strat,
                                __seed.wrapping_add(__offset << 32),
                            );
                        )*
                        $body
                    };
                    if let Err(payload) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                    {
                        eprintln!(
                            "proptest shim: case {__case} failed (seed {__seed:#x})"
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..10u64, y in 0..5usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0..3u8, 0..4u8), 0..6).prop_map(|p| p.len())
        ) {
            prop_assert!(v < 6);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = prop::collection::vec(0..100u64, 1..10);
        assert_eq!(
            super::sample_with_seed(&s, 42),
            super::sample_with_seed(&s, 42)
        );
    }
}
