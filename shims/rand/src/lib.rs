//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This shim implements the (small)
//! API surface the workspace actually uses — `StdRng::seed_from_u64`,
//! `gen_range` over integer ranges, `gen_bool`, and `gen::<f64>()` — on
//! top of xoshiro256++ seeded via SplitMix64. Streams are deterministic
//! and stable across runs, which is all the simulators require; the
//! concrete values differ from upstream `rand`'s ChaCha-based `StdRng`
//! (no test in this workspace depends on specific draws).

#![forbid(unsafe_code)]
#![deny(warnings)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from the "standard" (uniform) distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, far below anything these simulators can see.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p == 0.0 {
            return false;
        }
        if p == 1.0 {
            return true;
        }
        f64::standard_sample(self) < p
    }

    /// Draw from the standard (uniform) distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic default generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).all(|_| a.gen_range(0..2u32) == c.gen_range(0..2u32));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
