//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates, so this shim replaces the
//! real serde with the minimum the workspace uses: a [`Serialize`] trait
//! that renders JSON into a `String`, a marker [`Deserialize`] trait
//! (derived but never invoked here), and `#[derive(Serialize,
//! Deserialize)]` macros re-exported from the sibling `serde_derive`
//! shim. `serde_json::to_string` (also shimmed) drives [`Serialize`].
//!
//! The data model is deliberately JSON-only — no `Serializer` abstraction
//! — because every serialization in this workspace targets one-line JSON
//! records for the experiment harness.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::BuildHasher;

/// Render `self` as JSON, appending to `out`.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn json(&self, out: &mut String);
}

/// Marker for deserializable types. The workspace derives it for
/// round-trip symmetry but never deserializes, so no methods exist.
pub trait Deserialize<'de>: Sized {}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 24], *self as i128));
            }
        }
    )*};
}

/// Integer formatting without allocation (hot path of bench JSON dumps).
fn itoa_buf(buf: &mut [u8; 24], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl_display_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn json(&self, out: &mut String) {
        if self.is_finite() {
            // Debug gives the shortest round-trip decimal, valid JSON.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null"); // serde_json's behavior for NaN/inf
        }
    }
}

impl Serialize for f32 {
    fn json(&self, out: &mut String) {
        (*self as f64).json(out);
    }
}

impl Serialize for str {
    fn json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for String {
    fn json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for char {
    fn json(&self, out: &mut String) {
        write_json_str(out, &self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self, out: &mut String) {
        match self {
            Some(v) => v.json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

/// JSON object keys must be strings: a key that serializes to a JSON
/// string is used verbatim, any other encoding is wrapped in quotes.
fn write_map_entry<K: Serialize, V: Serialize>(out: &mut String, k: &K, v: &V) {
    let mut key = String::new();
    k.json(&mut key);
    if key.starts_with('"') {
        out.push_str(&key);
    } else {
        write_json_str(out, &key);
    }
    out.push(':');
    v.json(out);
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_map_entry(out, k, v);
        }
        out.push('}');
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_map_entry(out, k, v);
        }
        out.push('}');
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn json(&self, out: &mut String) {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&3usize), "3");
        assert_eq!(to_json(&-7i64), "-7");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&0.5f64), "0.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&[[true, false]; 1]), "[[true,false]]");
        assert_eq!(to_json(&Some(1u8)), "1");
        assert_eq!(to_json(&None::<u8>), "null");
        assert_eq!(to_json(&(1u8, "x".to_string())), "[1,\"x\"]");
        let mut m = std::collections::BTreeMap::new();
        m.insert(2u32, "b");
        assert_eq!(to_json(&m), "{\"2\":\"b\"}");
    }
}
