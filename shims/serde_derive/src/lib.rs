//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no registry access), so the derive
//! parses the item's `TokenStream` by hand. Supported shapes — everything
//! this workspace derives on:
//!
//! * named-field structs            → JSON objects
//! * newtype / tuple structs        → the inner value / a JSON array
//! * unit structs                   → `null`
//! * enums of unit/newtype/tuple/struct variants → `"Name"` / `{"Name": …}`
//!
//! Generic types and `#[serde(...)]` attributes are rejected with a
//! compile error naming this file, so a future use of an unsupported
//! shape fails loudly instead of serializing garbage.

#![deny(warnings)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim's JSON-writing trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (a marker trait in the shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(x) => x,
        Err(e) => return error(&e),
    };
    let body = match mode {
        Mode::Deserialize => {
            return format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .expect("derive output");
        }
        Mode::Serialize => match shape {
            Shape::Named(fields) => {
                let mut b = String::from("out.push('{');\n");
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        b.push_str("out.push(',');\n");
                    }
                    b.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                    b.push_str(&format!("::serde::Serialize::json(&self.{f}, out);\n"));
                }
                b.push_str("out.push('}');");
                b
            }
            Shape::Tuple(1) => "::serde::Serialize::json(&self.0, out);".to_string(),
            Shape::Tuple(n) => {
                let mut b = String::from("out.push('[');\n");
                for i in 0..n {
                    if i > 0 {
                        b.push_str("out.push(',');\n");
                    }
                    b.push_str(&format!("::serde::Serialize::json(&self.{i}, out);\n"));
                }
                b.push_str("out.push(']');");
                b
            }
            Shape::Unit => "out.push_str(\"null\");".to_string(),
            Shape::Enum(variants) => {
                let mut b = String::from("match self {\n");
                for (v, vshape) in &variants {
                    match vshape {
                        VariantShape::Unit => {
                            b.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                        }
                        VariantShape::Tuple(1) => b.push_str(&format!(
                            "{name}::{v}(__f0) => {{ \
                             out.push_str(\"{{\\\"{v}\\\":\"); \
                             ::serde::Serialize::json(__f0, out); \
                             out.push('}}'); }}\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let mut arm = format!(
                                "{name}::{v}({}) => {{ out.push_str(\"{{\\\"{v}\\\":[\");\n",
                                binders.join(", ")
                            );
                            for (i, bn) in binders.iter().enumerate() {
                                if i > 0 {
                                    arm.push_str("out.push(',');\n");
                                }
                                arm.push_str(&format!("::serde::Serialize::json({bn}, out);\n"));
                            }
                            arm.push_str("out.push_str(\"]}}\"); }\n");
                            b.push_str(&arm);
                        }
                        VariantShape::Struct(fields) => {
                            let mut arm = format!(
                                "{name}::{v} {{ {} }} => {{ \
                                 out.push_str(\"{{\\\"{v}\\\":{{\");\n",
                                fields.join(", ")
                            );
                            for (i, f) in fields.iter().enumerate() {
                                if i > 0 {
                                    arm.push_str("out.push(',');\n");
                                }
                                arm.push_str(&format!(
                                    "out.push_str(\"\\\"{f}\\\":\");\n\
                                     ::serde::Serialize::json({f}, out);\n"
                                ));
                            }
                            arm.push_str("out.push_str(\"}}}}\"); }\n");
                            b.push_str(&arm);
                        }
                    }
                }
                b.push('}');
                b
            }
        },
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json(&self, out: &mut String) {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("derive output")
}

/// Parse `(name, shape)` out of a struct/enum item.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("serde shim derive: unsupported item kind `{kind}`"));
    }
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported (see shims/serde_derive)"
        ));
    }
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!(
            "serde shim derive: where-clause on `{name}` is not supported"
        ));
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(&g.stream().into_iter().collect::<Vec<_>>())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_top_level(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            None => Shape::Unit,
            _ => return Err(format!("serde shim derive: cannot parse struct `{name}`")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum(
                enum_variants(&g.stream().into_iter().collect::<Vec<_>>(), &name)?,
            ),
            _ => return Err(format!("serde shim derive: cannot parse enum `{name}`")),
        }
    };
    Ok((name, shape))
}

/// Skip `#[...]` attributes and a `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [group]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split `tokens` at commas that sit outside `<...>` nesting; groups keep
/// their contents, so only angle brackets need explicit depth tracking.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("nonempty").push(t.clone());
    }
    if chunks.last().map(Vec::is_empty).unwrap_or(false) {
        chunks.pop(); // trailing comma
    }
    chunks
}

fn count_top_level(tokens: &[TokenTree]) -> usize {
    split_top_commas(tokens).len()
}

fn named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for chunk in split_top_commas(tokens) {
        let i = skip_attrs_and_vis(&chunk, 0);
        match (chunk.get(i), chunk.get(i + 1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                out.push(id.to_string());
            }
            _ => return Err("serde shim derive: cannot parse a named field".into()),
        }
    }
    Ok(out)
}

fn enum_variants(tokens: &[TokenTree], name: &str) -> Result<Vec<(String, VariantShape)>, String> {
    let mut out = Vec::new();
    for chunk in split_top_commas(tokens) {
        let i = skip_attrs_and_vis(&chunk, 0);
        let vname = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err(format!("serde shim derive: bad variant in `{name}`")),
        };
        match chunk.get(i + 1) {
            None => out.push((vname, VariantShape::Unit)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(&g.stream().into_iter().collect::<Vec<_>>());
                out.push((vname, VariantShape::Tuple(arity)));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(&g.stream().into_iter().collect::<Vec<_>>())?;
                out.push((vname, VariantShape::Struct(fields)));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                out.push((vname, VariantShape::Unit)); // explicit discriminant: ignore it
            }
            _ => return Err(format!("serde shim derive: bad variant in `{name}`")),
        }
    }
    Ok(out)
}
