//! Offline stand-in for `serde_json`: `to_string` over the shimmed
//! [`serde::Serialize`] trait. Serialization in this workspace is
//! infallible (no non-string map keys reach JSON, non-finite floats
//! become `null`), so `Error` is uninhabited in practice but kept in the
//! signature for source compatibility.

#![forbid(unsafe_code)]
#![deny(warnings)]

use std::fmt;

/// Serialization error (never produced by this shim).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_vec() {
        assert_eq!(super::to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }
}
