//! Table-driven agreement matrix: every MPC algorithm × every query it
//! supports × several databases × several cluster sizes, all checked
//! against the centralized evaluator. The survey's algorithms differ in
//! loads and rounds — never in answers.

use parlog::mpc::algorithms::balanced_cascade::BalancedCascade;
use parlog::mpc::datagen;
use parlog::mpc::prelude::*;
use parlog::prelude::*;

fn dbs_for(rels: &[&str], seed: u64) -> Vec<(String, Instance)> {
    let mut out = Vec::new();
    // Uniform.
    let mut uni = Instance::new();
    for (i, r) in rels.iter().enumerate() {
        uni.extend_from(&datagen::uniform_relation(r, 120, 35, seed + i as u64));
    }
    out.push(("uniform".into(), uni));
    // Zipf-skewed first relation.
    let mut zipf = datagen::zipf_relation(rels[0], 120, 60, 1.1, seed);
    for (i, r) in rels.iter().enumerate().skip(1) {
        zipf.extend_from(&datagen::uniform_relation(r, 120, 60, seed + 10 + i as u64));
    }
    out.push(("zipf".into(), zipf));
    // Tiny edge-case db.
    let mut tiny = Instance::new();
    for r in rels {
        tiny.insert(parlog::relal::fact::fact(r, &[1, 1]));
        tiny.insert(parlog::relal::fact::fact(r, &[1, 2]));
    }
    out.push(("tiny".into(), tiny));
    // Empty.
    out.push(("empty".into(), Instance::new()));
    out
}

#[test]
fn two_atom_algorithms_agree_everywhere() {
    let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
    for (db_name, db) in dbs_for(&["R", "S"], 1) {
        let expected = eval_query(&q, &db);
        for p in [1usize, 2, 7, 16] {
            let runs = vec![
                RepartitionJoin::new(&q, p, 3).run(&db),
                GroupedJoin::new(&q, p, 3).run(&db),
                HypercubeAlgorithm::new(&q, p).unwrap().run(&db, 0),
                CascadeJoin::new(&q, p, 3).run(&db),
                BalancedCascade::new(&q, p, 3).run(&db),
            ];
            for r in runs {
                assert_eq!(
                    r.output, expected,
                    "{} on {db_name} with p = {p}",
                    r.algorithm
                );
            }
        }
    }
}

#[test]
fn triangle_algorithms_agree_everywhere() {
    let q = parlog::queries::triangle_join();
    for (db_name, db) in [
        ("triangle".to_string(), datagen::triangle_db(180, 40, 2)),
        ("skewed".to_string(), datagen::triangle_heavy_db(180, 60, 2)),
        ("empty".to_string(), Instance::new()),
    ] {
        let expected = eval_query(&q, &db);
        for p in [2usize, 9, 16] {
            let runs = vec![
                HypercubeAlgorithm::new(&q, p).unwrap().run(&db, 0),
                CascadeJoin::new(&q, p, 5).run(&db),
                BalancedCascade::new(&q, p, 5).run(&db),
                TwoRoundTriangle::new(p, 5).run(&db),
                Gym::new(&q, p, 5).run(&db),
            ];
            for r in runs {
                assert_eq!(
                    r.output, expected,
                    "{} on {db_name} with p = {p}",
                    r.algorithm
                );
            }
        }
    }
}

#[test]
fn acyclic_algorithms_agree_everywhere() {
    for src in [
        "H(x,w) <- R(x,y), S(y,z), T(z,w)",
        "H(x) <- R(x,y), S(y,z)",
        "H(x,a,b) <- R(x,a), S(x,b)",
    ] {
        let q = parse_query(src).unwrap();
        let rels: Vec<&str> = ["R", "S", "T"]
            .iter()
            .copied()
            .filter(|r| q.body_relations().contains(&parlog::relal::symbols::rel(r)))
            .collect();
        for (db_name, db) in dbs_for(&rels, 7) {
            let expected = eval_query(&q, &db);
            for p in [2usize, 8] {
                let runs = vec![
                    DistributedYannakakis::new(&q, p, 1).run(&db),
                    Gym::new(&q, p, 1).run(&db),
                    CascadeJoin::new(&q, p, 1).run(&db),
                    HypercubeAlgorithm::new(&q, p).unwrap().run(&db, 0),
                ];
                for r in runs {
                    assert_eq!(
                        r.output, expected,
                        "{} for {src} on {db_name} with p = {p}",
                        r.algorithm
                    );
                }
            }
        }
    }
}

#[test]
fn self_join_queries_agree() {
    let q = parse_query("H(x,z) <- R(x,y), R(y,z)").unwrap();
    for (db_name, db) in [
        ("graph".to_string(), datagen::random_graph("R", 25, 70, 3)),
        ("loops".to_string(), {
            Instance::from_facts((0..10u64).flat_map(|i| {
                [
                    parlog::relal::fact::fact("R", &[i, i]),
                    parlog::relal::fact::fact("R", &[i, i + 1]),
                ]
            }))
        }),
    ] {
        let expected = eval_query(&q, &db);
        for p in [3usize, 8] {
            let runs = vec![
                HypercubeAlgorithm::new(&q, p).unwrap().run(&db, 0),
                CascadeJoin::new(&q, p, 9).run(&db),
                DistributedYannakakis::new(&q, p, 9).run(&db),
            ];
            for r in runs {
                assert_eq!(r.output, expected, "{} on {db_name} p={p}", r.algorithm);
            }
        }
    }
}

#[test]
fn loads_respect_model_bounds() {
    // "the load should always be a number in the interval [m/p, m]" —
    // up to replication, no single round may exceed the (replicated)
    // data volume, and outputs never count as load.
    let q = parlog::queries::triangle_join();
    let db = datagen::triangle_db(300, 60, 4);
    let m = db.len();
    for p in [4usize, 16] {
        for r in [
            HypercubeAlgorithm::new(&q, p).unwrap().run(&db, 0),
            Gym::new(&q, p, 2).run(&db),
            TwoRoundTriangle::new(p, 2).run(&db),
        ] {
            assert!(r.stats.max_load <= r.stats.total_comm);
            assert!(
                r.stats.replication <= p as f64,
                "{}: replication {} cannot exceed p",
                r.algorithm,
                r.stats.replication
            );
            assert!(r.stats.max_load >= r.output.len().min(m) / p.max(1) / 4 || m < p * 4);
        }
    }
}
