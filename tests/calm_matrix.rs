//! Table-driven CALM matrix: transducer programs × distributions ×
//! schedules × network sizes, plus the negative diagonals (wrong program
//! for the class ⇒ detectable inconsistency; coordination-freeness holds
//! exactly where the survey says).

use parlog::figure2::datalog_query;
use parlog::prelude::*;
use parlog::relal::policy::{DomainGuidedPolicy, ReplicateAll};
use parlog::transducer::distribution::{ideal_distribution, policy_distribution};
use parlog::transducer::prelude::*;
use parlog::transducer::scheduler::run_with_ctx;
use std::sync::Arc;

fn graph() -> Instance {
    use parlog::relal::fact::fact;
    Instance::from_facts([
        fact("E", &[1, 2]),
        fact("E", &[2, 3]),
        fact("E", &[3, 1]), // closed triangle 1-2-3
        fact("E", &[2, 4]), // (1,2,4) and (4,…) stay open
        fact("E", &[4, 5]),
        fact("E", &[10, 11]),
        fact("E", &[11, 12]),
        fact("E", &[12, 10]), // second component, closed
    ])
}

/// F0 row: monotone queries under the monotone broadcast, all standard
/// distributions, all schedules, several network sizes.
#[test]
fn f0_matrix() {
    for (name, query) in [
        ("triangles", parlog::queries::graph_triangles()),
        ("two-hop", parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap()),
        ("loops", parse_query("H(x) <- E(x,x)").unwrap()),
    ] {
        let db = graph();
        let expected = eval_query(&query, &db);
        let program = MonotoneBroadcast::new(query);
        let report =
            check_eventual_consistency(&program, &db, &expected, &[1, 2, 5], &[0, 7], |_| {
                Ctx::oblivious()
            });
        assert!(report.consistent(), "{name}: {:?}", report.failures);
        assert!(
            check_coordination_free(&program, &db, &expected, 3, Ctx::oblivious()),
            "{name} must be coordination-free"
        );
    }
}

/// F1 row: the open-triangle query under policy-aware programs and
/// domain-guided policies of several sizes and seeds.
#[test]
fn f1_matrix() {
    let q = parlog::queries::open_triangles();
    let db = graph();
    let expected = eval_query(&q, &db);
    assert!(!expected.is_empty());
    let program = PolicyAwareCq::new(q);
    for n in [2usize, 3, 4] {
        for pseed in [5u64, 17] {
            let policy = Arc::new(DomainGuidedPolicy::new(n, pseed));
            let shards = policy_distribution(&db, policy.as_ref());
            for schedule in [Schedule::Random(3), Schedule::Fifo, Schedule::Lifo] {
                let ctx = Ctx::oblivious().with_policy(policy.clone());
                let out = run_with_ctx(&program, &shards, ctx, schedule);
                assert_eq!(out, expected, "n={n} pseed={pseed} {schedule:?}");
            }
        }
    }
    // Coordination-free via the replicate-all witness.
    let ctx = Ctx::oblivious().with_policy(Arc::new(ReplicateAll { num_nodes: 3 }));
    let out = parlog::transducer::scheduler::run_heartbeats_only(
        &program,
        &ideal_distribution(&db, 3),
        ctx,
    );
    assert_eq!(out, expected);
}

/// F2 row: ¬TC and win–move under domain-guided component evaluation.
#[test]
fn f2_matrix() {
    let ntc = datalog_query(parlog::queries::ntc_program(), "NTC");
    let db = graph();
    let expected = ntc.eval(&db);
    for n in [2usize, 3] {
        for pseed in [13u64, 29] {
            let policy = Arc::new(DomainGuidedPolicy::new(n, pseed));
            let shards = policy_distribution(&db, policy.as_ref());
            let program =
                DisjointComponent::new(datalog_query(parlog::queries::ntc_program(), "NTC"));
            for schedule in [Schedule::Random(9), Schedule::Lifo] {
                let ctx = Ctx::oblivious().with_policy(policy.clone());
                let out = run_with_ctx(&program, &shards, ctx, schedule);
                assert_eq!(out, expected, "n={n} pseed={pseed} {schedule:?}");
            }
        }
    }
}

/// Negative diagonal: running a class-too-weak program on a harder query
/// is *detected* by the consistency checker (CALM's only-if direction,
/// observed empirically).
#[test]
fn class_violations_are_detected() {
    let db = graph();
    // Monotone broadcast on the (non-monotone) open-triangle query.
    let q = parlog::queries::open_triangles();
    let expected = eval_query(&q, &db);
    let wrong = MonotoneBroadcast::new(q);
    let report =
        check_eventual_consistency(&wrong, &db, &expected, &[3], &[0, 1], |_| Ctx::oblivious());
    assert!(
        !report.consistent(),
        "a non-monotone query cannot be computed by the F0 strategy"
    );
}

/// The coordinated (barrier) program works for arbitrary queries but is
/// never coordination-free beyond a single node.
#[test]
fn coordination_is_necessary_and_sufficient_for_qnt() {
    // QNT is outside Mdisjoint: only the barrier program handles it. Use
    // a triangle-free database so QNT's output is nonempty — on an empty
    // expected output the heartbeat-only run would vacuously "succeed".
    use parlog::relal::fact::fact;
    let qnt = datalog_query(parlog::queries::qnt_program(), "OUT");
    let db = Instance::from_facts([
        fact("E", &[1, 2]),
        fact("E", &[2, 3]),
        fact("E", &[3, 4]),
        fact("E", &[10, 11]),
    ]);
    let expected = qnt.eval(&db);
    assert_eq!(expected.len(), 4, "triangle-free: QNT returns all edges");
    let program = CoordinatedBroadcast::new(datalog_query(parlog::queries::qnt_program(), "OUT"));
    let report = check_eventual_consistency(&program, &db, &expected, &[1, 3], &[0, 1], Ctx::aware);
    assert!(report.consistent(), "{:?}", report.failures);
    assert!(!check_coordination_free(
        &program,
        &db,
        &expected,
        3,
        Ctx::aware(3)
    ));
}

/// Exhaustive model checking on a minimal instance for all three
/// coordination-free strategies.
#[test]
fn exhaustive_verification_of_f0() {
    use parlog::relal::fact::fact;
    let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 1])]);
    let q = parse_query("H(x) <- E(x,y), E(y,x)").unwrap();
    let expected = eval_query(&q, &db);
    let program = MonotoneBroadcast::new(q);
    let shards = hash_distribution(&db, 2, 1);
    let report = parlog::transducer::exhaustive::explore_all_schedules(
        &program,
        &shards,
        Ctx::oblivious(),
        &expected,
        300_000,
    );
    assert!(report.verified(), "{:?}", report.violations);
    assert!(report.quiescent >= 1);
}
