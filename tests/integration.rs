//! Cross-crate integration tests: the survey's theorems exercised across
//! the MPC simulator, the parallel-correctness framework and the
//! transducer networks together.

use parlog::mpc::datagen;
use parlog::mpc::prelude::*;
use parlog::prelude::*;
use parlog::relal::policy::{DistributionPolicy, ExplicitPolicy};
use parlog::transducer::prelude::*;

/// Section 4.1: "every Hypercube distribution for a conjunctive query Q
/// strongly saturates Q (independent of the choices of the shares and the
/// hash functions)". Check PC0 for assorted queries, shares and seeds by
/// wrapping the HyperCube destinations as a distribution policy.
#[test]
fn hypercube_strongly_saturates_every_cq() {
    struct HcPolicy {
        hc: HypercubeAlgorithm,
    }
    impl DistributionPolicy for HcPolicy {
        fn num_nodes(&self) -> usize {
            self.hc.servers()
        }
        fn responsible(&self, node: usize, fact: &parlog::relal::Fact) -> bool {
            self.hc.destinations(fact).contains(&node)
        }
    }
    let queries = [
        "H(x,y,z) <- R(x,y), S(y,z), T(z,x)",
        "H(x,y,z) <- R(x,y), S(y,z)",
        "H(x,z) <- R(x,y), R(y,z)",
        "H(x,a,b) <- R(x,a), S(x,b)",
    ];
    let universe = [Val(1), Val(2), Val(3)];
    for src in queries {
        let q = parse_query(src).unwrap();
        for p in [4, 8, 27] {
            for seed in [0u64, 99] {
                let shares = parlog::mpc::Shares::optimal(&q, p).unwrap();
                let hc = HypercubeAlgorithm::with_shares(&q, shares, seed);
                let policy = HcPolicy { hc };
                assert!(
                    parlog::pc::strongly_saturates(&q, &policy, &universe),
                    "query {src}, p={p}, seed={seed}"
                );
                // PC0 ⇒ PC1 ⇒ parallel-correct.
                assert!(parlog::pc::parallel_correct(&q, &policy, &universe));
            }
        }
    }
}

/// Parallel-correctness (PC1) agrees with the definition on random
/// explicit policies: whenever PC1 holds, every instance evaluates
/// correctly; whenever it fails, some instance witnesses it.
#[test]
fn pc1_characterization_cross_validated() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let q = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
    let universe = [Val(1), Val(2)];
    let schema = parlog::pc::query_schema(&q);
    let facts = parlog::pc::candidate_facts(&schema, &universe);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for _ in 0..40 {
        let mut policy = ExplicitPolicy::new(2);
        for f in &facts {
            if rng.gen_bool(0.7) {
                policy.assign(rng.gen_range(0..2), f.clone());
            }
            if rng.gen_bool(0.3) {
                policy.assign(rng.gen_range(0..2), f.clone());
            }
        }
        let pc1 = parlog::pc::parallel_correct(&q, &policy, &universe);
        // Enumerate all instances over the candidate facts.
        let mut all_correct = true;
        for mask in 0u32..(1 << facts.len()) {
            let inst = Instance::from_facts(
                facts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, f)| f.clone()),
            );
            if !parlog::pc::parallel_correct_on(&q, &policy, &inst) {
                all_correct = false;
                break;
            }
        }
        assert_eq!(pc1, all_correct);
    }
}

/// All MPC algorithms agree with the centralized evaluation and with each
/// other, on skew-free and skewed triangle data.
#[test]
fn all_triangle_algorithms_agree() {
    let q = parlog::queries::triangle_join();
    for db in [
        datagen::triangle_db(300, 60, 1),
        datagen::triangle_heavy_db(300, 100, 2),
    ] {
        let expected = eval_query(&q, &db);
        let hc = HypercubeAlgorithm::new(&q, 16).unwrap().run(&db, 0);
        let cas = CascadeJoin::new(&q, 16, 4).run(&db);
        let two = TwoRoundTriangle::new(16, 4).run(&db);
        let gym = Gym::new(&q, 16, 4).run(&db);
        for (name, r) in [
            ("hypercube", hc),
            ("cascade", cas),
            ("two-round", two),
            ("gym", gym),
        ] {
            assert_eq!(r.output, expected, "{name}");
        }
    }
}

/// Theorem 5.3 in action: a monotone query is computed consistently by
/// the coordination-free broadcast across networks, distributions and
/// schedules — and the MPC result agrees with the transducer result.
#[test]
fn synchronous_and_asynchronous_worlds_agree() {
    let db = datagen::random_graph("E", 20, 60, 5);
    let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
    let expected = eval_query(&q, &db);

    // Asynchronous.
    let program = MonotoneBroadcast::new(q.clone());
    let report = check_eventual_consistency(&program, &db, &expected, &[1, 3], &[0, 1, 2], |_| {
        Ctx::oblivious()
    });
    assert!(report.consistent(), "{:?}", report.failures);

    // Synchronous (one-round repartition join on the MPC cluster).
    let mpc_out = RepartitionJoin::new(&q, 8, 3).run(&db).output;
    assert_eq!(mpc_out, expected);
}

/// The CQ¬ decision procedure agrees with brute-force sampling on a
/// policy that is correct by colocation of the negation's certificate.
#[test]
fn neg_correctness_with_colocated_policy() {
    let q = parse_query("H(x,y) <- E(x,y), not E(y,x)").unwrap();
    // A domain-guided-style policy: each fact on node h(min value) — any
    // pair E(a,b)/E(b,a) shares {a,b}, so colocating by the unordered
    // pair makes the policy correct.
    struct PairPolicy;
    impl DistributionPolicy for PairPolicy {
        fn num_nodes(&self) -> usize {
            3
        }
        fn responsible(&self, node: usize, f: &parlog::relal::Fact) -> bool {
            let mut key: Vec<u64> = f.args.iter().map(|v| v.0).collect();
            key.sort_unstable();
            (key.iter().sum::<u64>() % 3) as usize == node
        }
    }
    let verdict = parlog::pc::parallel_correct_neg(&q, &PairPolicy, &[Val(1), Val(2)]);
    assert!(verdict.correct(), "{verdict:?}");

    // Whereas a policy splitting the pair is unsound.
    struct FirstPolicy;
    impl DistributionPolicy for FirstPolicy {
        fn num_nodes(&self) -> usize {
            2
        }
        fn responsible(&self, node: usize, f: &parlog::relal::Fact) -> bool {
            (f.args[0].0 % 2) as usize == node
        }
    }
    let verdict = parlog::pc::parallel_correct_neg(&q, &FirstPolicy, &[Val(1), Val(2)]);
    assert!(!verdict.sound);
}

/// Economical broadcasting computes full self-join-free CQs with strictly
/// less communication than the naive broadcast (Section 6).
#[test]
fn economical_broadcast_saves_communication() {
    let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
    let mut db = datagen::uniform_relation("R", 60, 30, 1);
    db.extend_from(&datagen::uniform_relation("S", 60, 30, 2));
    db.extend_from(&datagen::uniform_relation("Irrelevant", 100, 30, 3));
    let expected = eval_query(&q, &db);
    let shards = hash_distribution(&db, 3, 7);

    let eco = EconomicalBroadcast::new(q.clone());
    let mut eco_run = parlog::transducer::SimRun::new(&eco, &shards, Ctx::oblivious());
    eco_run.run(&eco, Schedule::Random(3));

    let naive = MonotoneBroadcast::new(q);
    let mut naive_run = parlog::transducer::SimRun::new(&naive, &shards, Ctx::oblivious());
    naive_run.run(&naive, Schedule::Random(3));

    assert_eq!(eco_run.outputs(), expected);
    assert_eq!(naive_run.outputs(), expected);
    assert!(eco_run.facts_broadcast < naive_run.facts_broadcast);
}

/// The threaded runtime and the simulator agree on a nontrivial Datalog
/// query (transitive closure) under a random distribution.
#[test]
fn threaded_and_simulated_runtimes_agree() {
    use std::sync::Arc;
    let db = datagen::random_graph("E", 15, 40, 9);
    let p = parlog::queries::tc_program();
    let expected = parlog::datalog::eval_program(&p, &db).unwrap();
    let program = Arc::new(MonotoneBroadcast::new(p));
    let shards = random_distribution(&db, 3, 11);
    let sim = run_to_quiescence(program.as_ref(), &shards, 13);
    let thr = parlog::transducer::threaded::run_threaded(program, &shards, Ctx::oblivious());
    assert_eq!(sim, expected);
    assert_eq!(thr, expected);
}

/// Figure 1 and Figure 2 recompute without contradiction to the paper
/// (full per-cell checks live in the unit tests of `figure1`/`figure2`).
#[test]
fn figures_recompute() {
    let f1 = parlog::figure1::figure1();
    assert!(f1.transfer[2][0], "Q3 →pc Q1");
    assert!(f1.containment[0][3], "Q1 ⊆ Q4");
    let f2 = parlog::figure2::figure2();
    assert_eq!(f2.rows.len(), 5);
}
