//! Every numbered example of the survey, as one consolidated test file —
//! the "worked examples" contract of the reproduction. (The same facts
//! are also covered piecemeal in unit tests; this file is the reading
//! guide.)

use parlog::mpc::datagen;
use parlog::mpc::prelude::*;
use parlog::prelude::*;
use parlog::relal::fact::{fact, fact_syms};
use parlog::relal::policy::ExplicitPolicy;
use parlog::transducer::prelude::*;

/// **Example 3.1(1a)** — the repartition join: `O(m/p)` without skew,
/// degraded by a heavy hitter.
#[test]
fn example_3_1_1a() {
    let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
    let mut skew_free = Instance::new();
    for i in 0..400u64 {
        skew_free.insert(fact("R", &[i, 10_000 + i]));
        skew_free.insert(fact("S", &[10_000 + i, 20_000 + i]));
    }
    let r = RepartitionJoin::new(&q, 16, 1).run(&skew_free);
    assert_eq!(r.output, eval_query(&q, &skew_free));
    assert!(r.stats.load_exponent > 0.8, "skew-free ≈ m/p");

    let mut skewed = datagen::heavy_hitter_relation("R", 400, 0.9, 7, 1, 0);
    skewed.extend_from(&datagen::heavy_hitter_relation("S", 400, 0.9, 7, 0, 50_000));
    let r = RepartitionJoin::new(&q, 16, 1).run(&skewed);
    assert!(
        r.stats.load_exponent < 0.3,
        "skew concentrates the load: exponent {}",
        r.stats.load_exponent
    );
}

/// **Example 3.1(1b)** — the grouped join: `O(m/√p)` independent of skew.
#[test]
fn example_3_1_1b() {
    let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
    let mut skewed = datagen::heavy_hitter_relation("R", 400, 0.9, 7, 1, 0);
    skewed.extend_from(&datagen::heavy_hitter_relation("S", 400, 0.9, 7, 0, 50_000));
    let r = GroupedJoin::new(&q, 16, 1).run(&skewed);
    assert_eq!(r.output, eval_query(&q, &skewed));
    assert!(
        (r.stats.load_exponent - 0.5).abs() < 0.12,
        "grouped ≈ m/√p even under skew: {}",
        r.stats.load_exponent
    );
}

/// **Example 3.1(2)** — the triangle by a cascade of binary joins: two
/// rounds.
#[test]
fn example_3_1_2() {
    let q = parlog::queries::triangle_join();
    let db = datagen::triangle_db(150, 30, 1);
    let r = CascadeJoin::new(&q, 8, 1).run(&db);
    assert_eq!(r.output, eval_query(&q, &db));
    assert_eq!(r.stats.rounds, 2);
    // And as a MapReduce program (the survey's preferred specification
    // formalism for MPC algorithms).
    let mr = parlog::mpc::mapreduce::triangle_cascade_program().run(&db, 8, 1);
    assert_eq!(mr.output, eval_query(&q, &db));
}

/// **Example 3.2** — HyperCube shares `α_x α_y α_z = p`, replication
/// `α` per relation, strong saturation.
#[test]
fn example_3_2() {
    let q = parlog::queries::triangle_join();
    let hc = HypercubeAlgorithm::new(&q, 27).unwrap();
    assert_eq!(hc.shares().shares, vec![3, 3, 3]);
    assert_eq!(hc.destinations(&fact("R", &[5, 6])).len(), 3);
    let db = datagen::triangle_db(120, 25, 2);
    assert_eq!(hc.run(&db, 0).output, eval_query(&q, &db));
}

/// **Example 4.1** — `[Qe,P1](Ie)` correct, `[Qe,P2](Ie) = ∅` (modulo
/// the paper's H(a,b)-for-H(a,a) typo, documented in DESIGN.md).
#[test]
fn example_4_1() {
    let q = parse_query("H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)").unwrap();
    let ie = Instance::from_facts([
        fact_syms("R", &["a", "b"]),
        fact_syms("R", &["b", "a"]),
        fact_syms("R", &["b", "c"]),
        fact_syms("S", &["a", "a"]),
        fact_syms("S", &["c", "a"]),
    ]);
    let mut p1 = ExplicitPolicy::new(2);
    let mut p2 = ExplicitPolicy::new(2);
    for f in ie.iter() {
        if f.rel == parlog::relal::symbols::rel("R") {
            p1.assign(0, f.clone());
            p1.assign(1, f.clone());
            p2.assign(0, f.clone());
        } else {
            p1.assign(usize::from(f.args[0] != f.args[1]), f.clone());
            p2.assign(1, f.clone());
        }
    }
    assert!(parlog::pc::parallel_correct_on(&q, &p1, &ie));
    assert!(parlog::pc::parallel_result(&q, &p2, &ie).is_empty());
    assert_eq!(
        eval_query(&q, &ie).sorted_facts(),
        vec![fact_syms("H", &["a", "a"]), fact_syms("H", &["a", "c"])]
    );
}

/// **Example 4.3** — PC0 fails, PC1 holds: the strict gap.
#[test]
fn example_4_3() {
    let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
    let policy = parlog::pc::example_4_3_policy();
    let u = [Val(1), Val(2)];
    assert!(!strongly_saturates(&q, &policy, &u));
    assert!(saturates(&q, &policy, &u));
}

/// **Example 4.5** — V1 is not minimal, V2 is.
#[test]
fn example_4_5() {
    let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
    let v1 = Valuation::of(&[("x", 1), ("y", 2), ("z", 1)]);
    let v2 = Valuation::of(&[("x", 1), ("y", 1), ("z", 1)]);
    assert!(!parlog::relal::minimal::is_minimal(&q, &v1));
    assert!(parlog::relal::minimal::is_minimal(&q, &v2));
    assert_eq!(v1.derived_fact(&q), v2.derived_fact(&q));
}

/// **Example 4.11 / Figure 1** — transfer and containment are orthogonal.
#[test]
fn example_4_11() {
    let [q1, q2, q3, q4] = parlog::queries::example_4_11();
    use parlog::relal::containment::contains;
    assert!(pc_transfers(&q3, &q1), "the survey's Q3 →pc Q1");
    assert!(contains(&q3, &q4) && pc_transfers(&q3, &q4));
    assert!(contains(&q2, &q4) && pc_transfers(&q4, &q2) && !pc_transfers(&q2, &q4));
    assert!(pc_transfers(&q3, &q2) && !contains(&q3, &q2) && !contains(&q2, &q3));
    assert!(contains(&q1, &q4) && !pc_transfers(&q1, &q4) && !pc_transfers(&q4, &q1));
}

/// **Example 5.1(1)** — triangles via the naive broadcast: correct on
/// every network/distribution/schedule, coordination-free.
#[test]
fn example_5_1_1() {
    let q = parlog::queries::graph_triangles();
    let db = datagen::random_graph("E", 18, 50, 4);
    let expected = eval_query(&q, &db);
    let program = MonotoneBroadcast::new(q);
    let report = check_eventual_consistency(&program, &db, &expected, &[1, 3], &[0, 1], |_| {
        Ctx::oblivious()
    });
    assert!(report.consistent());
    assert!(check_coordination_free(
        &program,
        &db,
        &expected,
        3,
        Ctx::oblivious()
    ));
}

/// **Example 5.1(2)** — open triangles need the coordination protocol:
/// correct, but never outputs without reading messages.
#[test]
fn example_5_1_2() {
    let q = parlog::queries::open_triangles();
    let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3]), fact("E", &[3, 4])]);
    let expected = eval_query(&q, &db);
    assert!(!expected.is_empty());
    let program = CoordinatedBroadcast::new(q);
    let report = check_eventual_consistency(&program, &db, &expected, &[2, 3], &[0], Ctx::aware);
    assert!(report.consistent());
    assert!(!check_coordination_free(
        &program,
        &db,
        &expected,
        3,
        Ctx::aware(3)
    ));
}

/// **Example 5.4** — policy-awareness makes open triangles
/// coordination-free (class F1).
#[test]
fn example_5_4() {
    use parlog::relal::policy::DomainGuidedPolicy;
    use parlog::transducer::distribution::policy_distribution;
    use std::sync::Arc;
    let q = parlog::queries::open_triangles();
    let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3]), fact("E", &[3, 4])]);
    let expected = eval_query(&q, &db);
    let policy = Arc::new(DomainGuidedPolicy::new(3, 9));
    let shards = policy_distribution(&db, policy.as_ref());
    let program = PolicyAwareCq::new(q);
    let ctx = Ctx::oblivious().with_policy(policy);
    let out =
        parlog::transducer::scheduler::run_with_ctx(&program, &shards, ctx, Schedule::Random(2));
    assert_eq!(out, expected);
}

/// **Example 5.6** — open triangles ∈ Mdistinct; ¬TC ∉ Mdistinct.
#[test]
fn example_5_6() {
    use parlog::calm::{domain_distinct_counterexample, validate_witness, Schema};
    let open = parlog::queries::open_triangles();
    let schema = Schema::binary(&["E"]);
    assert!(domain_distinct_counterexample(&open, &schema, 2, 1).is_none());
    let ntc = parlog::figure2::datalog_query(parlog::queries::ntc_program(), "NTC");
    let i = Instance::from_facts([fact("E", &[1, 2])]);
    let j = Instance::from_facts([fact("E", &[2, 3]), fact("E", &[3, 1])]);
    validate_witness(&ntc, &i, &j, 1).unwrap();
}

/// **Example 5.10** — ¬TC ∈ Mdisjoint; QNT ∉ Mdisjoint.
#[test]
fn example_5_10() {
    use parlog::calm::{domain_disjoint_counterexample, validate_witness, Schema};
    let ntc = parlog::figure2::datalog_query(parlog::queries::ntc_program(), "NTC");
    assert!(domain_disjoint_counterexample(&ntc, &Schema::binary(&["E"]), 2, 1).is_none());
    let qnt = parlog::figure2::datalog_query(parlog::queries::qnt_program(), "OUT");
    let i = Instance::from_facts([fact("E", &[1, 1]), fact("E", &[2, 2])]);
    let j = Instance::from_facts([fact("E", &[4, 5]), fact("E", &[5, 6]), fact("E", &[6, 4])]);
    validate_witness(&qnt, &i, &j, 2).unwrap();
}

/// **Example 5.13** — ¬TC is semi-connected stratified; QNT is not
/// (its `S` rule is disconnected).
#[test]
fn example_5_13() {
    use parlog::datalog::analysis::{is_connected_rule, is_semi_connected};
    assert!(is_semi_connected(&parlog::queries::ntc_program()));
    let qnt = parlog::queries::qnt_program();
    assert!(!is_semi_connected(&qnt));
    assert!(
        !is_connected_rule(&qnt.rules[1]),
        "the S rule is the culprit"
    );
    // And ¬TC evaluates correctly through the engine.
    let db = Instance::from_facts([fact("E", &[1, 2]), fact("E", &[2, 3])]);
    let out =
        parlog::datalog::eval::eval_predicate(&parlog::queries::ntc_program(), &db, "NTC").unwrap();
    assert!(out.contains(&fact("NTC", &[3, 1])));
    assert!(!out.contains(&fact("NTC", &[1, 3])));
}

/// **Section 5.3** — win–move under the well-founded semantics: true,
/// false and drawn positions.
#[test]
fn win_move_example() {
    use parlog::datalog::wellfounded::{well_founded, win_move_program, TruthValue};
    let game = Instance::from_facts([
        fact("Move", &[0, 1]),
        fact("Move", &[1, 2]),
        fact("Move", &[3, 4]),
        fact("Move", &[4, 3]),
    ]);
    let m = well_founded(&win_move_program(), &game).unwrap();
    assert_eq!(m.value_of(&fact("Win", &[1])), TruthValue::True);
    assert_eq!(m.value_of(&fact("Win", &[0])), TruthValue::False);
    assert_eq!(m.value_of(&fact("Win", &[3])), TruthValue::Undefined);
    assert_eq!(m.value_of(&fact("Win", &[4])), TruthValue::Undefined);
}
