//! Property-based tests (proptest) for the workspace's core invariants.

use proptest::prelude::*;

use parlog::mpc::prelude::*;
use parlog::prelude::*;
use parlog::relal::policy::DistributionPolicy;

/// Strategy: a small random instance over binary relations R, S (and E).
fn small_instance(max_facts: usize, domain: u64) -> impl Strategy<Value = Instance> {
    prop::collection::vec((0..3u8, 0..domain, 0..domain), 0..max_facts).prop_map(|triples| {
        Instance::from_facts(triples.into_iter().map(|(r, a, b)| {
            let name = match r {
                0 => "R",
                1 => "S",
                _ => "E",
            };
            parlog::relal::fact::fact(name, &[a, b])
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed evaluator agrees with the naive all-valuations one.
    #[test]
    fn eval_matches_naive(db in small_instance(14, 5)) {
        for src in [
            "H(x,z) <- R(x,y), S(y,z)",
            "H(x) <- R(x,y), E(y,x)",
            "H(x,y) <- R(x,y), R(y,x), x != y",
            "H(x) <- R(x,x), not S(x,x)",
        ] {
            let q = parse_query(src).unwrap();
            prop_assert_eq!(
                eval_query(&q, &db),
                parlog::relal::eval::eval_query_naive(&q, &db)
            );
        }
    }

    /// [Q,P](I) ⊆ Q(I) for plain CQs under any partitioning policy
    /// (monotonicity of CQs: local results are always globally valid).
    #[test]
    fn distributed_result_is_sound(db in small_instance(14, 5), seed in 0u64..100) {
        let q = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let policy = parlog::relal::policy::HashPolicy::new(3, seed);
        let dist = parlog::pc::parallel_result(&q, &policy, &db);
        prop_assert!(dist.is_subset_of(&eval_query(&q, &db)));
    }

    /// HyperCube computes every query correctly on random data.
    #[test]
    fn hypercube_is_correct(db in small_instance(20, 6), p in 2usize..20) {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
        let hc = HypercubeAlgorithm::new(&q, p).unwrap();
        prop_assert_eq!(hc.run(&db, 0).output, eval_query(&q, &db));
    }

    /// The grouped join is correct and its load never exceeds what a
    /// single server would receive (m).
    #[test]
    fn grouped_join_correct_and_bounded(db in small_instance(24, 4), p in 4usize..26) {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
        let r = GroupedJoin::new(&q, p, 3).run(&db);
        prop_assert_eq!(r.output, eval_query(&q, &db));
        prop_assert!(r.stats.max_load <= db.len());
    }

    /// Semi-naive Datalog equals naive Datalog.
    #[test]
    fn semi_naive_equals_naive(db in small_instance(12, 4)) {
        let p = parlog::datalog::program::parse_program(
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)\nBoth(x,y) <- TC(x,y), R(x,y)",
        ).unwrap();
        prop_assert_eq!(
            parlog::datalog::eval_program(&p, &db).unwrap(),
            parlog::datalog::eval_program_naive(&p, &db).unwrap()
        );
    }

    /// Components partition the instance and are pairwise domain-disjoint.
    #[test]
    fn components_partition(db in small_instance(16, 6)) {
        let comps = db.components();
        let mut union = Instance::new();
        for c in &comps {
            prop_assert!(!c.is_empty());
            let rest = db.difference(c);
            prop_assert!(rest.is_domain_disjoint_extension(c));
            union.extend_from(c);
        }
        prop_assert_eq!(union, db);
    }

    /// Fractional edge packing and vertex cover have equal value (LP
    /// duality) on random-ish acyclic and cyclic query shapes.
    #[test]
    fn packing_duality(n_atoms in 1usize..5) {
        // Build a chain query with n_atoms atoms.
        let body: Vec<String> = (0..n_atoms)
            .map(|i| format!("R{i}(v{i}, v{})", i + 1))
            .collect();
        let head_vars: Vec<String> = (0..=n_atoms).map(|i| format!("v{i}")).collect();
        let src = format!("H({}) <- {}", head_vars.join(","), body.join(", "));
        let q = parse_query(&src).unwrap();
        let p = parlog::relal::packing::fractional_edge_packing(&q).unwrap();
        let c = parlog::relal::packing::fractional_vertex_cover(&q).unwrap();
        prop_assert!((p.value - c.value).abs() < 1e-6);
        // Chain of n atoms: τ* = ⌈n/2⌉ (matching number of a path).
        prop_assert!((p.value - (n_atoms as f64 / 2.0).ceil()).abs() < 1e-6);
    }

    /// Monotone broadcast computes a monotone query on random instances,
    /// networks and schedules — a randomized slice of Theorem 5.3.
    #[test]
    fn monotone_broadcast_consistent(
        db in small_instance(10, 4),
        n in 1usize..4,
        seed in 0u64..50,
    ) {
        use parlog::transducer::prelude::*;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let program = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, n, seed);
        prop_assert_eq!(run_to_quiescence(&program, &shards, seed), expected);
    }

    /// Minimal valuations derive the same outputs as all valuations:
    /// Q(I) = {V(head) : V minimal and satisfied on I}.
    #[test]
    fn minimal_valuations_suffice(db in small_instance(10, 4)) {
        let q = parse_query("H(x,z) <- R(x,y), R(y,z), R(x,x)").unwrap();
        let full = eval_query(&q, &db);
        let via_minimal = Instance::from_facts(
            parlog::relal::minimal::minimal_valuations(&q, &db)
                .iter()
                .map(|v| v.derived_fact(&q)),
        );
        prop_assert_eq!(full, via_minimal);
    }

    /// Distributed relational algebra equals centralized evaluation on
    /// random instances and expressions from a small pool.
    #[test]
    fn distributed_ra_matches_centralized(db in small_instance(16, 5), p in 2usize..10) {
        use parlog::relal::algebra::{eval_ra, Condition, RaExpr};
        let exprs = [
            RaExpr::rel("R", 2).join(RaExpr::rel("S", 2), vec![(1, 0)]),
            RaExpr::rel("R", 2).semijoin(RaExpr::rel("S", 2), vec![(1, 0)]),
            RaExpr::rel("R", 2).antijoin(RaExpr::rel("S", 2), vec![(0, 0)]),
            RaExpr::rel("R", 2).difference(RaExpr::rel("S", 2)),
            RaExpr::rel("R", 2)
                .union(RaExpr::rel("S", 2))
                .select(vec![Condition::Neq(0, 1)])
                .project(vec![1, 0]),
        ];
        for (i, e) in exprs.iter().enumerate() {
            let central = eval_ra(e, &db).unwrap();
            let report = parlog::mpc::ra_distributed::DistributedRa::new(p, 3)
                .run(e, &db, "Out")
                .unwrap();
            let got: std::collections::BTreeSet<Vec<parlog::relal::fact::Val>> = report
                .output
                .iter()
                .map(|f| f.args.clone())
                .collect();
            let want: std::collections::BTreeSet<Vec<parlog::relal::fact::Val>> =
                central.into_iter().collect();
            prop_assert_eq!(got, want, "expression {}", i);
        }
    }

    /// The MapReduce embedding of the repartition join equals both the
    /// native MPC algorithm and the centralized evaluation.
    #[test]
    fn mapreduce_matches_mpc(db in small_instance(16, 5), p in 2usize..8) {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let mr = parlog::mpc::mapreduce::repartition_join_program().run(&db, p, 1);
        prop_assert_eq!(&mr.output, &expected);
        let native = RepartitionJoin::new(&q, p, 1).run(&db);
        prop_assert_eq!(&native.output, &expected);
    }

    /// SharesSkew is correct for any threshold (including ones that make
    /// everything heavy or everything light).
    #[test]
    fn shares_skew_correct_for_any_threshold(
        db in small_instance(20, 4),
        threshold in 1usize..20,
    ) {
        let q = parse_query("H(x,y,z) <- R(x,y), S(y,z)").unwrap();
        let alg = parlog::mpc::shares_skew::SharesSkewAlgorithm::from_stats(
            &q, &db, 16, threshold, 3, 5,
        );
        prop_assert_eq!(alg.run(&db).output, eval_query(&q, &db));
    }

    /// Scale independence: when a bounded plan exists, bounded evaluation
    /// agrees with the full evaluator.
    #[test]
    fn bounded_eval_matches_full_eval(db in small_instance(14, 4)) {
        use parlog::scale::{bounded_plan, eval_bounded, AccessConstraint, AccessSchema};
        let q = parse_query("H(y, z) <- R(1, y), S(y, z)").unwrap();
        let schema = AccessSchema::new(vec![
            AccessConstraint::new("R", vec![0], 20),
            AccessConstraint::new("S", vec![0], 20),
        ]);
        if let Some(plan) = bounded_plan(&q, &schema) {
            let r = eval_bounded(&q, &db, &plan);
            prop_assert_eq!(r.output, eval_query(&q, &db));
        }
    }

    /// `Shares::optimal` invariants on random conjunctive queries and any
    /// p ∈ {1..64}: product ≤ p, every share ≥ 1, and `servers()` is the
    /// product of the shares.
    #[test]
    fn optimal_shares_invariants(
        atoms in prop::collection::vec((0..3u8, 0..4u8, 0..4u8), 1..4),
        p in 1usize..64,
    ) {
        use parlog::mpc::shares::Shares;
        let body: Vec<String> = atoms
            .iter()
            .map(|&(r, a, b)| {
                let rel = ["R", "S", "T"][r as usize];
                format!("{rel}(v{a}, v{b})")
            })
            .collect();
        let mut head: Vec<String> = atoms
            .iter()
            .flat_map(|&(_, a, b)| [format!("v{a}"), format!("v{b}")])
            .collect();
        head.sort();
        head.dedup();
        let q = parse_query(&format!("H({}) <- {}", head.join(","), body.join(", "))).unwrap();
        let s = Shares::optimal(&q, p).unwrap();
        let product: usize = s.shares.iter().product();
        prop_assert!(s.shares.iter().all(|&x| x >= 1), "shares {:?}", s.shares);
        prop_assert!(product <= p, "product {} > p {} for {:?}", product, p, s.shares);
        prop_assert_eq!(s.servers(), product);
        // The uniform baseline obeys the same envelope.
        let u = Shares::uniform(&q, p);
        prop_assert!(u.servers() <= p || u.shares.iter().all(|&x| x == 1));
        prop_assert!(u.shares.iter().all(|&x| x >= 1));
    }

    /// The parallel round engine is unobservable: for any worker count the
    /// output and the serialized `RunStats` are byte-equal to the
    /// sequential engine's, on fault-free and on crash+straggler runs.
    #[test]
    fn parallel_engine_matches_sequential(
        db in small_instance(20, 6),
        p in 2usize..10,
        threads in 2usize..9,
        crash in 0usize..10,
    ) {
        use parlog::faults::{MpcFaultPlan, SpeculationPolicy};
        use parlog::mpc::cluster::Cluster;
        use parlog::mpc::report::RunReport;
        let q = parse_query("H(x,z) <- R(x,y), S(y,z)").unwrap();
        let run = |threads: usize, faulty: bool| {
            let mut c = Cluster::new(p).with_parallelism(threads);
            if faulty {
                c = c
                    .with_faults(
                        MpcFaultPlan::crash(0, crash % p)
                            .with_straggler((crash + 1) % p, 3.0),
                    )
                    .with_speculation(SpeculationPolicy::default());
            }
            for (i, f) in db.iter().enumerate() {
                c.local_mut(i % p).insert(f.clone());
            }
            c.communicate(|f| vec![(f.args[0].0 as usize) % p]);
            c.compute(|local| eval_query(&q, local));
            let stats = RunReport::from_cluster("prop", &c, db.len()).stats;
            (c.union_all(), serde_json::to_string(&stats).unwrap())
        };
        for faulty in [false, true] {
            let (seq_out, seq_stats) = run(1, faulty);
            let (par_out, par_stats) = run(threads, faulty);
            prop_assert_eq!(&seq_out, &par_out, "faulty={}", faulty);
            prop_assert_eq!(&seq_stats, &par_stats, "faulty={}", faulty);
        }
    }

    /// Policies distribute soundly: local instances contain only facts the
    /// node is responsible for, and a ReplicateAll policy reproduces I.
    #[test]
    fn policy_distribution_is_sound(db in small_instance(12, 5), seed in 0u64..20) {
        let hash = parlog::relal::policy::HashPolicy::new(4, seed);
        for node in 0..4 {
            for f in hash.local_instance(node, &db).iter() {
                prop_assert!(hash.responsible(node, f));
            }
        }
        let all = parlog::relal::policy::ReplicateAll { num_nodes: 2 };
        prop_assert_eq!(all.local_instance(0, &db), db.clone());
    }
}

/// Strategy: a random conjunctive query over binary atoms of R, S, E —
/// cyclic and acyclic shapes, self-joins, repeated variables and
/// constants all arise. The first term is forced to be a variable so the
/// head (all body variables) is never empty.
fn random_cq() -> impl Strategy<Value = parlog::relal::query::ConjunctiveQuery> {
    prop::collection::vec((0..3u8, 0..6u8, 0..6u8), 1..4).prop_map(|atoms| {
        let term = |t: u8| -> String {
            match t {
                0 => "x".into(),
                1 => "y".into(),
                2 => "z".into(),
                3 => "w".into(),
                other => format!("{}", other - 4), // a constant: 0 or 1
            }
        };
        let body: Vec<String> = atoms
            .iter()
            .enumerate()
            .map(|(i, &(r, a, b))| {
                let rel = ["R", "S", "E"][r as usize];
                // Force the very first term to a variable: guarantees a
                // non-empty, safe head.
                let ta = if i == 0 { term(a % 4) } else { term(a) };
                format!("{rel}({ta}, {})", term(b))
            })
            .collect();
        let mut head: Vec<String> = atoms
            .iter()
            .enumerate()
            .flat_map(|(i, &(_, a, b))| {
                let ta = if i == 0 { a % 4 } else { a };
                [ta, b]
            })
            .filter(|&t| t < 4)
            .map(term)
            .collect();
        head.sort();
        head.dedup();
        let src = format!("H({}) <- {}", head.join(","), body.join(", "));
        parse_query(&src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test of the three evaluators: on random conjunctive
    /// queries (cyclic, acyclic, self-joins, repeated variables,
    /// constants) × random instances, the naive, hash-indexed and
    /// worst-case-optimal (LeapFrog TrieJoin) strategies all produce the
    /// same output.
    #[test]
    fn strategies_agree_on_random_cqs(q in random_cq(), db in small_instance(16, 4)) {
        use parlog::relal::eval::{eval_query_naive, eval_query_with, EvalStrategy};
        let reference = eval_query_naive(&q, &db);
        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::Indexed,
            EvalStrategy::Wcoj,
            EvalStrategy::Auto,
        ] {
            prop_assert_eq!(
                eval_query_with(&q, &db, strategy),
                reference.clone(),
                "strategy {:?} on {}",
                strategy,
                q
            );
        }
    }

    /// Semi-naive Datalog fixpoints agree across local-join strategies on
    /// random EDBs — recursion (transitive closure), a cyclic rule body
    /// (triangles) and a self-join rule all included.
    #[test]
    fn datalog_fixpoints_agree_across_strategies(db in small_instance(12, 4)) {
        use parlog::relal::eval::EvalStrategy;
        let p = parlog::datalog::program::parse_program(
            "TC(x,y) <- E(x,y)\n\
             TC(x,y) <- TC(x,z), E(z,y)\n\
             Tri(x,y,z) <- E(x,y), E(y,z), E(z,x)\n\
             Hop(x,z) <- R(x,y), R(y,z)\n\
             Loop(x) <- E(x,x)",
        )
        .unwrap();
        let reference = parlog::datalog::eval_program(&p, &db).unwrap();
        for strategy in [EvalStrategy::Naive, EvalStrategy::Wcoj, EvalStrategy::Auto] {
            prop_assert_eq!(
                parlog::datalog::eval_program_with(&p, &db, strategy).unwrap(),
                reference.clone(),
                "strategy {:?}",
                strategy
            );
        }
    }

    /// Differential test of incremental view maintenance: a maintained
    /// fixpoint (counting for recursion-free strata, delete–rederive for
    /// recursive ones), refreshed from the delta log after every random
    /// insert/delete, is identical to from-scratch evaluation — for every
    /// local-join strategy, on programs covering recursion, mutual
    /// recursion, stratified negation over `ADom` complements, and
    /// nonrecursive negation with inequalities. The views must stay
    /// incremental: zero full rebuilds across the whole mutation run.
    #[test]
    fn maintained_views_match_scratch_eval(
        prog_idx in 0usize..5,
        init in prop::collection::vec((0..2u8, 0..4u64, 0..4u64), 0..10),
        ops in prop::collection::vec((0..2u8, 0..2u8, 0..4u64, 0..4u64), 1..16),
    ) {
        use parlog::datalog::{eval_program_with, materialize, view_stats};
        use parlog::relal::eval::EvalStrategy;
        let programs = [
            // Transitive closure: one recursive stratum (DRed).
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)",
            // Complement of TC: negation + ADom above the recursion.
            "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)\n\
             NT(x,y) <- ADom(x), ADom(y), not TC(x,y)",
            // Stratified negation chain, recursion-free (counting).
            "A(x) <- E(x,y)\nB(x) <- R(x,y), not A(x)\nC(x) <- A(x), not B(x)",
            // Mutual recursion (one cyclic stratum).
            "P(x,y) <- E(x,y)\nQ(x,y) <- P(x,z), E(z,y)\nP(x,y) <- Q(x,z), E(z,y)",
            // Nonrecursive join with negation and an inequality.
            "H(x,z) <- E(x,y), R(y,z), x != z, not E(z,x)",
        ];
        let p = parlog::datalog::program::parse_program(programs[prog_idx]).unwrap();
        let mut db = Instance::new();
        for (r, a, b) in init {
            db.insert(fact(if r == 0 { "E" } else { "R" }, &[a, b]));
        }
        let strategies = [
            EvalStrategy::Naive,
            EvalStrategy::Indexed,
            EvalStrategy::Wcoj,
            EvalStrategy::Auto,
        ];
        for s in strategies {
            materialize(&p, &db, s).unwrap();
        }
        for (r, op, a, b) in ops {
            let f = fact(if r == 0 { "E" } else { "R" }, &[a, b]);
            if op == 0 {
                db.insert(f);
            } else {
                db.remove(&f);
            }
            // A clone drops the views, so this is the from-scratch path.
            let scratch = eval_program_with(&p, &db.clone(), EvalStrategy::Indexed).unwrap();
            for s in strategies {
                prop_assert_eq!(
                    eval_program_with(&p, &db, s).unwrap(),
                    scratch.clone(),
                    "maintained view diverged: program {} strategy {:?}",
                    prog_idx,
                    s
                );
            }
        }
        for s in strategies {
            let stats = view_stats(&p, &db, s).unwrap();
            prop_assert_eq!(stats.full_rebuilds, 0, "view fell back to rebuilds: {:?}", s);
        }
    }

    /// Instance bookkeeping under dual storage (fact set + LSM trie
    /// cache): `insert`/`remove` return values, `len`, `contains`, the
    /// epoch counter and the delta log all agree with a naive set model.
    /// Mutations never evict cache entries — stale entries replay the
    /// delta log on the next read and keep answering exactly the live
    /// tuple set (a no-op mutation changes nothing at all).
    #[test]
    fn instance_bookkeeping_matches_set_model(
        ops in prop::collection::vec((0..2u8, 0..3u8, 0..4u64, 0..4u64), 0..40),
    ) {
        use std::collections::BTreeSet;
        use parlog::relal::fact::{fact, Fact};
        let mut inst = Instance::new();
        let mut model: BTreeSet<Fact> = BTreeSet::new();
        for (op, r, a, b) in ops {
            let rel = ["R", "S", "E"][r as usize];
            let f = fact(rel, &[a, b]);
            // Touch the trie cache so refresh-on-read is observable: the
            // (possibly delta-refreshed) trie always matches the model.
            let trie = inst.trie(f.rel, &[0, 1]);
            let rel_count = model.iter().filter(|g| g.rel == f.rel).count();
            prop_assert_eq!(trie.rows(), rel_count);
            prop_assert!(inst.cached_tries() > 0);
            let epoch_before = inst.epoch();
            let log_before = inst.delta_log_len();
            let tries_before = inst.cached_tries();
            let changed = if op == 0 {
                let c = inst.insert(f.clone());
                prop_assert_eq!(c, model.insert(f.clone()));
                c
            } else {
                let c = inst.remove(&f);
                prop_assert_eq!(c, model.remove(&f));
                c
            };
            if changed {
                // Mutation bumps the epoch and logs exactly one delta;
                // cached tries survive (they refresh on next read).
                prop_assert!(inst.epoch() > epoch_before);
                prop_assert_eq!(inst.delta_log_len(), log_before + 1);
                prop_assert_eq!(inst.rel_epoch(f.rel), inst.epoch());
            } else {
                // A no-op (duplicate insert / absent remove) must not
                // desync anything: same epoch, same log, caches intact.
                prop_assert_eq!(inst.epoch(), epoch_before);
                prop_assert_eq!(inst.delta_log_len(), log_before);
            }
            prop_assert_eq!(inst.cached_tries(), tries_before);
            // The refreshed layers track the model immediately.
            let rel_count = model.iter().filter(|g| g.rel == f.rel).count();
            prop_assert_eq!(inst.trie(f.rel, &[0, 1]).rows(), rel_count);
            prop_assert_eq!(inst.len(), model.len());
            prop_assert_eq!(inst.contains(&f), model.contains(&f));
        }
        let facts: BTreeSet<Fact> = inst.iter().cloned().collect();
        prop_assert_eq!(facts, model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CALM under chaos: an F0 (monotone-broadcast) program is immune to
    /// every fault the asynchronous model quantifies over. Random
    /// reorder/duplicate/delay plans across several seeds always yield
    /// exactly the centralized answer.
    #[test]
    fn f0_output_invariant_under_within_model_faults(
        db in small_instance(12, 5),
        reorder in 0.0f64..0.9,
        dup in 0.0f64..0.6,
        delay in 0.0f64..0.6,
        plan_seed in 0u64..50,
    ) {
        use parlog::faults::FaultPlan;
        use parlog::transducer::prelude::*;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 3, 7);
        for seed in [plan_seed, plan_seed + 1, plan_seed + 2] {
            let mut plan = FaultPlan::reordering(seed, reorder);
            plan.dup_prob = dup;
            plan.delay_prob = delay;
            plan.max_delay = 6;
            let (out, _) = run_with_faults(
                &p, &shards, Ctx::oblivious(), Schedule::Random(seed), &plan,
            );
            prop_assert_eq!(&out, &expected, "seed {}", seed);
        }
    }

    /// Lossy runs are always sound: dropped messages can only shrink the
    /// output, never let the monotone program invent a fact outside Q(I).
    #[test]
    fn lossy_runs_are_sound(
        db in small_instance(12, 5),
        drop_prob in 0.05f64..0.95,
        seed in 0u64..50,
    ) {
        use parlog::faults::FaultPlan;
        use parlog::transducer::prelude::*;
        let q = parse_query("H(x,z) <- E(x,y), E(y,z)").unwrap();
        let expected = eval_query(&q, &db);
        let p = MonotoneBroadcast::new(q);
        let shards = hash_distribution(&db, 3, 7);
        let plan = FaultPlan::lossy(seed, drop_prob);
        let (out, stats) = run_with_faults(
            &p, &shards, Ctx::oblivious(), Schedule::Random(seed), &plan,
        );
        prop_assert!(out.is_subset_of(&expected));
        // And reliability restores completeness whenever anything dropped.
        if stats.dropped > 0 {
            let reliable = ReliableBroadcast::new(p);
            let (rel_out, rel_stats) = reliable.run(
                &shards, Ctx::oblivious(), Schedule::Random(seed), &plan,
            );
            prop_assert_eq!(&rel_out, &expected);
            prop_assert!(rel_stats.coordination_messages() > 0);
        }
    }
}
